"""Generic component registries and plain-data component specs.

The scenario layer composes a simulation out of interchangeable *components*
(supply, platform, capacitor, governor, workload).  Each component family is a
:class:`Registry` of named kinds, and each concrete component in a scenario
config is a :class:`ComponentSpec` — canonical plain data of the shape
``{"kind": "<registered name>", **params}``.

Two properties make specs safe to content-address:

* **normalisation** — parameter values are canonicalised on construction
  (``4`` and ``4.0`` become the same number, mappings are sorted, sequences
  become tuples), so two spellings of the same physics serialise to the same
  canonical JSON and therefore the same scenario hash;
* **default folding** — :meth:`Registry.canonical` merges a kind's registered
  defaults into a spec, so a sparse spec (``{"kind": "supercapacitor"}``) and
  a fully spelled-out one hash identically.

Registries are deliberately open: downstream code registers new kinds with
:meth:`Registry.register` (directly or as a decorator) and every sweep, CLI
listing and error message picks them up automatically.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Optional, Sequence

__all__ = ["ComponentSpec", "Registry", "RegistryEntry"]


def normalise_value(value: Any) -> Any:
    """Canonicalise one parameter value into hashable plain data.

    * booleans stay booleans;
    * numbers become ``int`` when integral, ``float`` otherwise (so ``4``,
      ``4.0`` and ``numpy.float64(4)`` are one value);
    * strings and ``None`` pass through;
    * mappings become key-sorted tuples of ``(key, value)`` pairs;
    * objects with a ``to_dict`` method are converted first;
    * sequences become tuples.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        f = float(value)
        return int(f) if f.is_integer() else f
    if value is None or isinstance(value, str):
        return value
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), normalise_value(v)) for k, v in value.items()))
    if hasattr(value, "to_dict"):
        return normalise_value(value.to_dict())
    if isinstance(value, Sequence):
        return tuple(normalise_value(v) for v in value)
    raise TypeError(
        f"component parameter of type {type(value).__name__} is not plain data "
        "(use numbers, strings, booleans, sequences or mappings)"
    )


def jsonable_value(value: Any) -> Any:
    """Inverse of :func:`normalise_value` for serialisation.

    Tuples whose items are all ``(str, value)`` pairs were mappings and become
    dicts again; other tuples become lists.  (An empty tuple serialises as an
    empty list — an empty mapping parameter is not round-trippable, which no
    component in this codebase needs.)
    """
    if isinstance(value, tuple):
        if value and all(
            isinstance(p, tuple) and len(p) == 2 and isinstance(p[0], str) for p in value
        ):
            return {k: jsonable_value(v) for k, v in value}
        return [jsonable_value(v) for v in value]
    return value


@dataclass(frozen=True)
class ComponentSpec:
    """One component of a scenario: a registered kind plus its parameters.

    The canonical plain-data form is ``{"kind": name, **params}``; internally
    the parameters are a sorted tuple of pairs so specs are hashable and two
    equivalent spellings compare (and content-hash) equal.
    """

    kind: str
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.kind, str) or not self.kind:
            raise ValueError("component kind must be a non-empty string")
        params = self.params
        if isinstance(params, Mapping):
            items = params.items()
        else:
            items = (tuple(p) for p in params)
        normalised = tuple(sorted((str(k), normalise_value(v)) for k, v in items))
        names = [k for k, _ in normalised]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(f"duplicate component parameters: {sorted(duplicates)}")
        object.__setattr__(self, "params", normalised)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def coerce(cls, value: "ComponentSpec | Mapping | str") -> "ComponentSpec":
        """Accept a spec, a ``{"kind": ...}`` mapping, or a bare kind name."""
        if isinstance(value, ComponentSpec):
            return value
        if isinstance(value, str):
            return cls(kind=value)
        if isinstance(value, Mapping):
            return cls.from_dict(value)
        raise TypeError(
            f"cannot build a ComponentSpec from {type(value).__name__}; "
            "expected a ComponentSpec, a mapping with a 'kind' key, or a kind name"
        )

    @classmethod
    def from_dict(cls, data: Mapping, default_kind: Optional[str] = None) -> "ComponentSpec":
        data = dict(data)
        kind = data.pop("kind", default_kind)
        if not kind:
            raise ValueError("component dict needs a 'kind' key")
        return cls(kind=str(kind), params=data)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def params_dict(self) -> dict:
        """The parameters as a JSON-ready dict."""
        return {k: jsonable_value(v) for k, v in self.params}

    def get(self, name: str, default: Any = None) -> Any:
        """One parameter value (JSON-ready form), or ``default``."""
        for key, value in self.params:
            if key == name:
                return jsonable_value(value)
        return default

    def with_params(self, **updates) -> "ComponentSpec":
        """A copy with the given parameters set/overridden."""
        merged = dict(self.params_dict())
        merged.update(updates)
        return ComponentSpec(kind=self.kind, params=merged)

    def to_dict(self) -> dict:
        return {"kind": self.kind, **self.params_dict()}


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component kind.

    Attributes
    ----------
    name:
        The kind name referenced from scenario configs.
    factory:
        Callable building the live component; parameters are passed as
        keyword arguments.
    label:
        Human-readable label for reports (defaults to the name).
    defaults:
        Parameter defaults folded into every spec of this kind.  Unless the
        entry is registered with ``open_params=True``, the default keys also
        define the set of *allowed* parameters.
    metadata:
        Free-form extras (e.g. ``tunable`` for governors, ``sim_defaults``
        for supplies).
    """

    name: str
    factory: Callable
    label: str
    defaults: Mapping = field(default_factory=dict)
    metadata: Mapping = field(default_factory=dict)

    @property
    def open_params(self) -> bool:
        return bool(self.metadata.get("open_params", False))


class Registry:
    """A named collection of component kinds, open for extension.

    >>> SUPPLIES = Registry("supply")
    >>> @SUPPLIES.register("my-supply", defaults={"power_w": 1.0})
    ... def build_my_supply(duration_s, power_w=1.0):
    ...     ...
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: dict[str, RegistryEntry] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        factory: Optional[Callable] = None,
        *,
        label: Optional[str] = None,
        defaults: Optional[Mapping] = None,
        **metadata,
    ):
        """Register a kind; usable directly or as a decorator."""

        def _register(fn: Callable) -> Callable:
            if not name or not isinstance(name, str):
                raise ValueError(f"{self.kind} kind name must be a non-empty string")
            if name in self._entries:
                raise ValueError(f"{self.kind} kind {name!r} is already registered")
            self._entries[name] = RegistryEntry(
                name=name,
                factory=fn,
                label=label if label is not None else name,
                defaults=dict(defaults or {}),
                metadata=dict(metadata),
            )
            return fn

        if factory is None:
            return _register
        return _register(factory)

    def unregister(self, name: str) -> None:
        """Remove a kind (mainly for tests exercising extension)."""
        self._entries.pop(name, None)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> RegistryEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} kind {name!r}; "
                f"registered kinds: {', '.join(sorted(self._entries)) or '(none)'}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._entries)

    def labels(self) -> dict[str, str]:
        return {name: entry.label for name, entry in self._entries.items()}

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Canonicalisation and building
    # ------------------------------------------------------------------
    def canonical(self, spec: "ComponentSpec | Mapping | str") -> ComponentSpec:
        """Coerce + validate a spec and fold the kind's defaults into it.

        Raises ``ValueError`` for an unknown kind (listing the registered
        kinds) or, for kinds without ``open_params``, for parameters the kind
        does not declare.
        """
        spec = ComponentSpec.coerce(spec)
        entry = self.get(spec.kind)
        params = spec.params_dict()
        if not entry.open_params:
            unknown = sorted(set(params) - set(entry.defaults))
            if unknown:
                raise ValueError(
                    f"unknown parameter(s) {', '.join(unknown)} for {self.kind} kind "
                    f"{spec.kind!r}; known: {', '.join(sorted(entry.defaults)) or '(none)'}"
                )
        merged = dict(entry.defaults)
        merged.update(params)
        canonical = ComponentSpec(kind=spec.kind, params=merged)
        validate = entry.metadata.get("validate")
        if validate is not None:
            validate(canonical.params_dict())
        return canonical

    def build(self, spec: "ComponentSpec | Mapping | str", **context):
        """Instantiate a component: ``factory(**context, **params)``."""
        spec = self.canonical(spec)
        entry = self.get(spec.kind)
        return entry.factory(**context, **spec.params_dict())
