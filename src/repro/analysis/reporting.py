"""Plain-text report formatting used by the CLI, examples and benchmarks.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers render lists of row dictionaries as aligned
ASCII tables and numeric series as compact sparkline-style summaries, so the
output is readable in a terminal and diff-able in CI logs.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["format_table", "format_series", "format_kv"]


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        if magnitude >= 100:
            return f"{value:.1f}"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Mapping], title: str | None = None) -> str:
    """Render a list of row dictionaries as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    rendered = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in rendered:
        lines.append(" | ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_kv(values: Mapping, title: str | None = None) -> str:
    """Render a mapping as aligned ``key : value`` lines."""
    if not values:
        return f"{title}\n(empty)" if title else "(empty)"
    width = max(len(str(k)) for k in values)
    lines = [title] if title else []
    for key, value in values.items():
        lines.append(f"{str(key).ljust(width)} : {_format_value(value)}")
    return "\n".join(lines)


def format_series(
    name: str,
    times: Iterable[float],
    values: Iterable[float],
    n_points: int = 12,
    units: str = "",
) -> str:
    """Summarise a time series as a fixed number of resampled points.

    Used by the figure-reproduction benches to print the *series* a figure
    plots without dumping thousands of samples.
    """
    times = np.asarray(list(times), dtype=float)
    values = np.asarray(list(values), dtype=float)
    if len(times) == 0:
        return f"{name}: (empty)"
    if len(times) == 1:
        return f"{name}: t={times[0]:.1f}s -> {values[0]:.3g}{units}"
    sample_times = np.linspace(times[0], times[-1], n_points)
    sampled = np.interp(sample_times, times, values)
    points = ", ".join(f"{v:.3g}" for v in sampled)
    return (
        f"{name} [{units}] over t=[{times[0]:.0f}, {times[-1]:.0f}]s: "
        f"min={values.min():.3g}, mean={values.mean():.3g}, max={values.max():.3g}\n"
        f"  samples: {points}"
    )
