"""Maximum-power-point tracking analysis (paper Fig. 13).

A side effect of stabilising the supply voltage at the PV array's calibrated
maximum power point is that the proposed scheme performs MPPT "for free",
without dedicated MPPT hardware.  This module quantifies that claim: how much
of the time the operating voltage sat near the MPP voltage, and how much of
the theoretically extractable energy was actually extracted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..energy.pv_array import PVArray
from ..sim.result import SimulationResult

__all__ = ["MPPTReport", "mppt_report", "operating_voltage_histogram"]


@dataclass(frozen=True)
class MPPTReport:
    """How well the run tracked the PV array's maximum power point."""

    mpp_voltage: float
    mpp_power_at_stc: float
    mean_operating_voltage: float
    fraction_near_mpp_voltage: float
    extraction_efficiency: float

    def as_dict(self) -> dict:
        return {
            "mpp_voltage_v": self.mpp_voltage,
            "mpp_power_at_stc_w": self.mpp_power_at_stc,
            "mean_operating_voltage_v": self.mean_operating_voltage,
            "fraction_near_mpp_voltage": self.fraction_near_mpp_voltage,
            "extraction_efficiency": self.extraction_efficiency,
        }


def operating_voltage_histogram(
    result: SimulationResult, bin_width_v: float = 0.25, v_max: float = 7.0
) -> tuple[np.ndarray, np.ndarray]:
    """Fraction of time spent at each operating voltage (the Fig. 13 bars).

    Returns ``(bin_edges, fractions)`` where ``fractions`` sums to 1.
    """
    if bin_width_v <= 0:
        raise ValueError("bin_width_v must be positive")
    edges = np.arange(0.0, v_max + bin_width_v, bin_width_v)
    fractions = result.time_at_voltage_histogram(edges)
    return edges, fractions


def mppt_report(
    result: SimulationResult,
    array: PVArray,
    voltage_tolerance: float = 0.05,
    stc_irradiance: float = 1000.0,
) -> MPPTReport:
    """Quantify MPP tracking for a run driven by the given PV array.

    ``extraction_efficiency`` is harvested energy divided by the energy that
    would have been harvested had the array been held exactly at its MPP for
    the same irradiance profile (i.e. the integral of the available power).
    """
    if len(result.times) < 2:
        raise ValueError("the simulation result contains too few samples")
    mpp = array.maximum_power_point(stc_irradiance)
    dt = np.diff(result.times)
    weights = np.concatenate((dt, [dt[-1]]))
    total = float(np.sum(weights))
    mean_v = float(np.sum(result.supply_voltage * weights) / total)

    lower = mpp.voltage * (1.0 - voltage_tolerance)
    upper = mpp.voltage * (1.0 + voltage_tolerance)
    near = (result.supply_voltage >= lower) & (result.supply_voltage <= upper)
    fraction_near = float(np.sum(weights[near]) / total)

    available_energy = float(np.trapezoid(result.available_power, result.times))
    harvested_energy = float(np.trapezoid(result.harvested_power, result.times))
    efficiency = harvested_energy / available_energy if available_energy > 0 else 0.0

    return MPPTReport(
        mpp_voltage=mpp.voltage,
        mpp_power_at_stc=mpp.power,
        mean_operating_voltage=mean_v,
        fraction_near_mpp_voltage=fraction_near,
        extraction_efficiency=min(efficiency, 1.0),
    )
