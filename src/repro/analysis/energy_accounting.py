"""Energy and work accounting (paper Fig. 14 and Table II).

Quantifies how well a power-management scheme used the available harvest:
energy harvested vs. energy consumed vs. maximum harvestable energy, the
instantaneous tracking error between consumed and available power (the gap in
Fig. 14), and the work metrics of Table II (instructions completed, renders
per minute, lifetime).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.result import SimulationResult
from ..workloads.workload import Workload

__all__ = ["EnergyAccount", "Table2Row", "energy_account", "table2_row", "power_tracking_error"]


@dataclass(frozen=True)
class EnergyAccount:
    """Energy totals over a run."""

    available_energy_j: float
    harvested_energy_j: float
    consumed_energy_j: float
    harvest_utilisation: float
    mean_available_power_w: float
    mean_consumed_power_w: float

    def as_dict(self) -> dict:
        return {
            "available_energy_j": self.available_energy_j,
            "harvested_energy_j": self.harvested_energy_j,
            "consumed_energy_j": self.consumed_energy_j,
            "harvest_utilisation": self.harvest_utilisation,
            "mean_available_power_w": self.mean_available_power_w,
            "mean_consumed_power_w": self.mean_consumed_power_w,
        }


@dataclass(frozen=True)
class Table2Row:
    """One row of the Table II governor comparison."""

    scheme: str
    renders_per_minute: float
    lifetime_s: float
    instructions_billions: float
    survived: bool

    def as_dict(self) -> dict:
        minutes, seconds = divmod(int(round(self.lifetime_s)), 60)
        return {
            "scheme": self.scheme,
            "avg_performance_render_per_min": self.renders_per_minute,
            "lifetime_mm_ss": f"{minutes:02d}:{seconds:02d}",
            "instructions_billions": self.instructions_billions,
            "survived": self.survived,
        }


def energy_account(result: SimulationResult) -> EnergyAccount:
    """Energy totals and harvest utilisation for one simulation run."""
    if len(result.times) < 2:
        raise ValueError("the simulation result contains too few samples")
    available_energy = float(np.trapezoid(result.available_power, result.times))
    duration = result.duration_s if result.duration_s > 0 else float(result.times[-1] - result.times[0])
    utilisation = result.consumed_energy_j / available_energy if available_energy > 0 else 0.0
    return EnergyAccount(
        available_energy_j=available_energy,
        harvested_energy_j=result.harvested_energy_j,
        consumed_energy_j=result.consumed_energy_j,
        harvest_utilisation=utilisation,
        mean_available_power_w=available_energy / duration if duration > 0 else 0.0,
        mean_consumed_power_w=result.consumed_energy_j / duration if duration > 0 else 0.0,
    )


def power_tracking_error(result: SimulationResult) -> dict:
    """Statistics of the (available - consumed) power gap while running.

    A perfectly power-neutral system would keep the consumed power just below
    the available power at all times (Fig. 14); the mean and RMS gap quantify
    how closely that is achieved, and ``overdraw_fraction`` is the fraction of
    time the load exceeded what was harvestable (drawing down the buffer).
    """
    if len(result.times) < 2:
        raise ValueError("the simulation result contains too few samples")
    running = result.running > 0.5
    gap = result.available_power - result.consumed_power
    gap_running = gap[running]
    if len(gap_running) == 0:
        return {"mean_gap_w": 0.0, "rms_gap_w": 0.0, "overdraw_fraction": 0.0}
    return {
        "mean_gap_w": float(np.mean(gap_running)),
        "rms_gap_w": float(np.sqrt(np.mean(gap_running**2))),
        "overdraw_fraction": float(np.mean(gap_running < 0.0)),
    }


def table2_row(result: SimulationResult, render_workload: Workload, scheme: str | None = None) -> Table2Row:
    """Build one Table II row from a governor-comparison run."""
    renders = render_workload.units_completed(result.total_instructions)
    duration_minutes = result.duration_s / 60.0 if result.duration_s > 0 else 1.0
    return Table2Row(
        scheme=scheme if scheme is not None else result.governor_name,
        renders_per_minute=renders / duration_minutes,
        lifetime_s=result.lifetime_s,
        instructions_billions=result.total_instructions / 1e9,
        survived=result.survived,
    )
