"""Analysis: stability, energy accounting, MPPT, overhead, report formatting."""

from .stability import StabilityReport, fraction_within_tolerance, voltage_stability_report
from .energy_accounting import (
    EnergyAccount,
    Table2Row,
    energy_account,
    power_tracking_error,
    table2_row,
)
from .mppt import MPPTReport, mppt_report, operating_voltage_histogram
from .overhead import OverheadReport, overhead_report
from .reporting import format_kv, format_series, format_table

__all__ = [
    "StabilityReport",
    "fraction_within_tolerance",
    "voltage_stability_report",
    "EnergyAccount",
    "Table2Row",
    "energy_account",
    "power_tracking_error",
    "table2_row",
    "MPPTReport",
    "mppt_report",
    "operating_voltage_histogram",
    "OverheadReport",
    "overhead_report",
    "format_kv",
    "format_series",
    "format_table",
]
