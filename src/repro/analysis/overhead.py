"""Overhead analysis of the control scheme (paper Section V-D and Fig. 15).

The paper reports two overheads for the proposed approach:

* **CPU time**: the interrupt-driven power-budgeting software consumed on
  average 0.104 % of CPU time over the full test;
* **monitoring power**: the external threshold hardware draws 1.61 mW, which
  is below 0.82 % of the minimum (and 0.01 % of the maximum) system power.

Both are reproduced here from the governor's invocation accounting and the
platform's power envelope.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.monitor import MONITOR_POWER_W
from ..sim.result import SimulationResult
from ..soc.platform import SoCPlatform

__all__ = ["OverheadReport", "overhead_report"]


@dataclass(frozen=True)
class OverheadReport:
    """CPU and power overheads of a power-management scheme."""

    governor_invocations: int
    governor_cpu_time_s: float
    cpu_overhead_fraction: float
    monitor_power_w: float
    monitor_fraction_of_min_power: float
    monitor_fraction_of_max_power: float

    def as_dict(self) -> dict:
        return {
            "governor_invocations": self.governor_invocations,
            "governor_cpu_time_s": self.governor_cpu_time_s,
            "cpu_overhead_percent": 100.0 * self.cpu_overhead_fraction,
            "monitor_power_mw": 1e3 * self.monitor_power_w,
            "monitor_percent_of_min_power": 100.0 * self.monitor_fraction_of_min_power,
            "monitor_percent_of_max_power": 100.0 * self.monitor_fraction_of_max_power,
        }


def overhead_report(
    result: SimulationResult,
    platform: SoCPlatform,
    monitor_power_w: float = MONITOR_POWER_W,
) -> OverheadReport:
    """Compute the Section V-D overhead figures for a run."""
    duration = result.duration_s
    cpu_fraction = result.governor_cpu_time_s / duration if duration > 0 else 0.0
    min_power = platform.power_model.power(platform.opp_table.lowest)
    max_power = platform.power_model.power(platform.opp_table.highest)
    return OverheadReport(
        governor_invocations=result.governor_invocations,
        governor_cpu_time_s=result.governor_cpu_time_s,
        cpu_overhead_fraction=cpu_fraction,
        monitor_power_w=monitor_power_w,
        monitor_fraction_of_min_power=monitor_power_w / min_power if min_power > 0 else 0.0,
        monitor_fraction_of_max_power=monitor_power_w / max_power if max_power > 0 else 0.0,
    )
