"""Voltage-stability analysis (paper Fig. 12 and the Section III tuning metric).

The paper's headline stability result is that the proposed scheme keeps the
supply voltage within ±5 % of the 5.3 V target for 93.3 % of a six-hour
full-sun run; the Section III parameter search also scores candidate
parameter sets by "the proportion of time spent within 5 % of the target
voltage".  This module computes those quantities from simulation results or
raw traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.result import SimulationResult

__all__ = ["StabilityReport", "fraction_within_tolerance", "voltage_stability_report"]


@dataclass(frozen=True)
class StabilityReport:
    """Summary statistics of supply-voltage stability over a run."""

    target_voltage: float
    tolerance: float
    fraction_within: float
    mean_voltage: float
    min_voltage: float
    max_voltage: float
    std_voltage: float
    fraction_below_minimum: float
    minimum_operating_voltage: float

    def as_dict(self) -> dict:
        return {
            "target_voltage_v": self.target_voltage,
            "tolerance": self.tolerance,
            "fraction_within": self.fraction_within,
            "mean_voltage_v": self.mean_voltage,
            "min_voltage_v": self.min_voltage,
            "max_voltage_v": self.max_voltage,
            "std_voltage_v": self.std_voltage,
            "fraction_below_vmin": self.fraction_below_minimum,
        }


def fraction_within_tolerance(
    times: np.ndarray,
    voltage: np.ndarray,
    target_voltage: float,
    tolerance: float = 0.05,
) -> float:
    """Time-weighted fraction of samples within ±tolerance of the target."""
    times = np.asarray(times, dtype=float)
    voltage = np.asarray(voltage, dtype=float)
    if len(times) != len(voltage):
        raise ValueError("times and voltage must have the same length")
    if len(times) < 2:
        return 0.0
    if target_voltage <= 0:
        raise ValueError("target_voltage must be positive")
    lower = target_voltage * (1.0 - tolerance)
    upper = target_voltage * (1.0 + tolerance)
    within = (voltage >= lower) & (voltage <= upper)
    dt = np.diff(times)
    weights = np.concatenate((dt, [dt[-1]]))
    total = float(np.sum(weights))
    if total <= 0:
        return 0.0
    return float(np.sum(weights[within]) / total)


def voltage_stability_report(
    result: SimulationResult,
    target_voltage: float,
    tolerance: float = 0.05,
    minimum_operating_voltage: float = 4.1,
) -> StabilityReport:
    """Compute the Fig. 12-style stability report for a simulation run."""
    times = result.times
    voltage = result.supply_voltage
    if len(times) < 2:
        raise ValueError("the simulation result contains too few samples")
    dt = np.diff(times)
    weights = np.concatenate((dt, [dt[-1]]))
    total = float(np.sum(weights))
    below = voltage < minimum_operating_voltage
    return StabilityReport(
        target_voltage=target_voltage,
        tolerance=tolerance,
        fraction_within=fraction_within_tolerance(times, voltage, target_voltage, tolerance),
        mean_voltage=float(np.sum(voltage * weights) / total),
        min_voltage=float(np.min(voltage)),
        max_voltage=float(np.max(voltage)),
        std_voltage=float(np.sqrt(np.sum(weights * (voltage - np.sum(voltage * weights) / total) ** 2) / total)),
        fraction_below_minimum=float(np.sum(weights[below]) / total),
        minimum_operating_voltage=minimum_operating_voltage,
    )
