"""Voltage-monitoring hardware substrate (paper Fig. 9).

Models the external low-power circuitry that generates the ``V_high`` /
``V_low`` interrupts: resistor dividers, the MCP4131 digital potentiometer,
the comparator, and the dual-channel :class:`VoltageMonitor` that the system
simulator samples each step.
"""

from .comparator import Comparator, LT6703_REFERENCE_V
from .divider import ResistorDivider
from .potentiometer import (
    DigitalPotentiometer,
    MCP4131_FULL_SCALE_OHM,
    MCP4131_TAPS,
)
from .monitor import (
    MONITOR_POWER_W,
    ThresholdChannel,
    ThresholdCrossing,
    VoltageMonitor,
)

__all__ = [
    "Comparator",
    "LT6703_REFERENCE_V",
    "ResistorDivider",
    "DigitalPotentiometer",
    "MCP4131_FULL_SCALE_OHM",
    "MCP4131_TAPS",
    "MONITOR_POWER_W",
    "ThresholdChannel",
    "ThresholdCrossing",
    "VoltageMonitor",
    ]
