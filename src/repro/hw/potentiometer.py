"""Digital potentiometer model (Microchip MCP4131, paper Fig. 9).

The threshold voltages are set by the processor over SPI by programming a
digital potentiometer that trims the divider feeding the comparator.  The
MCP4131 is a 7-bit device: 129 wiper positions (taps 0..128) across the
full-scale resistance, plus a small wiper resistance.  The finite tap count
quantises the achievable threshold voltages — an effect the governor can be
configured to include or idealise (see the ablation benches).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DigitalPotentiometer", "MCP4131_TAPS", "MCP4131_FULL_SCALE_OHM"]

#: Number of wiper positions of the MCP4131 (7-bit + full-scale tap).
MCP4131_TAPS = 129
#: Full-scale resistance of the MCP4131-104 variant used in the paper's design.
MCP4131_FULL_SCALE_OHM = 100_000.0
#: Typical wiper resistance of the MCP4131.
MCP4131_WIPER_OHM = 75.0


@dataclass
class DigitalPotentiometer:
    """An SPI-programmable potentiometer with a finite number of taps.

    Attributes
    ----------
    full_scale_ohm:
        End-to-end resistance of the resistor ladder.
    taps:
        Number of wiper positions (tap 0 = 0 Ω, tap ``taps - 1`` = full scale).
    wiper_resistance_ohm:
        Constant series resistance of the wiper switch.
    tap:
        Current wiper position (state).
    """

    full_scale_ohm: float = MCP4131_FULL_SCALE_OHM
    taps: int = MCP4131_TAPS
    wiper_resistance_ohm: float = MCP4131_WIPER_OHM
    tap: int = 0

    def __post_init__(self) -> None:
        if self.full_scale_ohm <= 0:
            raise ValueError("full_scale_ohm must be positive")
        if self.taps < 2:
            raise ValueError("taps must be at least 2")
        if self.wiper_resistance_ohm < 0:
            raise ValueError("wiper_resistance_ohm must be non-negative")
        if not 0 <= self.tap < self.taps:
            raise ValueError(f"tap must lie in [0, {self.taps - 1}]")
        # Count of SPI writes, useful for overhead accounting.
        self.write_count: int = 0

    # ------------------------------------------------------------------
    # Programming
    # ------------------------------------------------------------------
    def set_tap(self, tap: int) -> None:
        """Program the wiper position (emulates an SPI write)."""
        if not 0 <= tap < self.taps:
            raise ValueError(f"tap must lie in [0, {self.taps - 1}]")
        self.tap = int(tap)
        self.write_count += 1

    def nearest_tap_for_resistance(self, resistance_ohm: float) -> int:
        """The tap whose wiper-to-B resistance is closest to the request."""
        resistance_ohm = min(max(resistance_ohm - self.wiper_resistance_ohm, 0.0), self.full_scale_ohm)
        step = self.full_scale_ohm / (self.taps - 1)
        return int(round(resistance_ohm / step))

    def set_resistance(self, resistance_ohm: float) -> float:
        """Program the nearest achievable resistance; returns the actual value."""
        self.set_tap(self.nearest_tap_for_resistance(resistance_ohm))
        return self.resistance_ohm

    # ------------------------------------------------------------------
    # Electrical value
    # ------------------------------------------------------------------
    @property
    def resistance_ohm(self) -> float:
        """Present wiper-to-B resistance, including the wiper resistance."""
        step = self.full_scale_ohm / (self.taps - 1)
        return self.tap * step + self.wiper_resistance_ohm

    @property
    def resolution_ohm(self) -> float:
        """Resistance change per tap step."""
        return self.full_scale_ohm / (self.taps - 1)
