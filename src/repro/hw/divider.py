"""Resistive voltage dividers used by the threshold-monitoring hardware.

The monitoring circuit of paper Fig. 9 first reduces the supply voltage
coarsely with a fixed potential divider (470 kΩ / 100 kΩ in the paper), then
finely with a digital potentiometer, before comparing against the comparator's
internal 400 mV reference.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ResistorDivider"]


@dataclass(frozen=True)
class ResistorDivider:
    """A two-resistor potential divider.

    Attributes
    ----------
    r_top_ohm:
        Resistance between the input node and the output tap.
    r_bottom_ohm:
        Resistance between the output tap and ground.
    """

    r_top_ohm: float
    r_bottom_ohm: float

    def __post_init__(self) -> None:
        if self.r_top_ohm < 0:
            raise ValueError("r_top_ohm must be non-negative")
        if self.r_bottom_ohm <= 0:
            raise ValueError("r_bottom_ohm must be positive")

    @property
    def ratio(self) -> float:
        """Division ratio V_out / V_in."""
        return self.r_bottom_ohm / (self.r_top_ohm + self.r_bottom_ohm)

    def output(self, v_in: float) -> float:
        """Divider output voltage for an input voltage."""
        return v_in * self.ratio

    def required_input(self, v_out: float) -> float:
        """Input voltage that would produce the given output voltage."""
        return v_out / self.ratio

    def current_draw(self, v_in: float) -> float:
        """Quiescent current drawn from the input node (A)."""
        return v_in / (self.r_top_ohm + self.r_bottom_ohm)

    def power_draw(self, v_in: float) -> float:
        """Quiescent power dissipated by the divider (W)."""
        return v_in * self.current_draw(v_in)
