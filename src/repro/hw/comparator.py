"""Analogue comparator model (LT6703 family, paper Fig. 9).

The comparator compares the divided-down supply voltage against its internal
400 mV reference and drives the interrupt line through a MOSFET level shifter.
A small hysteresis keeps the interrupt line from chattering when the input
sits exactly on the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Comparator", "LT6703_REFERENCE_V"]

#: Internal reference voltage of the LT6703-3.
LT6703_REFERENCE_V = 0.400


@dataclass
class Comparator:
    """A comparator with hysteresis.

    Output is ``True`` when the (divided) input voltage exceeds the reference.
    The hysteresis band is centred on the reference: the output switches high
    at ``reference + hysteresis/2`` and low at ``reference - hysteresis/2``.

    Attributes
    ----------
    reference_v:
        Threshold reference voltage.
    hysteresis_v:
        Total width of the hysteresis band.
    output:
        Present logical output (state).
    propagation_delay_s:
        Input-to-output delay, exposed for latency budgeting.
    """

    reference_v: float = LT6703_REFERENCE_V
    hysteresis_v: float = 0.002
    output: bool = False
    propagation_delay_s: float = 20e-6

    def __post_init__(self) -> None:
        if self.reference_v <= 0:
            raise ValueError("reference_v must be positive")
        if self.hysteresis_v < 0:
            raise ValueError("hysteresis_v must be non-negative")
        if self.propagation_delay_s < 0:
            raise ValueError("propagation_delay_s must be non-negative")

    def update(self, input_v: float) -> bool:
        """Update the comparator with a new input sample; returns the output."""
        high_trip = self.reference_v + 0.5 * self.hysteresis_v
        low_trip = self.reference_v - 0.5 * self.hysteresis_v
        if not self.output and input_v > high_trip:
            self.output = True
        elif self.output and input_v < low_trip:
            self.output = False
        return self.output

    def would_trip_high(self, input_v: float) -> bool:
        """Whether a rising input at this level would switch the output high."""
        return input_v > self.reference_v + 0.5 * self.hysteresis_v

    def would_trip_low(self, input_v: float) -> bool:
        """Whether a falling input at this level would switch the output low."""
        return input_v < self.reference_v - 0.5 * self.hysteresis_v
