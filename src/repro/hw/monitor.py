"""Dual-threshold voltage-monitoring hardware (paper Fig. 9).

Two identical channels watch the supply/capacitor voltage ``V_C``:

* the **low channel** raises an interrupt when ``V_C`` falls below ``V_low``,
* the **high channel** raises an interrupt when ``V_C`` rises above ``V_high``.

Each channel is a resistive divider whose bottom leg is an SPI-programmable
digital potentiometer (MCP4131), feeding a comparator with a 400 mV internal
reference.  Programming the potentiometer therefore sets the threshold, with
a finite resolution of roughly 50 mV near the 5.3 V operating point — the
quantisation the real hardware imposes on ``V_q`` and ``V_width``.

The measured power draw of the complete monitoring circuit is 1.61 mW
(Section V-D); the model exposes that constant for the overhead accounting in
:mod:`repro.analysis.overhead`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .comparator import Comparator, LT6703_REFERENCE_V
from .potentiometer import DigitalPotentiometer

__all__ = [
    "ThresholdCrossing",
    "ThresholdChannel",
    "VoltageMonitor",
    "MONITOR_POWER_W",
]

#: Measured power consumption of the complete monitoring hardware (Section V-D).
MONITOR_POWER_W = 1.61e-3


class ThresholdCrossing(str, Enum):
    """Which threshold was crossed (the hardware interrupt identity)."""

    LOW = "low"
    HIGH = "high"


@dataclass
class ThresholdChannel:
    """One comparator channel: fixed top resistor + digital pot + comparator.

    The threshold is the supply voltage at which the divided-down voltage
    equals the comparator reference:

        V_th = V_ref * (R_top + R_pot) / R_pot

    so programming ``R_pot`` sets the threshold.  ``quantised=False`` bypasses
    the potentiometer's finite tap resolution and realises thresholds exactly
    (useful for idealised simulation and the quantisation ablation).
    """

    r_top_ohm: float = 900_000.0
    reference_v: float = LT6703_REFERENCE_V
    quantised: bool = True
    potentiometer: DigitalPotentiometer = field(default_factory=DigitalPotentiometer)
    comparator: Comparator = field(default_factory=Comparator)
    _ideal_threshold: float | None = None
    # Memoised threshold keyed by the potentiometer tap: the simulator reads
    # the threshold every sample but reprograms it only at governor events.
    _cached_tap: int | None = field(default=None, repr=False, compare=False)
    _cached_threshold: float = field(default=0.0, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.r_top_ohm <= 0:
            raise ValueError("r_top_ohm must be positive")
        if self.reference_v <= 0:
            raise ValueError("reference_v must be positive")

    # ------------------------------------------------------------------
    # Threshold programming
    # ------------------------------------------------------------------
    @property
    def minimum_threshold(self) -> float:
        """Lowest threshold the channel can realise (pot at full scale)."""
        r_max = self.potentiometer.full_scale_ohm + self.potentiometer.wiper_resistance_ohm
        return self.reference_v * (self.r_top_ohm + r_max) / r_max

    def threshold_for_resistance(self, r_pot_ohm: float) -> float:
        """Threshold realised by a given bottom-leg resistance."""
        if r_pot_ohm <= 0:
            raise ValueError("r_pot_ohm must be positive")
        return self.reference_v * (self.r_top_ohm + r_pot_ohm) / r_pot_ohm

    def resistance_for_threshold(self, threshold_v: float) -> float:
        """Bottom-leg resistance that realises a given threshold exactly."""
        if threshold_v <= self.reference_v:
            raise ValueError("threshold must exceed the comparator reference")
        return self.r_top_ohm / (threshold_v / self.reference_v - 1.0)

    def set_threshold(self, threshold_v: float) -> float:
        """Program the channel to the nearest achievable threshold.

        Returns the threshold actually realised (equal to the request when the
        channel is configured as ideal / unquantised).
        """
        if self.quantised:
            r_request = self.resistance_for_threshold(threshold_v)
            self.potentiometer.set_resistance(r_request)
            self._ideal_threshold = None
            return self.threshold

        self._ideal_threshold = float(threshold_v)
        return self.threshold

    @property
    def threshold(self) -> float:
        """The presently programmed threshold voltage."""
        if self._ideal_threshold is not None:
            return self._ideal_threshold
        tap = self.potentiometer.tap
        if tap != self._cached_tap:
            self._cached_tap = tap
            self._cached_threshold = self.threshold_for_resistance(
                self.potentiometer.resistance_ohm
            )
        return self._cached_threshold

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def above_threshold(self, supply_v: float) -> bool:
        """Whether the supply is above the programmed threshold right now."""
        return supply_v > self.threshold

    def update(self, supply_v: float) -> bool:
        """Feed a supply-voltage sample through the comparator; returns output."""
        divided = supply_v * self.reference_v / self.threshold
        return self.comparator.update(divided)


class VoltageMonitor:
    """Two threshold channels generating LOW / HIGH interrupts.

    Parameters
    ----------
    quantised:
        Whether threshold programming is limited to the potentiometer's
        resolution (the real hardware) or ideal.
    power_w:
        Power drawn by the monitoring hardware (drawn from the harvesting
        node alongside the board).
    """

    def __init__(self, quantised: bool = True, power_w: float = MONITOR_POWER_W):
        if power_w < 0:
            raise ValueError("power_w must be non-negative")
        self.low_channel = ThresholdChannel(quantised=quantised)
        self.high_channel = ThresholdChannel(quantised=quantised)
        self.power_w = power_w
        self._armed = False
        self._was_above_low = True
        self._was_below_high = True
        self.interrupt_count = 0

    # ------------------------------------------------------------------
    # Threshold programming
    # ------------------------------------------------------------------
    @property
    def v_low(self) -> float:
        return self.low_channel.threshold

    @property
    def v_high(self) -> float:
        return self.high_channel.threshold

    def set_thresholds(self, v_low: float, v_high: float) -> tuple[float, float]:
        """Program both thresholds; returns the (quantised) realised values.

        The realised ``v_low`` is always strictly below the realised
        ``v_high``; if quantisation would collapse them the caller's ordering
        is preserved by construction because the channels share the same
        resolution and ``v_low < v_high`` maps to distinct resistances.
        """
        if v_low >= v_high:
            raise ValueError(f"v_low ({v_low}) must be below v_high ({v_high})")
        actual_low = self.low_channel.set_threshold(v_low)
        actual_high = self.high_channel.set_threshold(v_high)
        return actual_low, actual_high

    # ------------------------------------------------------------------
    # Sampling / interrupt generation
    # ------------------------------------------------------------------
    def prime(self, supply_v: float) -> None:
        """(Re-)arm the channels after programming the thresholds.

        The paper's control flow (Fig. 5) keeps responding while the supply
        voltage remains beyond a threshold: after the ISR shifts the
        thresholds by ``V_q``, a supply that is *still* outside the tracked
        window must trigger another response.  Arming both channels as if the
        supply were inside the window reproduces that behaviour: the next
        :meth:`sample` fires again if the supply is still below ``V_low`` or
        above ``V_high``, and fires nothing once the thresholds have caught
        up.
        """
        self._was_above_low = True
        self._was_below_high = True
        self._armed = True

    def acknowledge(self, supply_v: float) -> None:
        """Acknowledge an interrupt without re-arming a level trigger.

        Used when the governor had no further response to give (it is already
        at the extreme of its actuation range and the thresholds cannot move
        further): the channel state is latched to the present level, so no
        new interrupt fires until the supply genuinely re-crosses a threshold.
        This mirrors the edge-triggered GPIO path of the real hardware.
        """
        self._was_above_low = supply_v > self.low_channel.threshold
        self._was_below_high = supply_v < self.high_channel.threshold
        self._armed = True

    def sample(self, supply_v: float) -> list[ThresholdCrossing]:
        """Process a supply-voltage sample; return any interrupts generated.

        A LOW interrupt fires on a downward crossing of ``V_low``; a HIGH
        interrupt fires on an upward crossing of ``V_high``.  Both can fire in
        the same sample only if the thresholds were reprogrammed between
        samples (the governor's threshold updates re-prime the channels).
        """
        if not self._armed:
            self.prime(supply_v)
            return []

        # The channel thresholds are tap-memoised, so these reads are cheap
        # even though sample() runs once per simulation step.
        above_low = supply_v > self.low_channel.threshold
        below_high = supply_v < self.high_channel.threshold
        fire_low = self._was_above_low and not above_low
        fire_high = self._was_below_high and not below_high
        self._was_above_low = above_low
        self._was_below_high = below_high
        if not (fire_low or fire_high):
            return []

        events: list[ThresholdCrossing] = []
        if fire_low:
            events.append(ThresholdCrossing.LOW)
        if fire_high:
            events.append(ThresholdCrossing.HIGH)
        self.interrupt_count += len(events)
        return events

    @property
    def spi_write_count(self) -> int:
        """Total number of potentiometer (SPI) writes across both channels."""
        return self.low_channel.potentiometer.write_count + self.high_channel.potentiometer.write_count
