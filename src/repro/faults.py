"""Deterministic, seeded fault injection + the retry/backoff vocabulary.

The paper's subject is systems that survive *power* loss gracefully; this
module holds the campaign infrastructure to the same standard under *process*
loss.  It provides two things:

* **Fault injection** — named sites woven through the execution stack
  (``store.append``, ``sqlindex.refresh``, ``worker.simulate``,
  ``dist.worker_loop``, ``serve.handle``, ``serve.scheduler``) fire against a
  JSON :class:`FaultPlan` that can inject exceptions, hard crashes
  (``os._exit``, the process-level analogue of a brown-out), delays and torn
  writes.  The plan travels in the ``REPRO_FAULTS`` environment variable —
  inline JSON or a path to a JSON file — so it propagates into shard worker
  processes and their pool grandchildren under fork and spawn alike.

* **Self-healing vocabulary** — :func:`classify_error` splits failures into
  ``transient`` (worth retrying: I/O, connections, injected chaos) vs
  ``deterministic`` (same inputs, same failure: config errors), and
  :class:`RetryPolicy` turns attempt numbers into bounded exponential
  backoff with *deterministic* jitter, so chaos runs replay exactly.

Strict no-op when unset: :func:`active` resolves ``REPRO_FAULTS`` once per
process and caches the result, so a disabled build pays one module-global
``is`` check per *call site* invocation — no environment lookups on the
per-scenario fast path.

Determinism: every probabilistic decision is drawn from
``random.Random(f"{seed}:{rule}:{hit}")``, and one-shot rules can pin a
filesystem breadcrumb (``state_dir``) so "crash exactly once" holds across
respawned processes — without it, a respawned worker re-reading the same
plan would crash forever.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

__all__ = [
    "FAULTS_ENV",
    "FAULT_SITES",
    "FAULT_KINDS",
    "InjectedFault",
    "InjectedIOFault",
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "active",
    "install",
    "reset",
    "classify_error",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
]

#: Environment variable carrying a fault plan: inline JSON ("{...}") or a
#: path to a JSON file.  Inherited by worker processes, which is the point.
FAULTS_ENV = "REPRO_FAULTS"

#: The named injection sites woven through the stack.  A plan may name any
#: site string, but these are the ones that fire today.
FAULT_SITES = (
    "store.append",
    "sqlindex.refresh",
    "worker.simulate",
    "dist.worker_loop",
    "serve.handle",
    "serve.scheduler",
)

#: What a triggered rule does.
FAULT_KINDS = ("error", "crash", "delay", "torn-write")


class InjectedFault(RuntimeError):
    """An exception raised on purpose by a fault rule (``error_type: fault``)."""

    def __init__(self, message: str, site: str = "?", transient: bool = True):
        super().__init__(message)
        self.site = site
        self.transient = transient


class InjectedIOFault(OSError):
    """An injected *I/O* failure (``error_type: io``).

    An :class:`OSError` subclass, so sites guarded by I/O-shaped fallbacks
    (e.g. the SQLite sidecar's ``SIDECAR_ERRORS`` linear-scan fallback)
    exercise their real degradation path under injection.
    """

    def __init__(self, message: str, site: str = "?", transient: bool = True):
        super().__init__(message)
        self.site = site
        self.transient = transient


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: where it fires, what it does, how often.

    Attributes
    ----------
    site:
        The call-site name the rule arms (see :data:`FAULT_SITES`).
    kind:
        ``error`` raises, ``crash`` calls ``os._exit(exit_code)``, ``delay``
        sleeps ``delay_s``, ``torn-write`` asks the site to half-write (only
        ``store.append`` enacts it; elsewhere it degrades to a no-op hit).
    times:
        How many triggers before the rule disarms; ``0`` means unlimited.
    after:
        Matching calls to skip before the rule starts triggering — "crash on
        the third append" is ``after: 2``.
    probability:
        Chance a matching, armed call triggers, drawn deterministically from
        the plan seed + rule index + hit ordinal.
    once:
        With a plan ``state_dir``, pin a filesystem breadcrumb on first
        trigger so the rule fires at most once *across processes* (a
        respawned worker inherits the same plan and must not re-crash).
        Without a ``state_dir`` it caps ``times`` at 1 per process.
    match:
        Optional attribute equality filter against the keyword attributes
        the call site passes to :meth:`FaultInjector.fire`.
    """

    site: str
    kind: str = "error"
    times: int = 1
    after: int = 0
    probability: float = 1.0
    delay_s: float = 0.05
    message: str = ""
    transient: bool = True
    error_type: str = "fault"  # "fault" (RuntimeError) | "io" (OSError)
    exit_code: int = 86
    once: bool = False
    match: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"fault kind must be one of {FAULT_KINDS} (got {self.kind!r})")
        if self.error_type not in ("fault", "io"):
            raise ValueError(f"error_type must be 'fault' or 'io' (got {self.error_type!r})")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(f"probability must be in (0, 1] (got {self.probability})")

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 — name set
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault rule keys: {sorted(unknown)}")
        if "site" not in data:
            raise ValueError("fault rule requires a 'site'")
        return cls(**data)

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "kind": self.kind,
            "times": self.times,
            "after": self.after,
            "probability": self.probability,
            "delay_s": self.delay_s,
            "message": self.message,
            "transient": self.transient,
            "error_type": self.error_type,
            "exit_code": self.exit_code,
            "once": self.once,
            "match": dict(self.match),
        }


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault rules, JSON round-trippable for the env var."""

    rules: tuple = ()
    seed: int = 0
    state_dir: Optional[str] = None

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        unknown = set(data) - {"rules", "seed", "state_dir"}
        if unknown:
            raise ValueError(f"unknown fault plan keys: {sorted(unknown)}")
        rules = tuple(
            rule if isinstance(rule, FaultRule) else FaultRule.from_dict(rule)
            for rule in data.get("rules", ())
        )
        return cls(
            rules=rules,
            seed=int(data.get("seed", 0)),
            state_dir=data.get("state_dir"),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid fault plan JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ValueError("fault plan must be a JSON object")
        return cls.from_dict(data)

    def to_dict(self) -> dict:
        doc: dict = {"rules": [rule.to_dict() for rule in self.rules], "seed": self.seed}
        if self.state_dir is not None:
            doc["state_dir"] = self.state_dir
        return doc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


class FaultInjector:
    """Matches :meth:`fire` calls against a plan and enacts triggered rules."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._hits = [0] * len(plan.rules)
        self._applied = [0] * len(plan.rules)
        self._lock = threading.Lock()

    def fire(self, site: str, telemetry=None, metrics=None, **attrs) -> Optional[FaultRule]:
        """Offer an injection opportunity at ``site``.

        Returns the triggered rule (after enacting delays; ``torn-write`` is
        returned for the caller to enact) or ``None``.  ``error`` raises and
        ``crash`` never returns.  Injections are counted into
        ``faults.injected`` *before* enacting, so even a crash leaves its
        trace (the tracer flushes per event, like the store fsyncs per
        append).
        """
        for index, rule in enumerate(self.plan.rules):
            if rule.site != site:
                continue
            if rule.match and any(attrs.get(k) != v for k, v in rule.match.items()):
                continue
            with self._lock:
                self._hits[index] += 1
                hits = self._hits[index]
                if hits <= rule.after:
                    continue
                limit = 1 if (rule.once and not self.plan.state_dir) else rule.times
                if limit > 0 and self._applied[index] >= limit:
                    continue
                if rule.probability < 1.0:
                    rng = random.Random(f"{self.plan.seed}:{index}:{hits}")
                    if rng.random() >= rule.probability:
                        continue
                if rule.once and self.plan.state_dir and not self._claim_once(index):
                    continue
                self._applied[index] += 1
            self._count(rule, site, telemetry, metrics)
            if rule.kind == "delay":
                time.sleep(rule.delay_s)
                return rule
            if rule.kind == "error":
                message = rule.message or f"injected fault at {site}"
                error_cls = InjectedIOFault if rule.error_type == "io" else InjectedFault
                raise error_cls(message, site=site, transient=rule.transient)
            if rule.kind == "crash":
                os._exit(rule.exit_code)
            return rule  # torn-write: the site enacts it
        return None

    def _claim_once(self, index: int) -> bool:
        """Atomically claim a one-shot rule across processes via O_EXCL."""
        state_dir = Path(self.plan.state_dir)  # type: ignore[arg-type]
        breadcrumb = state_dir / f"fault-rule-{index}.fired"
        try:
            state_dir.mkdir(parents=True, exist_ok=True)
            fd = os.open(breadcrumb, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return False  # unwritable state dir: fail safe, do not inject
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(f"pid={os.getpid()}\n")
        return True

    def _count(self, rule: FaultRule, site: str, telemetry, metrics) -> None:
        registry = metrics if metrics is not None else getattr(telemetry, "metrics", None)
        if registry is not None:
            registry.counter("faults.injected")
        tracer = getattr(telemetry, "tracer", None)
        if tracer is not None:
            tracer.counter("faults.injected", site=site, kind=rule.kind)


# ----------------------------------------------------------------------
# Per-process activation: resolve the environment exactly once.
# ----------------------------------------------------------------------
_UNRESOLVED = object()
_active: "FaultInjector | None | object" = _UNRESOLVED


def active() -> Optional[FaultInjector]:
    """The process-wide injector, or ``None`` when no plan is configured.

    The first call resolves :data:`FAULTS_ENV`; every later call is a cached
    global read, so disabled builds never touch the environment on hot paths.
    A malformed plan raises loudly — chaos tooling must not silently no-op.
    """
    global _active
    if _active is _UNRESOLVED:
        _active = _resolve_env()
    return _active  # type: ignore[return-value]


def _resolve_env() -> Optional[FaultInjector]:
    raw = os.environ.get(FAULTS_ENV, "").strip()
    if not raw:
        return None
    if not raw.startswith("{"):
        try:
            raw = Path(raw).read_text(encoding="utf-8")
        except OSError as exc:
            raise ValueError(f"unreadable {FAULTS_ENV} plan file: {exc}") from None
    return FaultInjector(FaultPlan.from_json(raw))


def install(plan: Optional[FaultPlan]) -> Optional[FaultInjector]:
    """Activate a plan in-process (tests; ``None`` disables injection)."""
    global _active
    _active = FaultInjector(plan) if plan is not None else None
    return _active  # type: ignore[return-value]


def reset() -> None:
    """Forget the cached injector; the next :func:`active` re-reads the env."""
    global _active
    _active = _UNRESOLVED


# ----------------------------------------------------------------------
# Error taxonomy + retry policy
# ----------------------------------------------------------------------

#: Exception types presumed transient: the environment failed, not the
#: scenario.  OSError covers disk/sidecar I/O; the rest are plumbing.
TRANSIENT_ERROR_TYPES = (
    ConnectionError,
    TimeoutError,
    EOFError,
    BrokenPipeError,
    InterruptedError,
    OSError,
)


def classify_error(exc: BaseException) -> str:
    """``"transient"`` (retry may succeed) or ``"deterministic"`` (won't).

    An explicit ``transient`` attribute on the exception wins (injected
    faults declare theirs); otherwise I/O-shaped types are transient and
    everything else — ValueError from a bad config, logic errors — is
    deterministic: same inputs, same failure, retrying burns CPU for nothing.
    """
    declared = getattr(exc, "transient", None)
    if isinstance(declared, bool):
        return "transient" if declared else "deterministic"
    return "transient" if isinstance(exc, TRANSIENT_ERROR_TYPES) else "deterministic"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``delay_s(attempt, key)`` grows ``base_delay_s * 2**(attempt-1)`` capped
    at ``max_delay_s``, then spreads by ±``jitter`` drawn from
    ``random.Random(f"{key}:{attempt}")`` — keyed by scenario id, two runs
    of the same campaign back off identically (replayable chaos), while
    different scenarios de-synchronise.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay_s(self, attempt: int, key: str = "") -> float:
        base = min(self.base_delay_s * (2.0 ** max(0, attempt - 1)), self.max_delay_s)
        if self.jitter == 0.0:
            return base
        rng = random.Random(f"{key}:{attempt}")
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))

    def to_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "base_delay_s": self.base_delay_s,
            "max_delay_s": self.max_delay_s,
            "jitter": self.jitter,
        }

    @classmethod
    def from_dict(cls, data: Optional[dict]) -> "RetryPolicy":
        if not data:
            return DEFAULT_RETRY_POLICY
        return cls(**data)


#: The stack-wide default: three attempts, fast first retry, bounded tail.
DEFAULT_RETRY_POLICY = RetryPolicy()
