"""Thin stdlib HTTP client for the campaign service.

Everything rides on :class:`~repro.serve.config.ServeConfig` (URLs and
headers are derived, never assembled at call sites) and
:mod:`urllib.request` — the client stays importable anywhere the repo is.

Typical round trip::

    from repro.serve import ServeClient, ServeConfig

    client = ServeClient(ServeConfig(base_url="http://127.0.0.1:8765"))
    submitted = client.submit("dist-smoke")          # or a SweepSpec/BoundaryQuery
    done = client.wait(submitted["id"], timeout_s=600)
    rows = client.aggregate(submitted["id"])["rows"]

Resubmitting the same spec returns the same campaign id with
``cached: true`` — the server dedupes by content hash, and the store's
content-addressed records make even a fresh service re-serve known
scenarios without simulating.
"""

from __future__ import annotations

import dataclasses
import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Callable, Iterator, Mapping, Optional, Union

from ..faults import RetryPolicy
from ..sweep.adaptive import BoundaryQuery
from ..sweep.spec import SweepSpec
from .config import ServeConfig

__all__ = ["ServeClient", "ServeError", "SUBMIT_RETRY_POLICY"]

#: Campaign states the service reports as finished.
_TERMINAL = ("done", "failed")

#: Default backoff for retried submissions (connection failures and drain
#: 503s): a client racing a restart rides it out in a couple of seconds.
SUBMIT_RETRY_POLICY = RetryPolicy(max_attempts=4, base_delay_s=0.25, max_delay_s=5.0)


class ServeError(RuntimeError):
    """A failed service call: HTTP error payloads and transport failures."""

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        payload=None,
        retry_after_s: Optional[float] = None,
    ):
        super().__init__(message)
        self.status = status
        self.payload = payload
        #: Parsed ``Retry-After`` response header, when the server sent one.
        self.retry_after_s = retry_after_s

    @property
    def retryable(self) -> bool:
        """Whether retrying the same call may succeed: transport failures
        (no status) and 503s (draining / overloaded) — never 4xx/5xx bugs."""
        return self.status is None or self.status == 503


class ServeClient:
    """Blocking client over one :class:`ServeConfig`.

    ``retry`` governs :meth:`submit` only — submission is content-hash
    idempotent on the server (the same spec maps to the same campaign), so
    retrying a transport failure or a drain 503 can never double-schedule
    work.  Reads are left to the caller; set ``retry=RetryPolicy(1)`` (one
    attempt) to disable.
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        retry: Optional[RetryPolicy] = None,
        **overrides,
    ):
        if config is None:
            config = ServeConfig(**overrides)
        elif overrides:
            config = dataclasses.replace(config, **overrides)
        self.config = config
        self.retry = retry if retry is not None else SUBMIT_RETRY_POLICY

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, payload=None, timeout_s: Optional[float] = None):
        data = None
        content_type = None
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        req = urllib.request.Request(
            self.config.url(path),
            data=data,
            headers=self.config.build_headers(content_type),
            method=method,
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout_s or self.config.timeout_s) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8"))
            except Exception:  # noqa: BLE001 — non-JSON error bodies
                detail = None
            message = detail.get("error") if isinstance(detail, dict) else None
            try:
                retry_after = float(exc.headers.get("Retry-After", ""))
            except (TypeError, ValueError, AttributeError):
                retry_after = None
            raise ServeError(
                message or f"{method} {path} failed: HTTP {exc.code}",
                status=exc.code,
                payload=detail,
                retry_after_s=retry_after,
            ) from None
        except urllib.error.URLError as exc:
            raise ServeError(
                f"cannot reach campaign service at {self.config.base_url}: {exc.reason}"
            ) from None

    def _request_text(self, path: str, timeout_s: Optional[float] = None) -> str:
        """GET a non-JSON endpoint (Prometheus exposition, dashboard HTML)."""
        req = urllib.request.Request(
            self.config.url(path), headers=self.config.build_headers(), method="GET"
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout_s or self.config.timeout_s) as resp:
                return resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise ServeError(
                f"GET {path} failed: HTTP {exc.code}", status=exc.code
            ) from None
        except urllib.error.URLError as exc:
            raise ServeError(
                f"cannot reach campaign service at {self.config.base_url}: {exc.reason}"
            ) from None

    # ------------------------------------------------------------------
    # Plain endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def ready(self) -> dict:
        """The readiness document; a 503 still returns its checks payload."""
        try:
            return self._request("GET", "/readyz")
        except ServeError as exc:
            if exc.status == 503 and isinstance(exc.payload, dict):
                return exc.payload
            raise

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def metrics_prometheus(self) -> str:
        """The service registry in Prometheus text exposition format."""
        return self._request_text("/metrics?format=prometheus")

    def dashboard(self) -> str:
        """The live-dashboard HTML page (one self-contained document)."""
        return self._request_text("/dashboard")

    def campaigns(self) -> list[dict]:
        return self._request("GET", "/campaigns").get("campaigns", [])

    def campaign(self, campaign_id: str) -> dict:
        return self._request("GET", f"/campaigns/{campaign_id}")

    def submit(self, spec: "Union[SweepSpec, BoundaryQuery, str, Mapping]") -> dict:
        """Submit a campaign; returns the submission document.

        Accepts a :class:`SweepSpec`, a :class:`BoundaryQuery`, a preset
        name, or a raw snapshot/submission dict.  The response carries
        ``id``, ``created`` (False on a content-hash dedupe hit) and the
        campaign document.

        Connection failures and 503s (a draining/restarting service) are
        retried with the client's :class:`~repro.faults.RetryPolicy`,
        honouring any ``Retry-After`` the server sent; safe because
        submission is idempotent by content hash.
        """
        if isinstance(spec, SweepSpec):
            payload: dict = {"kind": "sweep", "spec": spec.to_dict()}
        elif isinstance(spec, BoundaryQuery):
            payload = {"kind": "boundary", "spec": spec.to_dict()}
        elif isinstance(spec, str):
            payload = {"preset": spec}
        elif isinstance(spec, Mapping):
            payload = dict(spec)
        else:
            raise TypeError(
                "submit() takes a SweepSpec, BoundaryQuery, preset name or snapshot dict"
            )
        attempt = 0
        while True:
            attempt += 1
            try:
                return self._request("POST", "/campaigns", payload)
            except ServeError as exc:
                if not exc.retryable or attempt >= self.retry.max_attempts:
                    raise
                delay = self.retry.delay_s(attempt, key="submit")
                if exc.retry_after_s is not None:
                    delay = max(delay, exc.retry_after_s)
                time.sleep(delay)

    def records(
        self,
        campaign_id: str,
        status: Optional[str] = None,
        limit: Optional[int] = None,
        offset: Optional[int] = None,
        **filters,
    ) -> list[dict]:
        """The campaign's records, optionally filtered by status/axis columns."""
        params = dict(filters)
        if status is not None:
            params["status"] = status
        if limit is not None:
            params["limit"] = limit
        if offset is not None:
            params["offset"] = offset
        query = urllib.parse.urlencode(params)
        path = f"/campaigns/{campaign_id}/records" + (f"?{query}" if query else "")
        return self._request("GET", path).get("records", [])

    def aggregate(self, campaign_id: str, axis: Optional[str] = None) -> dict:
        path = f"/campaigns/{campaign_id}/aggregate"
        if axis:
            path += "?" + urllib.parse.urlencode({"axis": axis})
        return self._request("GET", path)

    # ------------------------------------------------------------------
    # Long-running interaction
    # ------------------------------------------------------------------
    def events(self, campaign_id: str, timeout_s: Optional[float] = None) -> Iterator[dict]:
        """Stream the campaign's SSE events as ``{"event", "data"}`` dicts.

        Blocks on the live stream and ends after the server's final
        ``end`` event (which is also yielded, carrying the terminal
        campaign document) — or its ``shutdown`` event when the service is
        draining for exit.
        """
        req = urllib.request.Request(
            self.config.url(f"/campaigns/{campaign_id}/events"),
            headers={**self.config.build_headers(), "Accept": "text/event-stream"},
        )
        budget = timeout_s if timeout_s is not None else max(self.config.timeout_s, 600.0)
        try:
            with urllib.request.urlopen(req, timeout=budget) as resp:
                name: Optional[str] = None
                data_lines: list[str] = []
                for raw in resp:
                    line = raw.decode("utf-8").rstrip("\r\n")
                    if line.startswith("event:"):
                        name = line[len("event:"):].strip()
                    elif line.startswith("data:"):
                        data_lines.append(line[len("data:"):].strip())
                    elif not line:
                        if name is None and not data_lines:
                            continue
                        try:
                            data = json.loads("\n".join(data_lines)) if data_lines else None
                        except json.JSONDecodeError:
                            data = "\n".join(data_lines)
                        yield {"event": name or "message", "data": data}
                        if (name or "message") in ("end", "shutdown"):
                            return
                        name, data_lines = None, []
        except urllib.error.HTTPError as exc:
            raise ServeError(
                f"events stream failed: HTTP {exc.code}", status=exc.code
            ) from None
        except urllib.error.URLError as exc:
            raise ServeError(
                f"cannot reach campaign service at {self.config.base_url}: {exc.reason}"
            ) from None

    def wait(
        self,
        campaign_id: str,
        timeout_s: float = 600.0,
        poll_s: Optional[float] = None,
        progress: Optional[Callable[[dict], None]] = None,
    ) -> dict:
        """Poll until the campaign is done/failed; returns its final document."""
        interval = poll_s if poll_s is not None else self.config.poll_interval_s
        deadline = time.monotonic() + timeout_s
        while True:
            doc = self.campaign(campaign_id)
            if progress is not None:
                progress(doc)
            if doc.get("state") in _TERMINAL:
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"campaign {campaign_id} still {doc.get('state')!r} "
                    f"after {timeout_s:.0f} s"
                )
            time.sleep(interval)

    def submit_and_wait(
        self,
        spec,
        timeout_s: float = 600.0,
        progress: Optional[Callable[[dict], None]] = None,
    ) -> dict:
        """Submit then :meth:`wait`; returns the terminal campaign document."""
        submitted = self.submit(spec)
        return self.wait(submitted["id"], timeout_s=timeout_s, progress=progress)
