"""repro.serve — the long-running campaign service over the sweep engine.

Everything elsewhere in the repo is batch CLI; this package wraps the
campaign machinery in a stdlib-asyncio HTTP service so campaigns are
*submitted* rather than run:

* :mod:`repro.serve.scheduler` — :class:`Campaign` /
  :class:`CampaignScheduler`: content-hash identity (identical submissions
  dedupe to one campaign), a FIFO worker task serialising execution over
  the shared :class:`~repro.sweep.store.ResultStore`;
* :mod:`repro.serve.handlers`  — the transport-free route table
  (``/campaigns``, ``/records``, ``/aggregate``, ``/events``, ``/metrics``
  — JSON or Prometheus text — plus the ``/healthz`` / ``/readyz`` probes);
* :mod:`repro.serve.app`       — the asyncio HTTP/SSE front end
  (:class:`CampaignService` with request-latency histograms, a resource
  sampler and graceful SIGINT/SIGTERM drain; the test-friendly
  :class:`ServiceThread`; the ``python -m repro serve`` entry point
  :func:`run_service`);
* :mod:`repro.serve.dashboard` — the dependency-free single-page live
  dashboard behind ``GET /dashboard``;
* :mod:`repro.serve.config` / :mod:`repro.serve.client` — the frozen
  :class:`ServeConfig` and the stdlib :class:`ServeClient` behind
  ``python -m repro submit`` and :mod:`examples.submit_campaign`.

What makes the service cheap at scale is below it, not in it: records are
content-addressed, so identical submissions from any number of users are
pure cache hits against the store, and filtered/aggregate reads are served
through the SQLite index sidecar (:mod:`repro.sweep.sqlindex`) without
replaying the JSONL.

Quick start::

    # terminal 1
    python -m repro serve --store campaigns.jsonl --port 8765

    # terminal 2
    python -m repro submit --preset dist-smoke --watch
"""

from .app import CampaignService, ServiceThread, route_template, run_service
from .client import ServeClient, ServeError
from .config import DEFAULT_HOST, DEFAULT_PORT, ServeConfig
from .dashboard import render_dashboard
from .scheduler import Campaign, CampaignScheduler, parse_submission

__all__ = [
    "CampaignService",
    "ServiceThread",
    "run_service",
    "route_template",
    "render_dashboard",
    "ServeClient",
    "ServeError",
    "ServeConfig",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "Campaign",
    "CampaignScheduler",
    "parse_submission",
]
