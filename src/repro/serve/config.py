"""Connection/auth settings shared by the campaign-service client and CLI.

One frozen dataclass, constructed once and never mutated: URLs and headers
are *derived* from it (:meth:`ServeConfig.url`,
:meth:`ServeConfig.build_headers`) rather than assembled ad hoc at call
sites, so every request a client makes agrees on base URL, token and
timeouts by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

__all__ = ["DEFAULT_HOST", "DEFAULT_PORT", "ServeConfig"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765


@dataclass(frozen=True)
class ServeConfig:
    """Where the campaign service lives and how to talk to it.

    Attributes
    ----------
    base_url:
        Service root, e.g. ``"http://127.0.0.1:8765"`` (trailing slashes
        are stripped).
    api_token:
        When set, every request carries ``Authorization: Bearer <token>``
        (the server's ``--token`` option checks it).
    extra_headers:
        Additional headers merged into every request (they win over the
        generated ones, so a caller can override ``Accept`` etc.).
    timeout_s:
        Per-request socket timeout for plain JSON calls.  Event streams use
        their own, much longer budget.
    poll_interval_s:
        Default cadence for :meth:`ServeClient.wait` status polling.
    """

    base_url: str = f"http://{DEFAULT_HOST}:{DEFAULT_PORT}"
    api_token: Optional[str] = None
    extra_headers: Mapping[str, str] = field(default_factory=dict)
    timeout_s: float = 30.0
    poll_interval_s: float = 0.5

    def __post_init__(self) -> None:
        object.__setattr__(self, "base_url", str(self.base_url).rstrip("/"))
        object.__setattr__(self, "extra_headers", dict(self.extra_headers))
        if not self.base_url:
            raise ValueError("base_url must not be empty")
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")

    @classmethod
    def for_host(cls, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT, **kwargs) -> "ServeConfig":
        """Config for an ``http://host:port`` service."""
        return cls(base_url=f"http://{host}:{int(port)}", **kwargs)

    def url(self, path: str) -> str:
        """Absolute URL of an endpoint path."""
        if not path.startswith("/"):
            path = "/" + path
        return self.base_url + path

    def build_headers(self, content_type: Optional[str] = None) -> dict:
        """Request headers: accept/auth/content-type plus the extras."""
        headers = {"Accept": "application/json"}
        if content_type:
            headers["Content-Type"] = content_type
        if self.api_token:
            headers["Authorization"] = f"Bearer {self.api_token}"
        headers.update(self.extra_headers)
        return headers
