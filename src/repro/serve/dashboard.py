"""``GET /dashboard`` — a dependency-free, single-file live dashboard.

One Python function returning one self-contained HTML page: no frameworks, no
CDN, no build step — the page is served from this string and works with the
stdlib service alone.  The client side polls ``GET /campaigns`` and
``GET /metrics`` every couple of seconds, follows the most interesting
campaign's SSE ``/events`` stream, and renders:

* a KPI row — records, campaigns, requests/s (with a sparkline), RSS,
  fault/retry activity, alerts firing;
* the campaign table (state shown as a status dot *plus* the state word,
  never color alone) with a live latency-p95-vs-budget column;
* the alert table (every configured SLO rule with its ok/pending/firing
  state, polled from ``GET /alerts``);
* per-route request latency (p95 straight from the service's
  ``http_request_duration_seconds`` histograms);
* a bounded live event feed.

The server embeds a bootstrap snapshot (campaign list + store counts) as a
``<script type="application/json">`` block, so the *initial* HTML already
references live campaign data — scrapers and smoke tests can assert on the
response body without executing JavaScript, and a token-protected service
still shows the snapshot even though the poll loop's unauthenticated fetches
will 401.

Visual language follows the repo-wide chart conventions: chart chrome in
CSS custom properties with a selected dark mode (``prefers-color-scheme``
plus a ``data-theme`` override), text in ink tokens, status colors reserved
for campaign states, a single blue series hue for the one sparkline.
"""

from __future__ import annotations

import json

__all__ = ["render_dashboard"]


def render_dashboard(scheduler, store, alerts=None) -> str:
    """The dashboard page with a server-side bootstrap snapshot embedded."""
    campaigns = [c.to_dict() for c in scheduler.list()]
    bootstrap = {
        "records": len(store),
        "store": str(store.path),
        "campaigns": campaigns,
        "draining": scheduler.draining,
        "alerts": alerts.status() if alerts is not None else [],
        "latency_budget_s": getattr(scheduler, "latency_budget_s", None),
    }
    payload = json.dumps(bootstrap, default=str).replace("</", "<\\/")
    return _PAGE.replace("__BOOTSTRAP__", payload)


_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro campaign service</title>
<style>
  .viz-root {
    color-scheme: light;
    --page:           #f9f9f7;
    --surface-1:      #fcfcfb;
    --text-primary:   #0b0b0b;
    --text-secondary: #52514e;
    --text-muted:     #898781;
    --grid:           #e1e0d9;
    --border:         rgba(11,11,11,0.10);
    --series-1:       #2a78d6;
    --status-good:    #0ca30c;
    --status-warning: #fab219;
    --status-serious: #ec835a;
    --status-critical:#d03b3b;
  }
  @media (prefers-color-scheme: dark) {
    :root:where(:not([data-theme="light"])) .viz-root {
      color-scheme: dark;
      --page:           #0d0d0d;
      --surface-1:      #1a1a19;
      --text-primary:   #ffffff;
      --text-secondary: #c3c2b7;
      --text-muted:     #898781;
      --grid:           #2c2c2a;
      --border:         rgba(255,255,255,0.10);
      --series-1:       #3987e5;
    }
  }
  :root[data-theme="dark"] .viz-root {
    color-scheme: dark;
    --page:           #0d0d0d;
    --surface-1:      #1a1a19;
    --text-primary:   #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted:     #898781;
    --grid:           #2c2c2a;
    --border:         rgba(255,255,255,0.10);
    --series-1:       #3987e5;
  }
  .viz-root {
    margin: 0; padding: 24px;
    background: var(--page); color: var(--text-primary);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  h1 { font-size: 18px; margin: 0 0 4px; }
  .sub { color: var(--text-secondary); margin: 0 0 20px; font-size: 13px; }
  .tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 20px; }
  .tile {
    background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 8px; padding: 12px 16px; min-width: 150px; flex: 1 1 150px;
  }
  .tile .label { color: var(--text-muted); font-size: 12px; }
  .tile .value { font-size: 28px; margin-top: 2px; }
  .tile svg { display: block; margin-top: 6px; }
  .tile .spark-line { fill: none; stroke: var(--series-1); stroke-width: 2; }
  section {
    background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 8px; padding: 14px 16px; margin-bottom: 16px;
  }
  section h2 { font-size: 13px; margin: 0 0 10px; color: var(--text-secondary); font-weight: 600; }
  table { border-collapse: collapse; width: 100%; font-variant-numeric: tabular-nums; }
  th { text-align: left; color: var(--text-muted); font-weight: 500; font-size: 12px; }
  th, td { padding: 5px 12px 5px 0; border-bottom: 1px solid var(--grid); }
  tr:last-child td { border-bottom: none; }
  td.num, th.num { text-align: right; }
  .dot { display: inline-block; width: 8px; height: 8px; border-radius: 50%; margin-right: 6px; }
  .state-queued  .dot { background: var(--status-warning); }
  .state-running .dot { background: var(--series-1); }
  .state-done    .dot { background: var(--status-good); }
  .state-failed  .dot { background: var(--status-critical); }
  code { color: var(--text-secondary); font-size: 12px; }
  #feed {
    max-height: 260px; overflow-y: auto; font-family: ui-monospace, monospace;
    font-size: 12px; color: var(--text-secondary); white-space: pre-wrap;
  }
  #feed .t { color: var(--text-muted); }
  .empty { color: var(--text-muted); }
  .alert-firing { color: var(--status-critical); font-weight: 600; }
  .alert-pending { color: var(--status-warning); }
  .over-budget { color: var(--status-critical); font-weight: 600; }
</style>
</head>
<body class="viz-root">
<h1>repro campaign service</h1>
<p class="sub" id="store-line"></p>

<div class="tiles">
  <div class="tile"><div class="label">records in store</div><div class="value" id="kpi-records">&ndash;</div></div>
  <div class="tile"><div class="label">campaigns</div><div class="value" id="kpi-campaigns">&ndash;</div></div>
  <div class="tile">
    <div class="label">requests / s</div><div class="value" id="kpi-rps">&ndash;</div>
    <svg id="spark" width="140" height="28" viewBox="0 0 140 28" role="img"
         aria-label="request rate, recent trend"><polyline class="spark-line" points=""/></svg>
  </div>
  <div class="tile"><div class="label">resident memory</div><div class="value" id="kpi-rss">&ndash;</div></div>
  <div class="tile"><div class="label">faults / retries</div><div class="value" id="kpi-faults">&ndash;</div></div>
  <div class="tile"><div class="label">alerts firing</div><div class="value" id="kpi-alerts">&ndash;</div></div>
</div>

<section>
  <h2>Campaigns</h2>
  <table>
    <thead><tr><th>id</th><th>kind</th><th>state</th><th class="num">scenarios</th>
      <th class="num">progress</th><th class="num">executed</th><th class="num">cache hits</th>
      <th class="num">p95 / budget</th></tr></thead>
    <tbody id="campaign-rows"></tbody>
  </table>
  <p class="empty" id="campaign-empty">No campaigns submitted yet.</p>
</section>

<section>
  <h2>Alerts</h2>
  <table>
    <thead><tr><th>alert</th><th>state</th><th>condition</th>
      <th class="num">value</th><th class="num">firing for</th></tr></thead>
    <tbody id="alert-rows"></tbody>
  </table>
  <p class="empty" id="alert-empty">No alert rules configured.</p>
</section>

<section>
  <h2>Request latency by route (p95, seconds)</h2>
  <table>
    <thead><tr><th>route</th><th class="num">requests</th><th class="num">p50</th>
      <th class="num">p95</th><th class="num">max</th></tr></thead>
    <tbody id="route-rows"></tbody>
  </table>
  <p class="empty" id="route-empty">No requests measured yet.</p>
</section>

<section>
  <h2>Live events <span id="feed-src" style="font-weight:400"></span></h2>
  <div id="feed"></div>
</section>

<script id="bootstrap" type="application/json">__BOOTSTRAP__</script>
<script>
"use strict";
const bootstrap = JSON.parse(document.getElementById("bootstrap").textContent);
const $ = (id) => document.getElementById(id);

function fmtBytes(n) {
  if (n == null) return "\\u2013";
  const units = ["B", "KiB", "MiB", "GiB"];
  let u = 0;
  while (n >= 1024 && u < units.length - 1) { n /= 1024; u++; }
  return n.toFixed(u ? 1 : 0) + " " + units[u];
}
function fmtSec(v) { return v == null ? "\\u2013" : Number(v).toFixed(4); }

function renderCampaigns(campaigns) {
  $("kpi-campaigns").textContent = campaigns.length;
  $("campaign-empty").style.display = campaigns.length ? "none" : "";
  $("campaign-rows").innerHTML = campaigns.map((c) => {
    const p = c.progress || {};
    const prog = p.total ? `${p.done}/${p.total}` : "\\u2013";
    const r = c.result || {};
    const lat = c.latency || {};
    const budget = lat.budget_s != null ? `${Number(lat.budget_s).toFixed(2)}s` : "\\u2013";
    const latCell = lat.p95_s != null
      ? `<span class="${lat.over_budget ? "over-budget" : ""}">${fmtSec(lat.p95_s)} / ${budget}</span>`
      : "\\u2013";
    return `<tr class="state-${c.state}">
      <td><code>${c.id.slice(0, 16)}</code></td><td>${c.kind}</td>
      <td><span class="dot"></span>${c.state}</td>
      <td class="num">${c.scenarios ?? "\\u2013"}</td><td class="num">${prog}</td>
      <td class="num">${r.executed ?? "\\u2013"}</td><td class="num">${r.cache_hits ?? "\\u2013"}</td>
      <td class="num">${latCell}</td>
    </tr>`;
  }).join("");
}

function renderAlerts(alerts) {
  const firing = alerts.filter((a) => a.state === "firing");
  $("kpi-alerts").textContent = String(firing.length);
  $("kpi-alerts").className = firing.length ? "value alert-firing" : "value";
  $("alert-empty").style.display = alerts.length ? "none" : "";
  $("alert-rows").innerHTML = alerts.map((a) => {
    const cls = a.state === "firing" ? "alert-firing" : (a.state === "pending" ? "alert-pending" : "");
    const since = a.since_s != null ? `${Number(a.since_s).toFixed(0)}s` : "\\u2013";
    return `<tr><td>${a.name}</td><td class="${cls}">${a.state}</td>
      <td><code>${a.condition}</code></td>
      <td class="num">${a.value != null ? fmtSec(a.value) : "\\u2013"}</td>
      <td class="num">${since}</td></tr>`;
  }).join("");
}

// --- request-rate sparkline: deltas of http_requests_total between polls ---
const rateHistory = [];
let lastTotal = null, lastPollT = null;
function updateRate(metrics) {
  let total = 0;
  for (const [key, value] of Object.entries(metrics.counters || {}))
    if (key.startsWith("http_requests_total")) total += value;
  const now = Date.now() / 1000;
  if (lastTotal != null && now > lastPollT)
    rateHistory.push((total - lastTotal) / (now - lastPollT));
  lastTotal = total; lastPollT = now;
  while (rateHistory.length > 40) rateHistory.shift();
  if (rateHistory.length) {
    $("kpi-rps").textContent = rateHistory[rateHistory.length - 1].toFixed(1);
    const max = Math.max(...rateHistory, 1e-9);
    const pts = rateHistory.map((v, i) =>
      `${(i / Math.max(rateHistory.length - 1, 1)) * 138 + 1},${26 - (v / max) * 22}`);
    const line = $("spark").querySelector("polyline");
    line.setAttribute("points", pts.join(" "));
    $("spark").setAttribute("aria-label",
      `request rate, recent trend, latest ${rateHistory[rateHistory.length - 1].toFixed(1)}/s`);
  }
}

function renderRoutes(metrics) {
  const routes = new Map();
  for (const [key, h] of Object.entries(metrics.histograms || {})) {
    const m = key.match(/^http_request_duration_seconds\\{.*route="([^"]*)"/);
    if (!m) continue;
    const agg = routes.get(m[1]) || { count: 0, p50: null, p95: null, max: null };
    agg.count += h.count;
    const q = h.quantiles || {};
    for (const [field, v] of [["p50", q.p50], ["p95", q.p95], ["max", h.max]])
      if (v != null) agg[field] = agg[field] == null ? v : Math.max(agg[field], v);
    routes.set(m[1], agg);
  }
  const rows = [...routes.entries()].sort((a, b) => b[1].count - a[1].count);
  $("route-empty").style.display = rows.length ? "none" : "";
  $("route-rows").innerHTML = rows.map(([route, a]) =>
    `<tr><td><code>${route}</code></td><td class="num">${a.count}</td>
     <td class="num">${fmtSec(a.p50)}</td><td class="num">${fmtSec(a.p95)}</td>
     <td class="num">${fmtSec(a.max)}</td></tr>`).join("");
}

function renderMetrics(metrics) {
  updateRate(metrics);
  renderRoutes(metrics);
  const rss = (metrics.gauges || {})["process_resident_memory_bytes"];
  $("kpi-rss").textContent = fmtBytes(rss);
  // Recovery activity: injected faults, in-campaign retries, worker
  // respawns and scheduler restarts, summed across label variants.
  let recovery = 0;
  for (const [key, value] of Object.entries(metrics.counters || {}))
    if (/^(faults\\.injected|retry\\.|dist\\.respawn|scheduler\\.)/.test(key))
      recovery += value;
  $("kpi-faults").textContent = String(recovery);
}

// --- live event feed over SSE, following the most interesting campaign ---
let feedSource = null, feedCampaign = null;
function followEvents(campaigns) {
  const pick = campaigns.findLast((c) => c.state === "running")
    || campaigns.findLast((c) => c.state === "done") || campaigns[campaigns.length - 1];
  if (!pick || pick.id === feedCampaign) return;
  if (feedSource) feedSource.close();
  feedCampaign = pick.id;
  $("feed-src").textContent = `\\u2014 campaign ${pick.id.slice(0, 16)}`;
  feedSource = new EventSource(`/campaigns/${pick.id}/events`);
  feedSource.onmessage = feedSource.onerror = null;
  ["scenario", "sweep", "campaign", "probe", "counter", "gauge", "end", "shutdown"]
    .forEach((name) => feedSource.addEventListener(name, (ev) => {
      const feed = $("feed");
      const line = document.createElement("div");
      line.innerHTML = `<span class="t">${new Date().toLocaleTimeString()}</span> ${name} ${ev.data}`;
      feed.appendChild(line);
      while (feed.childNodes.length > 200) feed.removeChild(feed.firstChild);
      feed.scrollTop = feed.scrollHeight;
      if (name === "end" || name === "shutdown") feedSource.close();
    }));
}

async function poll() {
  try {
    const [campaigns, metrics, alerts] = await Promise.all([
      fetch("/campaigns").then((r) => r.json()),
      fetch("/metrics").then((r) => r.json()),
      fetch("/alerts").then((r) => r.json()),
    ]);
    renderCampaigns(campaigns.campaigns || []);
    renderMetrics(metrics);
    renderAlerts(alerts.alerts || []);
    followEvents(campaigns.campaigns || []);
    const health = await fetch("/healthz").then((r) => r.json());
    $("kpi-records").textContent = health.records ?? "\\u2013";
  } catch (err) { /* service away or token-protected: keep the bootstrap view */ }
}

$("store-line").textContent =
  `store ${bootstrap.store} \\u2014 ${bootstrap.records} records` +
  (bootstrap.draining ? " \\u2014 draining" : "");
$("kpi-records").textContent = bootstrap.records;
renderCampaigns(bootstrap.campaigns || []);
renderAlerts(bootstrap.alerts || []);
poll();
setInterval(poll, 2000);
</script>
</body>
</html>
"""
