"""The asyncio HTTP front end of the campaign service.

A deliberately small HTTP/1.1 server on :func:`asyncio.start_server` — no
framework, no new dependencies — serving the :class:`~repro.serve.handlers.Api`
route table.  Each connection carries one request (``Connection: close``),
which keeps the parser ~40 lines and is plenty for a campaign-submission
workload; the one long-lived response shape, the ``/events`` Server-Sent
Events stream, is pumped from a :class:`~repro.obs.report.TracePoller` over
the campaign's trace directory until the campaign reaches a terminal state
and the tail is drained.

Three entry points:

* :class:`CampaignService` — the async object (``await start()``, then
  ``await serve_forever()``); ``port=0`` binds an ephemeral port.
* :class:`ServiceThread` — the service on a private event loop in a daemon
  thread, for tests/examples that drive it with a blocking client.
* :func:`run_service` — the blocking CLI entry point behind
  ``python -m repro serve``.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
import urllib.parse
from pathlib import Path
from typing import Optional

from .. import faults
from ..obs.alerts import AlertManager, AlertRule, load_alert_rules
from ..obs.metrics import MetricsRegistry
from ..obs.report import TracePoller
from ..obs.resource import ResourceSampler
from ..obs.telemetry import Telemetry
from ..obs.timeseries import DEFAULT_LATENCY_BOUNDARIES
from ..obs.tracer import NULL_TRACER, Tracer, trace_file_name
from ..sweep.store import ResultStore
from .handlers import Api, EventStreamResponse, JsonResponse, Request, TextResponse
from .scheduler import TERMINAL_STATES, CampaignScheduler

__all__ = ["CampaignService", "ServiceThread", "run_service", "route_template"]

_MAX_BODY_BYTES = 8 * 1024 * 1024
_MAX_HEADER_LINES = 100

_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: The fixed route table, for request-metric labels.
_KNOWN_ROUTES = ("/healthz", "/readyz", "/metrics", "/alerts", "/dashboard", "/campaigns")
_CAMPAIGN_SUBROUTES = ("events", "records", "aggregate")


def route_template(path: str) -> str:
    """Collapse a request path to its route template for metric labels.

    ``/campaigns/abc123/records`` becomes ``/campaigns/{id}/records`` and
    anything off the route table becomes ``/other``, so request histograms
    keep a small, fixed label cardinality no matter what clients throw at
    the socket.
    """
    parts = [p for p in path.split("/") if p]
    if parts[:1] == ["campaigns"] and len(parts) >= 2:
        if len(parts) == 2:
            return "/campaigns/{id}"
        if len(parts) == 3 and parts[2] in _CAMPAIGN_SUBROUTES:
            return f"/campaigns/{{id}}/{parts[2]}"
        return "/other"
    normalised = "/" + "/".join(parts)
    return normalised if normalised in _KNOWN_ROUTES else "/other"


class CampaignService:
    """The long-running campaign service: store + scheduler + HTTP server."""

    def __init__(
        self,
        store_path: "str | Path",
        data_dir: "str | Path | None" = None,
        host: str = "127.0.0.1",
        port: int = 8765,
        workers: int = 2,
        timeout_s: Optional[float] = None,
        series_samples: int = 0,
        fast: bool = True,
        token: Optional[str] = None,
        sse_poll_s: float = 0.25,
        trace_dir: "str | Path | None" = None,
        resource_interval_s: float = 5.0,
        watchdog_s: Optional[float] = None,
        alert_rules=None,
        latency_budget_s: Optional[float] = None,
        alert_interval_s: float = 2.0,
    ):
        self.store_path = Path(store_path)
        self.data_dir = Path(data_dir) if data_dir is not None else Path(str(store_path) + ".serve")
        self.host = host
        self.port = int(port)
        self.workers = workers
        self.timeout_s = timeout_s
        self.series_samples = series_samples
        self.fast = fast
        self.token = token
        self.sse_poll_s = float(sse_poll_s)
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self.resource_interval_s = float(resource_interval_s)
        self.watchdog_s = watchdog_s
        #: Alert rules: a list of AlertRule, or a path / inline-JSON string
        #: resolved through load_alert_rules() at start().
        self.alert_rules = alert_rules
        self.latency_budget_s = latency_budget_s
        self.alert_interval_s = float(alert_interval_s)
        self.store: Optional[ResultStore] = None
        self.scheduler: Optional[CampaignScheduler] = None
        self.api: Optional[Api] = None
        self.metrics: Optional[MetricsRegistry] = None
        self.telemetry: Optional[Telemetry] = None
        self.alerts: Optional[AlertManager] = None
        self._sampler: Optional[ResourceSampler] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._alert_task: Optional[asyncio.Task] = None
        self._shutting_down: Optional[asyncio.Event] = None
        self._in_flight = 0

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    async def start(self) -> "CampaignService":
        """Open the store, start the worker task, bind the listening socket.

        The store is opened with a metrics-only telemetry bundle so every
        sidecar-served query counts into ``store.idx_hit``/``store.idx_miss``
        — the counters ``GET /metrics`` exposes and the serve-smoke CI job
        asserts on.  With ``trace_dir`` set the service also writes its own
        trace file (request spans, resource gauges); either way a resource
        sampler feeds the registry and flushes it to
        ``<data_dir>/metrics.json`` so the service's own snapshot survives a
        kill.
        """
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.metrics = MetricsRegistry()
        if self.trace_dir is not None:
            self.trace_dir.mkdir(parents=True, exist_ok=True)
            tracer = Tracer(self.trace_dir / trace_file_name("serve"), worker="serve")
        else:
            tracer = NULL_TRACER
        self.telemetry = Telemetry(tracer, self.metrics, trace_dir=self.trace_dir)
        self.store = ResultStore(self.store_path, telemetry=Telemetry(NULL_TRACER, self.metrics))
        self.alerts = AlertManager(
            self._resolve_alert_rules(), metrics=self.metrics, tracer=tracer
        )
        self.scheduler = CampaignScheduler(
            self.store,
            self.data_dir,
            workers=self.workers,
            timeout_s=self.timeout_s,
            series_samples=self.series_samples,
            fast=self.fast,
            metrics=self.metrics,
            watchdog_s=self.watchdog_s,
            alerts=self.alerts,
            latency_budget_s=self.latency_budget_s,
            ledger=self.data_dir / "ledger.jsonl",
        )
        await self.scheduler.start()
        self.api = Api(
            self.scheduler, self.store, metrics=self.metrics, token=self.token,
            alerts=self.alerts,
        )
        self._shutting_down = asyncio.Event()
        if self.alerts.rules:
            self._alert_task = asyncio.create_task(self._alert_loop(), name="alert-eval")
        self._sampler = ResourceSampler(
            self.telemetry,
            interval_s=self.resource_interval_s,
            flush_path=self.data_dir / "metrics.json",
        ).start()
        self._server = await asyncio.start_server(self._handle_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    def _resolve_alert_rules(self) -> list:
        """The service's AlertRule set: configured rules + the implicit budget.

        ``--latency-budget S`` is sugar for one declarative rule — rolling
        p95 of executed-scenario durations over the configured budget fires
        the ``scenario-latency-budget`` alert — so the dashboard column and
        the alerting pipeline can never disagree about what the budget means.
        """
        rules: list = []
        if self.alert_rules:
            if isinstance(self.alert_rules, (str, Path)):
                rules.extend(load_alert_rules(self.alert_rules))
            else:
                rules.extend(self.alert_rules)
        if self.latency_budget_s is not None:
            rules.append(
                AlertRule(
                    name="scenario-latency-budget",
                    metric="scenario_duration_seconds",
                    stat="p95",
                    op=">",
                    threshold=float(self.latency_budget_s),
                    for_s=0.0,
                    description="rolling p95 scenario duration over the latency budget",
                )
            )
        return rules

    async def _alert_loop(self) -> None:
        """Evaluate every alert rule on a fixed cadence until shutdown."""
        while True:
            await asyncio.sleep(self.alert_interval_s)
            try:
                self.alerts.evaluate()
            except Exception:  # noqa: BLE001 — alerting must not kill the service
                self.metrics.counter("alerts.eval_errors")

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._shutting_down is not None:
            self._shutting_down.set()  # any open SSE stream closes promptly
        if self._alert_task is not None:
            self._alert_task.cancel()
            try:
                await self._alert_task
            except asyncio.CancelledError:
                pass
            self._alert_task = None
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except asyncio.CancelledError:
                pass
            self._server = None
        if self.scheduler is not None:
            await self.scheduler.stop()
        if self._sampler is not None:
            self._sampler.stop()
            self._sampler = None
        if self.telemetry is not None:
            self.telemetry.close()

    async def shutdown(self) -> None:
        """Graceful stop: refuse new work, finish in-flight, close streams.

        The ordered teardown behind SIGINT/SIGTERM: open SSE streams are
        told to close (a terminal ``event: shutdown`` frame), the scheduler
        drains — queued campaigns fail fast, the running one completes and
        keeps its results — and only then does the listener come down.
        Safe to call more than once.
        """
        if self._shutting_down is not None:
            self._shutting_down.set()
        if self.scheduler is not None:
            await self.scheduler.drain()
        await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        started = time.perf_counter()
        method, route, status = "?", "/other", 0
        self._in_flight += 1
        self.metrics.gauge("http_requests_in_flight", self._in_flight)
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            if isinstance(request, JsonResponse):  # parse-level error
                response = request
            else:
                method = request.method
                route = route_template(request.path)
                try:
                    injector = faults.active()
                    if injector is not None:
                        # Chaos hook: injected errors surface as the 500 path
                        # below, delays stall this request (they block the
                        # loop — chaos plans should keep them short).
                        injector.fire(
                            "serve.handle",
                            telemetry=self.telemetry,
                            path=request.path,
                            method=method,
                        )
                    response = await self.api.dispatch(request)
                except Exception as exc:  # noqa: BLE001 — a handler bug must not kill the server
                    response = JsonResponse(500, {"error": f"{type(exc).__name__}: {exc}"})
            if isinstance(response, EventStreamResponse):
                status = 200
                await self._write_event_stream(writer, response.campaign)
            else:
                status = response.status
                if isinstance(response, TextResponse):
                    self._write_text(writer, response)
                else:
                    self._write_json(writer, response)
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-request/stream
        finally:
            self._in_flight -= 1
            self.metrics.gauge("http_requests_in_flight", self._in_flight)
            self._record_request(method, route, status, time.perf_counter() - started)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001
                pass

    def _record_request(self, method: str, route: str, status: int, dur_s: float) -> None:
        """The request-timing middleware: one histogram point per request.

        Routes are *templated* (``/campaigns/{id}/records``) so label
        cardinality stays bounded; SSE streams count under their own route,
        where their stream-lifetime "latency" cannot skew the API routes.
        """
        labels = {"route": route, "method": method, "status": str(status)}
        self.metrics.counter("http_requests_total", labels=labels)
        self.metrics.histogram(
            "http_request_duration_seconds",
            labels=labels,
            boundaries=DEFAULT_LATENCY_BOUNDARIES,
        ).observe(dur_s)
        if self.telemetry is not None:
            self.telemetry.tracer.span_event(
                "http.request", dur_s, route=route, method=method, status=status
            )

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        """Parse one request; None on EOF, a JsonResponse on protocol errors."""
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, target, _version = request_line.decode("latin-1").split(None, 2)
        except ValueError:
            return JsonResponse(400, {"error": "malformed request line"})
        headers: dict = {}
        for _ in range(_MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", 0) or 0)
        except ValueError:
            return JsonResponse(400, {"error": "bad Content-Length"})
        if length > _MAX_BODY_BYTES:
            return JsonResponse(413, {"error": f"body larger than {_MAX_BODY_BYTES} bytes"})
        body = await reader.readexactly(length) if length > 0 else b""
        split = urllib.parse.urlsplit(target)
        query = {k: v[-1] for k, v in urllib.parse.parse_qs(split.query).items()}
        return Request(
            method=method.upper(), path=split.path, query=query, headers=headers, body=body
        )

    @staticmethod
    def _write_text(writer: asyncio.StreamWriter, response: TextResponse) -> None:
        body = response.body.encode("utf-8")
        head = (
            f"HTTP/1.1 {response.status} {_STATUS_TEXT.get(response.status, 'OK')}\r\n"
            f"Content-Type: {response.content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)

    @staticmethod
    def _write_json(writer: asyncio.StreamWriter, response: JsonResponse) -> None:
        body = (json.dumps(response.payload, indent=2, default=str) + "\n").encode("utf-8")
        status_text = _STATUS_TEXT.get(response.status, "OK")
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (response.headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {response.status} {status_text}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)

    async def _write_event_stream(self, writer: asyncio.StreamWriter, campaign) -> None:
        """Pump the campaign's trace dir as Server-Sent Events.

        Replays everything already traced (so a subscriber to a finished —
        or dedupe-hit — campaign still sees its history), then follows the
        live tail.  After the campaign reaches a terminal state the
        remaining tail is drained and a final ``event: end`` closes the
        stream.
        """
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        poller = TracePoller(campaign.trace_dir)
        while True:
            events = await asyncio.to_thread(poller.poll)
            for event in events:
                name = str(event.get("name", event.get("kind", "event")))
                data = json.dumps(event, separators=(",", ":"), default=str)
                writer.write(f"event: {name}\ndata: {data}\n\n".encode("utf-8"))
            if events:
                await writer.drain()
                continue  # drain the tail before considering termination
            if campaign.state in TERMINAL_STATES:
                payload = json.dumps(campaign.to_dict(), separators=(",", ":"), default=str)
                writer.write(f"event: end\ndata: {payload}\n\n".encode("utf-8"))
                await writer.drain()
                return
            if self._shutting_down is not None and self._shutting_down.is_set():
                # Graceful shutdown: tell the subscriber explicitly instead
                # of hanging up mid-stream (the campaign may still be QUEUED
                # and about to be failed by the drain).
                payload = json.dumps(campaign.to_dict(), separators=(",", ":"), default=str)
                writer.write(f"event: shutdown\ndata: {payload}\n\n".encode("utf-8"))
                await writer.drain()
                return
            await asyncio.sleep(self.sse_poll_s)


class ServiceThread:
    """A :class:`CampaignService` on a private event loop in a daemon thread.

    For tests, examples and notebooks that drive the service with blocking
    HTTP clients from the same process::

        with ServiceThread(store_path=tmp / "store.jsonl", port=0) as service:
            client = ServeClient(ServeConfig(base_url=service.base_url))
            ...
    """

    def __init__(self, **service_kwargs):
        self._kwargs = service_kwargs
        self.service: Optional[CampaignService] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._main_task: Optional[asyncio.Task] = None

    def start(self, timeout_s: float = 15.0) -> "ServiceThread":
        started = threading.Event()
        failure: list[BaseException] = []

        def _run():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop

            async def _main():
                try:
                    self.service = CampaignService(**self._kwargs)
                    await self.service.start()
                except BaseException as exc:  # noqa: BLE001 — surfaced to start()
                    failure.append(exc)
                    started.set()
                    return
                started.set()
                try:
                    await self.service.serve_forever()
                except asyncio.CancelledError:
                    pass
                finally:
                    try:
                        await self.service.stop()
                    except asyncio.CancelledError:
                        pass

            self._main_task = loop.create_task(_main())
            try:
                loop.run_until_complete(self._main_task)
            except asyncio.CancelledError:
                pass
            finally:
                loop.close()

        self._thread = threading.Thread(target=_run, daemon=True, name="repro-serve")
        self._thread.start()
        if not started.wait(timeout_s):
            raise RuntimeError("campaign service failed to start in time")
        if failure:
            raise RuntimeError(f"campaign service failed to start: {failure[0]}") from failure[0]
        return self

    @property
    def base_url(self) -> str:
        assert self.service is not None, "call start() first"
        return self.service.base_url

    def stop(self, timeout_s: float = 15.0) -> None:
        loop, task = self._loop, self._main_task
        if loop is not None and task is not None and not loop.is_closed():
            loop.call_soon_threadsafe(task.cancel)
        if self._thread is not None:
            self._thread.join(timeout_s)

    def shutdown(self, timeout_s: float = 15.0) -> None:
        """Graceful variant of :meth:`stop`: drain, then tear down."""
        loop = self._loop
        if loop is not None and self.service is not None and not loop.is_closed():
            future = asyncio.run_coroutine_threadsafe(self.service.shutdown(), loop)
            try:
                future.result(timeout_s)
            except Exception:  # noqa: BLE001 — fall through to the hard stop
                pass
        self.stop(timeout_s)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def run_service(
    store_path: "str | Path",
    data_dir: "str | Path | None" = None,
    host: str = "127.0.0.1",
    port: int = 8765,
    workers: int = 2,
    timeout_s: Optional[float] = None,
    series_samples: int = 0,
    fast: bool = True,
    token: Optional[str] = None,
    quiet: bool = False,
    trace_dir: "str | Path | None" = None,
    resource_interval_s: float = 5.0,
    watchdog_s: Optional[float] = None,
    alert_rules=None,
    latency_budget_s: Optional[float] = None,
) -> int:
    """Blocking entry point behind ``python -m repro serve``.

    SIGINT/SIGTERM trigger a *graceful* shutdown: the listener stops
    accepting, open SSE streams get their terminal frame, the running
    campaign (if any) completes, queued ones fail fast — then the process
    exits.  A second signal during the drain aborts immediately.
    """
    service = CampaignService(
        store_path,
        data_dir=data_dir,
        host=host,
        port=port,
        workers=workers,
        timeout_s=timeout_s,
        series_samples=series_samples,
        fast=fast,
        token=token,
        trace_dir=trace_dir,
        resource_interval_s=resource_interval_s,
        watchdog_s=watchdog_s,
        alert_rules=alert_rules,
        latency_budget_s=latency_budget_s,
    )

    async def _main():
        await service.start()
        if not quiet:
            # flush: the banner is how wrappers (CI, tests) detect readiness,
            # and block-buffered pipes would hold it back indefinitely.
            print(f"campaign service listening on {service.base_url}", flush=True)
            print(f"  store    : {service.store_path} ({len(service.store)} records)")
            print(f"  data dir : {service.data_dir}")
            print(f"  submit   : POST {service.base_url}/campaigns", flush=True)
            if service.alerts is not None and service.alerts.rules:
                print(
                    f"  alerts   : {len(service.alerts.rules)} rule(s) "
                    f"on GET {service.base_url}/alerts",
                    flush=True,
                )
        stop_requested = asyncio.Event()
        loop = asyncio.get_running_loop()
        handled_signals = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop_requested.set)
                handled_signals.append(sig)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread / platforms without signal support
        serve_task = asyncio.create_task(service.serve_forever())
        stop_task = asyncio.create_task(stop_requested.wait())
        try:
            done, _ = await asyncio.wait(
                {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
            )
            if stop_task in done and not quiet:
                print("campaign service draining (signal again to abort) ...", flush=True)
            # Let a second signal fall through as KeyboardInterrupt mid-drain.
            for sig in handled_signals:
                loop.remove_signal_handler(sig)
            serve_task.cancel()
            try:
                await serve_task
            except asyncio.CancelledError:
                pass
            await service.shutdown()
        finally:
            stop_task.cancel()
            await service.stop()

    try:
        asyncio.run(_main())
        if not quiet:
            print("campaign service stopped")
    except KeyboardInterrupt:
        if not quiet:
            print("campaign service stopped (aborted)")
    return 0
