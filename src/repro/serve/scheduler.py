"""Campaign registry and execution behind the service: submit, dedupe, run.

A :class:`Campaign` is one submitted unit of work — a sweep
(:class:`~repro.sweep.spec.SweepSpec` snapshot) or a boundary search
(:class:`~repro.sweep.adaptive.BoundaryQuery` snapshot) — identified by its
**content hash** (``campaign_hash`` / ``query_hash``).  Submitting the same
spec twice therefore *cannot* create duplicate work: the second submission
returns the existing campaign, and even a submission after a service restart
re-executes only what the shared content-addressed
:class:`~repro.sweep.store.ResultStore` does not already hold (pure cache
hits, ``executed == 0``).

The :class:`CampaignScheduler` runs campaigns **strictly one at a time** in
a single asyncio worker task: all campaigns share the service's one store
object, which has one writer by design; parallelism lives *inside* a
campaign (the :class:`~repro.sweep.runner.SweepRunner` worker pool), not
across campaigns.  Each execution happens in a thread
(:func:`asyncio.to_thread`) so the event loop keeps serving requests, and
writes its trace under ``<data_dir>/traces/<campaign_id>/`` — the directory
the SSE endpoint tails.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Union

from .. import faults
from ..obs.history import RunLedger, summarize_run
from ..obs.telemetry import DISABLED, Telemetry
from ..obs.timeseries import DEFAULT_LATENCY_BOUNDARIES, RollingWindow
from ..sweep.adaptive import BoundaryQuery, BoundarySearch
from ..sweep.presets import build_preset
from ..sweep.runner import SweepRunner
from ..sweep.spec import SweepSpec
from ..sweep.store import ResultStore

__all__ = [
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "TERMINAL_STATES",
    "Campaign",
    "CampaignScheduler",
    "parse_submission",
]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
TERMINAL_STATES = (DONE, FAILED)


@dataclass
class Campaign:
    """One submitted campaign and everything the API serves about it."""

    id: str
    kind: str  # "sweep" | "boundary"
    snapshot: dict  # the canonical spec/query dict (what from_dict rebuilds)
    trace_dir: Path
    state: str = QUEUED
    submissions: int = 1
    submitted_t: float = 0.0
    started_t: Optional[float] = None
    finished_t: Optional[float] = None
    progress: dict = field(default_factory=dict)
    result: Optional[dict] = None
    error: Optional[str] = None
    #: The scenario ids the campaign covers: known up front for sweeps,
    #: accumulated probe-by-probe for boundary searches.
    scenario_ids: tuple = ()
    #: Live latency view: rolling p95 of executed-scenario durations and how
    #: it stands against the service's latency budget (dashboard column).
    latency: dict = field(default_factory=dict)

    def to_dict(self, include_snapshot: bool = False) -> dict:
        doc = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "submissions": self.submissions,
            "submitted_t": self.submitted_t,
            "started_t": self.started_t,
            "finished_t": self.finished_t,
            "progress": dict(self.progress),
            "scenarios": len(self.scenario_ids),
            "latency": dict(self.latency),
            "result": self.result,
            "error": self.error,
        }
        if include_snapshot:
            doc["snapshot"] = self.snapshot
        return doc


def parse_submission(payload: Mapping) -> tuple[str, dict, str, tuple]:
    """Normalise a ``POST /campaigns`` body into campaign identity.

    Accepted shapes::

        {"preset": "dist-smoke"}                      # named sweep preset
        {"kind": "sweep",    "spec": {...}}           # explicit kind
        {"kind": "boundary", "spec": {...}}
        {...}                                         # bare snapshot; kind
                                                      # inferred (boundary iff
                                                      # path/lo/hi present)

    Returns ``(kind, canonical_snapshot, campaign_id, scenario_ids)``; raises
    :class:`ValueError` on anything unparseable (the handler maps that to a
    400).  The id is the *content hash* of the canonical snapshot, so any two
    spellings of the same campaign collapse to one.
    """
    if not isinstance(payload, Mapping):
        raise ValueError("submission must be a JSON object")
    spec: "Union[SweepSpec, BoundaryQuery]"
    if "preset" in payload:
        spec = build_preset(str(payload["preset"]))
        kind = "sweep"
    else:
        body = payload.get("spec", payload)
        if not isinstance(body, Mapping):
            raise ValueError("'spec' must be a JSON object")
        kind = payload.get("kind")
        if kind is None:
            kind = "boundary" if {"path", "lo", "hi"} <= set(body) else "sweep"
        kind = str(kind)
        try:
            if kind == "sweep":
                spec = SweepSpec.from_dict(body)
            elif kind == "boundary":
                spec = BoundaryQuery.from_dict(body)
            else:
                raise ValueError(f"unknown campaign kind {kind!r} (sweep or boundary)")
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed {kind} snapshot: {exc}") from None
    if isinstance(spec, SweepSpec):
        return "sweep", spec.to_dict(), spec.campaign_hash(), tuple(spec.scenario_ids())
    return "boundary", spec.to_dict(), spec.query_hash(), ()


class CampaignScheduler:
    """FIFO, dedup-by-content campaign execution over one shared store."""

    def __init__(
        self,
        store: ResultStore,
        data_dir: "str | Path",
        workers: int = 2,
        timeout_s: Optional[float] = None,
        series_samples: int = 0,
        fast: bool = True,
        metrics=None,
        watchdog_s: Optional[float] = None,
        alerts=None,
        latency_budget_s: Optional[float] = None,
        ledger: "str | Path | None" = None,
    ):
        if watchdog_s is not None and watchdog_s <= 0:
            raise ValueError("watchdog_s must be positive")
        if latency_budget_s is not None and latency_budget_s <= 0:
            raise ValueError("latency_budget_s must be positive")
        self.store = store
        self.data_dir = Path(data_dir)
        self.workers = max(1, int(workers))
        self.timeout_s = timeout_s
        self.series_samples = int(series_samples)
        self.fast = bool(fast)
        #: Service-level registry (the one ``/metrics`` serves); defaults to
        #: the disabled bundle's no-op registry.
        self.metrics = metrics if metrics is not None else DISABLED.metrics
        #: Per-campaign wall-clock budget: a campaign running longer is
        #: failed honestly (``scheduler.watchdog_timeout``) instead of
        #: wedging the FIFO queue forever.
        self.watchdog_s = watchdog_s
        #: The service's :class:`~repro.obs.alerts.AlertManager` (when
        #: alerting is on): executed-scenario durations feed its rolling
        #: ``scenario_duration_seconds`` window.
        self.alerts = alerts
        #: Per-campaign latency budget: the dashboard flags a campaign whose
        #: rolling p95 exceeds it (the implicit budget AlertRule fires too).
        self.latency_budget_s = latency_budget_s
        #: Run-ledger path: every finished campaign appends a RunSummary.
        self.ledger = Path(ledger) if ledger is not None else None
        #: How many times the supervisor restarted a dead worker task.
        self.restarts = 0
        self.campaigns: dict[str, Campaign] = {}
        self.draining = False
        self._queue: "asyncio.Queue[Campaign]" = asyncio.Queue()
        self._task: Optional[asyncio.Task] = None
        self._stopping = False

    @property
    def alive(self) -> bool:
        """True while the worker task exists and has not died/finished."""
        return self._task is not None and not self._task.done()

    # ------------------------------------------------------------------
    # Submission / lookup (event-loop side)
    # ------------------------------------------------------------------
    def submit(self, payload: Mapping) -> tuple[Campaign, bool]:
        """Register (or dedupe) a submission; returns ``(campaign, created)``.

        An identical spec maps to an identical campaign id, so resubmission
        returns the existing campaign — whatever its state — without
        queueing anything.  Only a *failed* campaign is re-queued on
        resubmission (that is the retry path).
        """
        if self.draining:
            raise RuntimeError("service is draining; not accepting campaigns")
        kind, snapshot, campaign_id, scenario_ids = parse_submission(payload)
        existing = self.campaigns.get(campaign_id)
        if existing is not None and existing.state != FAILED:
            existing.submissions += 1
            return existing, False
        campaign = Campaign(
            id=campaign_id,
            kind=kind,
            snapshot=snapshot,
            trace_dir=self.data_dir / "traces" / campaign_id,
            submitted_t=time.time(),
            submissions=existing.submissions + 1 if existing is not None else 1,
            scenario_ids=scenario_ids,
        )
        self.campaigns[campaign_id] = campaign
        self._queue.put_nowait(campaign)
        return campaign, True

    def get(self, campaign_id: str) -> Optional[Campaign]:
        return self.campaigns.get(campaign_id)

    def list(self) -> list[Campaign]:
        return list(self.campaigns.values())

    # ------------------------------------------------------------------
    # The worker task
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._task is None:
            self._stopping = False
            self._spawn_worker()

    def _spawn_worker(self) -> None:
        self._task = asyncio.create_task(self._worker(), name="campaign-worker")
        self._task.add_done_callback(self._supervise)

    def _supervise(self, task: "asyncio.Task") -> None:
        """Restart the worker task if it dies unexpectedly.

        The worker loop catches campaign failures itself, so the task only
        ends via cancellation (shutdown) or a scheduler-level bug / injected
        fault — precisely the deaths that used to stop all campaign
        execution silently.  A queued campaign survives: the restarted
        worker picks it up from the same queue.
        """
        if self._stopping or task.cancelled():
            return
        exc = task.exception()
        if exc is None:
            return
        self.restarts += 1
        self.metrics.counter("scheduler.restart")
        self._spawn_worker()

    async def drain(self, poll_s: float = 0.05) -> None:
        """Graceful shutdown: refuse new work, fail the queue, finish in-flight.

        Queued campaigns never started, so they fail honestly instead of
        silently vanishing; the one RUNNING campaign (if any) is allowed to
        complete — its records are already streaming into the shared store
        and abandoning it would waste the work.  Safe to call twice.
        """
        self.draining = True
        while True:
            try:
                campaign = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if campaign.state == QUEUED:
                campaign.state = FAILED
                campaign.error = "service shut down before campaign started"
                campaign.finished_t = time.time()
            self._queue.task_done()
        while any(c.state == RUNNING for c in self.campaigns.values()):
            await asyncio.sleep(poll_s)

    async def stop(self) -> None:
        self._stopping = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def _worker(self) -> None:
        while True:
            injector = faults.active()
            if injector is not None:
                # Fired while idle (before the dequeue), so an injected death
                # leaves the campaign queued for the supervisor's restarted
                # worker instead of stranding it RUNNING.
                injector.fire("serve.scheduler", metrics=self.metrics)
            campaign = await self._queue.get()
            campaign.state = RUNNING
            campaign.started_t = time.time()
            try:
                work = asyncio.to_thread(self._execute, campaign)
                if self.watchdog_s is not None:
                    campaign.result = await asyncio.wait_for(work, timeout=self.watchdog_s)
                else:
                    campaign.result = await work
                campaign.state = DONE
            except asyncio.CancelledError:
                campaign.state = FAILED
                campaign.error = "service shut down mid-run"
                campaign.finished_t = time.time()
                raise
            except TimeoutError:
                # The execution thread cannot be killed and keeps running to
                # waste-free completion (records land in the shared store);
                # the *campaign* fails honestly and the queue moves on.
                campaign.state = FAILED
                campaign.error = (
                    f"campaign exceeded the {self.watchdog_s:g} s watchdog budget"
                )
                self.metrics.counter("scheduler.watchdog_timeout")
            except Exception as exc:  # noqa: BLE001 — a bad campaign must not kill the worker
                campaign.state = FAILED
                campaign.error = f"{type(exc).__name__}: {exc}"
            finally:
                if campaign.finished_t is None:
                    campaign.finished_t = time.time()
                self._queue.task_done()

    def _execute(self, campaign: Campaign) -> dict:
        """Run one campaign to completion (called in a worker thread).

        Per-campaign telemetry writes ``trace-serve-<pid>.jsonl`` under the
        campaign's trace dir — the live feed of the ``/events`` stream — and
        a ``metrics.json`` roll-up on completion; campaign counters
        (``campaign.cache_hits`` / ``campaign.executed``) also land in the
        store's own metrics sidecar, which is what keeps ``store stats``'
        cache-hit ratio current.
        """
        campaign.trace_dir.mkdir(parents=True, exist_ok=True)
        telemetry = Telemetry.create(campaign.trace_dir, worker="serve", campaign=campaign.id)
        seen = set(campaign.scenario_ids)
        window = RollingWindow(window_s=300.0)
        budget = self.latency_budget_s

        def progress(done: int, total: int, record: dict, cached: bool) -> None:
            campaign.progress = {"done": done, "total": total}
            scenario_id = record.get("scenario_id")
            if scenario_id and scenario_id not in seen:
                seen.add(scenario_id)
                campaign.scenario_ids = campaign.scenario_ids + (scenario_id,)
            if cached:
                return
            # Live latency: the per-campaign rolling p95 the dashboard's
            # budget column shows, the service-registry histogram /metrics
            # exposes, and the alert window the SLO rules evaluate.
            dur = float(record.get("elapsed_s") or 0.0)
            window.observe(dur)
            p95 = window.quantile(0.95)
            campaign.latency = {
                "count": len(window),
                "p95_s": None if p95 is None else round(p95, 6),
                "budget_s": budget,
                "over_budget": bool(budget is not None and p95 is not None and p95 > budget),
            }
            self.metrics.histogram(
                "scenario_duration_seconds", boundaries=DEFAULT_LATENCY_BOUNDARIES
            ).observe(dur)
            if self.alerts is not None:
                self.alerts.observe("scenario_duration_seconds", dur)

        try:
            runner = SweepRunner(
                self.store,
                workers=self.workers,
                timeout_s=self.timeout_s,
                series_samples=self.series_samples,
                progress=progress,
                fast=self.fast,
                telemetry=telemetry,
            )
            if campaign.kind == "sweep":
                report = runner.run(SweepSpec.from_dict(campaign.snapshot))
                result = {
                    "kind": "sweep",
                    "succeeded": report.succeeded,
                    **report.summary(),
                }
            else:
                query = BoundaryQuery.from_dict(campaign.snapshot)
                boundary = BoundarySearch(query, runner, telemetry=telemetry).run()
                result = {
                    "kind": "boundary",
                    "succeeded": boundary.converged,
                    **boundary.summary(),
                    "cells_detail": [cell.to_dict() for cell in boundary.cells],
                }
            # write_metrics also mirrors the roll-up into the trace dir as
            # metrics-serve-<pid>.json, which is what obs report merges.
            telemetry.write_metrics(self.store.path)
            retried = int(result.get("retried") or 0)
            if retried:
                # Mirror campaign-level retries into the service registry so
                # /metrics and the dashboard see them without reading traces.
                self.metrics.counter("retry.attempt", retried)
            self._append_ledger(campaign)
            return result
        finally:
            telemetry.close()

    def _append_ledger(self, campaign: Campaign) -> None:
        """Append the finished campaign's RunSummary to the service ledger.

        The ledger is advisory history: a summarisation failure (trace dir
        cleaned up mid-run, unwritable ledger) must never fail the campaign.
        """
        if self.ledger is None:
            return
        try:
            summary = summarize_run(
                campaign.trace_dir,
                kind=f"serve.{campaign.kind}",
                campaign=campaign.id,
                engine="fast" if self.fast else "exact",
            )
            RunLedger(self.ledger).append(summary)
        except Exception:  # noqa: BLE001 — history must not break execution
            self.metrics.counter("scheduler.ledger_errors")
