"""The campaign service's route table: requests in, responses out.

Kept deliberately transport-free: :class:`Api.dispatch` maps a parsed
:class:`Request` onto scheduler/store operations and returns either a
:class:`JsonResponse` or an :class:`EventStreamResponse` marker; the actual
socket writing (and the SSE pump) lives in :mod:`repro.serve.app`.  That
split keeps every routing/authorisation/validation decision unit-testable
without opening a port.

Endpoints::

    GET  /healthz                     liveness + store/campaign counts
    GET  /readyz                      readiness (scheduler alive, store open)
    GET  /metrics                     service metrics (incl. store.idx_* counters)
    GET  /metrics?format=prometheus   the same registry as Prometheus text 0.0.4
    GET  /alerts                      SLO alert rules + their live states
    GET  /dashboard                   self-contained live HTML dashboard
    GET  /campaigns                   all campaigns (newest last)
    POST /campaigns                   submit a SweepSpec/BoundaryQuery snapshot
    GET  /campaigns/{id}              status + result summary
    GET  /campaigns/{id}/events       live SSE trace stream
    GET  /campaigns/{id}/records      the campaign's records (filterable)
    GET  /campaigns/{id}/aggregate    overview + per-axis summaries + rows
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Optional, Union

from ..obs.promexport import PROMETHEUS_CONTENT_TYPE, render_prometheus
from ..sweep.aggregate import axis_summary, campaign_overview, records_table
from ..sweep.sqlindex import FILTER_COLUMNS
from ..sweep.store import ResultStore
from .dashboard import render_dashboard
from .scheduler import Campaign, CampaignScheduler

__all__ = [
    "Request",
    "JsonResponse",
    "TextResponse",
    "EventStreamResponse",
    "Api",
    "DRAIN_RETRY_AFTER_S",
]

#: The Retry-After horizon stamped on drain 503s: drains complete quickly
#: (one in-flight campaign at most), so clients should re-poll soon.
DRAIN_RETRY_AFTER_S = 1

#: Query parameters that are *not* record filters.
_PAGING_PARAMS = ("limit", "offset")

#: How each typed filter column coerces its query-string value.
_FILTER_COERCERS = {
    "seed": int,
    "schema_version": int,
    "capacitance_f": float,
    "duration_s": float,
}


def _coerce_bool(value: str) -> int:
    if value.lower() in ("1", "true", "yes"):
        return 1
    if value.lower() in ("0", "false", "no"):
        return 0
    raise ValueError(f"not a boolean: {value!r}")


_FILTER_COERCERS["survived"] = _coerce_bool


@dataclass
class Request:
    """One parsed HTTP request (query values: last occurrence wins)."""

    method: str
    path: str
    query: dict = field(default_factory=dict)
    headers: dict = field(default_factory=dict)
    body: bytes = b""

    def json(self):
        import json as _json

        try:
            return _json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, _json.JSONDecodeError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from None


@dataclass
class JsonResponse:
    status: int
    payload: object
    #: Extra response headers (e.g. ``Retry-After`` on drain 503s).
    headers: dict = field(default_factory=dict)


@dataclass
class TextResponse:
    """A non-JSON body: the Prometheus exposition, the dashboard HTML."""

    status: int
    body: str
    content_type: str = "text/plain; charset=utf-8"


@dataclass
class EventStreamResponse:
    """Marker telling the app layer to pump this campaign's SSE stream."""

    campaign: Campaign


class Api:
    """Routing + validation over a scheduler and its store."""

    def __init__(
        self,
        scheduler: CampaignScheduler,
        store: ResultStore,
        metrics=None,
        token: Optional[str] = None,
        alerts=None,
    ):
        self.scheduler = scheduler
        self.store = store
        self.metrics = metrics
        self.token = token
        self.alerts = alerts

    # ------------------------------------------------------------------
    def _authorised(self, request: Request) -> bool:
        if not self.token:
            return True
        return request.headers.get("authorization", "") == f"Bearer {self.token}"

    async def dispatch(
        self, request: Request
    ) -> Union[JsonResponse, TextResponse, EventStreamResponse]:
        """Route one request; every error becomes a JSON error payload."""
        parts = [p for p in request.path.split("/") if p]
        if request.path not in ("/healthz", "/readyz") and not self._authorised(request):
            return JsonResponse(401, {"error": "unauthorised (missing or wrong bearer token)"})
        if request.path == "/healthz" and request.method == "GET":
            return JsonResponse(
                200,
                {
                    "status": "ok",
                    "campaigns": len(self.scheduler.campaigns),
                    "records": len(self.store),
                    "scheduler_restarts": self.scheduler.restarts,
                },
            )
        if request.path == "/readyz" and request.method == "GET":
            return self._readyz()
        if request.path == "/metrics" and request.method == "GET":
            if request.query.get("format") == "prometheus":
                body = render_prometheus(self.metrics) if self.metrics is not None else ""
                return TextResponse(200, body, content_type=PROMETHEUS_CONTENT_TYPE)
            payload = self.metrics.to_dict() if self.metrics is not None else {}
            return JsonResponse(200, payload)
        if request.path == "/alerts" and request.method == "GET":
            return self._alerts()
        if request.path == "/dashboard" and request.method == "GET":
            return TextResponse(
                200,
                render_dashboard(self.scheduler, self.store, alerts=self.alerts),
                content_type="text/html; charset=utf-8",
            )
        if parts[:1] == ["campaigns"]:
            if len(parts) == 1:
                if request.method == "GET":
                    return self._list_campaigns()
                if request.method == "POST":
                    return self._submit(request)
                return JsonResponse(405, {"error": f"{request.method} not allowed here"})
            campaign = self.scheduler.get(parts[1])
            if campaign is None:
                return JsonResponse(404, {"error": f"unknown campaign {parts[1]!r}"})
            if request.method != "GET":
                return JsonResponse(405, {"error": f"{request.method} not allowed here"})
            if len(parts) == 2:
                return JsonResponse(200, campaign.to_dict(include_snapshot=True))
            if len(parts) == 3 and parts[2] == "events":
                return EventStreamResponse(campaign)
            if len(parts) == 3 and parts[2] == "records":
                return await self._records(campaign, request)
            if len(parts) == 3 and parts[2] == "aggregate":
                return await self._aggregate(campaign, request)
        return JsonResponse(404, {"error": f"no such endpoint: {request.method} {request.path}"})

    # ------------------------------------------------------------------
    def _readyz(self) -> JsonResponse:
        """Readiness: can this service *do work right now*?

        Distinct from ``/healthz`` liveness — a service whose campaign
        worker has died or that is draining for shutdown still answers
        health checks but must be taken out of rotation.  503 carries the
        failing check by name so an operator reads the reason straight off
        ``curl``.
        """
        checks = {
            "scheduler_alive": self.scheduler.alive,
            "not_draining": not self.scheduler.draining,
        }
        try:
            checks["store_open"] = len(self.store) >= 0
        except Exception:  # noqa: BLE001 — an unreadable store is the finding
            checks["store_open"] = False
        ready = all(checks.values())
        payload: dict = {"status": "ready" if ready else "unavailable", "checks": checks}
        headers = {}
        if self.scheduler.draining:
            # Load balancers should re-poll shortly: drain completes fast.
            payload["draining"] = True
            headers["Retry-After"] = str(DRAIN_RETRY_AFTER_S)
        return JsonResponse(200 if ready else 503, payload, headers=headers)

    def _alerts(self) -> JsonResponse:
        """Every configured alert rule with its live state (ok/pending/firing)."""
        status = self.alerts.status() if self.alerts is not None else []
        firing = [entry for entry in status if entry["state"] == "firing"]
        return JsonResponse(
            200, {"count": len(status), "firing": len(firing), "alerts": status}
        )

    def _list_campaigns(self) -> JsonResponse:
        campaigns = [c.to_dict() for c in self.scheduler.list()]
        return JsonResponse(200, {"count": len(campaigns), "campaigns": campaigns})

    def _submit(self, request: Request) -> JsonResponse:
        try:
            payload = request.json()
            campaign, created = self.scheduler.submit(payload)
        except ValueError as exc:
            return JsonResponse(400, {"error": str(exc)})
        except RuntimeError as exc:  # draining: shutting down, try elsewhere
            # Submission is content-hash idempotent, so a client may safely
            # retry against a replacement instance after Retry-After seconds.
            return JsonResponse(
                503,
                {"error": str(exc), "draining": True},
                headers={"Retry-After": str(DRAIN_RETRY_AFTER_S)},
            )
        doc = {
            "id": campaign.id,
            "created": created,
            "cached": not created,
            "campaign": campaign.to_dict(),
        }
        if not created:
            # This submission scheduled nothing: the content hash matched an
            # existing campaign, so zero new simulations were queued for it.
            doc["executed"] = 0
        return JsonResponse(201 if created else 200, doc)

    # ------------------------------------------------------------------
    def _parse_filters(self, request: Request) -> tuple[dict, Optional[int], int]:
        """Record filters + paging from query params; ValueError on junk."""
        filters: dict = {}
        for key, value in request.query.items():
            if key in _PAGING_PARAMS:
                continue
            if key not in FILTER_COLUMNS:
                raise ValueError(
                    f"unknown filter {key!r}; known: {', '.join(FILTER_COLUMNS)}"
                )
            coerce = _FILTER_COERCERS.get(key, str)
            try:
                filters[key] = coerce(value)
            except ValueError:
                raise ValueError(f"bad value for filter {key!r}: {value!r}") from None
        limit = request.query.get("limit")
        offset = request.query.get("offset", "0")
        try:
            return filters, (int(limit) if limit is not None else None), int(offset)
        except ValueError:
            raise ValueError("limit/offset must be integers") from None

    async def _records(self, campaign: Campaign, request: Request) -> JsonResponse:
        try:
            filters, limit, offset = self._parse_filters(request)
        except ValueError as exc:
            return JsonResponse(400, {"error": str(exc)})
        # Restrict to the campaign's scenario ids — an explicit (possibly
        # empty) list: a boundary campaign that has not probed yet correctly
        # serves zero records, not the whole store.
        scenario_ids = list(campaign.scenario_ids)
        records = await asyncio.to_thread(
            lambda: self.store.query(
                scenario_ids=scenario_ids, limit=limit, offset=offset, **filters
            )
        )
        slim = [{k: v for k, v in record.items() if k != "series"} for record in records]
        return JsonResponse(
            200, {"campaign": campaign.id, "count": len(slim), "records": slim}
        )

    async def _aggregate(self, campaign: Campaign, request: Request) -> JsonResponse:
        scenario_ids = list(campaign.scenario_ids)
        ok = await asyncio.to_thread(
            lambda: self.store.query(status="ok", scenario_ids=scenario_ids)
        )
        doc = {
            "campaign": campaign.id,
            "records": len(ok),
            "overview": campaign_overview(ok),
            "rows": records_table(ok),
        }
        axis = request.query.get("axis")
        axis_names = (
            [axis]
            if axis
            else [a["name"] for a in campaign.snapshot.get("axes", [])]
            + [a["name"] for a in campaign.snapshot.get("outer_axes", [])]
        )
        axes: dict = {}
        for name in axis_names:
            try:
                axes[name] = axis_summary(ok, name)
            except (ValueError, KeyError):
                axes[name] = []
        doc["axes"] = axes
        return JsonResponse(200, doc)
