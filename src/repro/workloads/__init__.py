"""Workloads: the smallpt-style path tracer and instruction-cost workload models."""

from .raytracer import PathTracer, RenderSettings, Scene, Sphere, cornell_box_scene
from .workload import (
    FIG7_FRAME,
    TABLE2_RENDER,
    RaytraceWorkload,
    SyntheticWorkload,
    Workload,
)

__all__ = [
    "PathTracer",
    "RenderSettings",
    "Scene",
    "Sphere",
    "cornell_box_scene",
    "FIG7_FRAME",
    "TABLE2_RENDER",
    "RaytraceWorkload",
    "SyntheticWorkload",
    "Workload",
]
