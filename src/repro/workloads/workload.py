"""Workload models: how executed instructions turn into useful work.

The governor budgetes *power*; the evaluation reports *work* (frames, renders,
instructions).  A :class:`Workload` converts the cumulative instruction count
produced by the simulator into completed work units and exposes the CPU
utilisation the Linux-style governors sample.

Two concrete workloads are provided:

* :class:`RaytraceWorkload` — the paper's smallpt scenario, parameterised by
  image size and samples per pixel (the Fig. 7 "frame" and the Table II
  "render" are both instances);
* :class:`SyntheticWorkload` — a fixed instructions-per-unit workload useful
  for tests and custom experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from .raytracer import RenderSettings, PathTracer

__all__ = ["Workload", "SyntheticWorkload", "RaytraceWorkload", "FIG7_FRAME", "TABLE2_RENDER"]


@dataclass(frozen=True)
class Workload:
    """A CPU-bound workload characterised by its per-unit instruction cost.

    Attributes
    ----------
    name:
        Work-unit name used in reports ("frame", "render", ...).
    instructions_per_unit:
        Instructions required to complete one work unit.
    utilization:
        CPU utilisation the workload presents to utilisation-driven
        governors (1.0 for a fully CPU-bound workload).
    """

    name: str
    instructions_per_unit: float
    utilization: float = 1.0

    def __post_init__(self) -> None:
        if self.instructions_per_unit <= 0:
            raise ValueError("instructions_per_unit must be positive")
        if not 0.0 <= self.utilization <= 1.0:
            raise ValueError("utilization must lie in [0, 1]")

    def units_completed(self, instructions: float) -> float:
        """Work units completed for a given executed-instruction count."""
        if instructions < 0:
            raise ValueError("instructions must be non-negative")
        return instructions / self.instructions_per_unit

    def units_per_minute(self, instruction_rate: float) -> float:
        """Steady-state work-unit throughput for an instruction rate (instr/s)."""
        return 60.0 * instruction_rate / self.instructions_per_unit


@dataclass(frozen=True)
class SyntheticWorkload(Workload):
    """A synthetic fixed-cost workload (defaults to 1 G instructions/unit)."""

    name: str = "synthetic"
    instructions_per_unit: float = 1e9


class RaytraceWorkload(Workload):
    """The smallpt ray-tracing workload at a given quality setting."""

    def __init__(
        self,
        settings: RenderSettings,
        name: str = "raytrace",
        instructions_per_sample: float = 5.0e3,
    ):
        instructions = PathTracer.estimated_instructions(settings, instructions_per_sample)
        object.__setattr__(self, "settings", settings)
        super().__init__(name=name, instructions_per_unit=instructions, utilization=1.0)


#: The Fig. 7 performance metric: 1024x768 at 5 samples per pixel (~19.6 G instr).
FIG7_FRAME = RaytraceWorkload(
    RenderSettings(width=1024, height=768, samples_per_pixel=5), name="fig7-frame"
)

#: The Table II "render": a higher-quality render costing ~290 G instructions.
TABLE2_RENDER = RaytraceWorkload(
    RenderSettings(width=1024, height=768, samples_per_pixel=74), name="table2-render"
)
