"""A small numpy path tracer in the spirit of smallpt (paper reference [12]).

The paper benchmarks the ODROID-XU4 with Kevin Beason's ``smallpt`` global
illumination renderer because it is CPU-intensive and embarrassingly
parallel.  The governor itself never looks inside the workload — it only sees
board power — but the reproduction ships a real renderer so that

* the examples can run an actual computation whose progress is throttled by
  the simulated power budget, and
* the instruction-cost scaling assumptions of the performance model
  (instructions per frame proportional to ``width * height * samples``) are
  grounded in a real implementation.

The scene is the classic Cornell-box arrangement of spheres.  Rendering is
vectorised over pixels with numpy; it is a faithful (if simplified) diffuse
path tracer with explicit-sphere intersection, cosine-weighted bounces and
Russian-roulette termination.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Sphere", "Scene", "RenderSettings", "PathTracer", "cornell_box_scene"]


@dataclass(frozen=True)
class Sphere:
    """A sphere with a diffuse (Lambertian) material and optional emission."""

    centre: tuple[float, float, float]
    radius: float
    colour: tuple[float, float, float]
    emission: tuple[float, float, float] = (0.0, 0.0, 0.0)

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError("radius must be positive")


@dataclass
class Scene:
    """A collection of spheres plus a background colour."""

    spheres: list[Sphere] = field(default_factory=list)
    background: tuple[float, float, float] = (0.0, 0.0, 0.0)

    def add(self, sphere: Sphere) -> None:
        self.spheres.append(sphere)


@dataclass(frozen=True)
class RenderSettings:
    """Image size and sampling quality."""

    width: int = 64
    height: int = 48
    samples_per_pixel: int = 4
    max_bounces: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("image dimensions must be positive")
        if self.samples_per_pixel < 1:
            raise ValueError("samples_per_pixel must be positive")
        if self.max_bounces < 1:
            raise ValueError("max_bounces must be positive")

    @property
    def pixel_count(self) -> int:
        return self.width * self.height

    @property
    def primary_ray_count(self) -> int:
        return self.pixel_count * self.samples_per_pixel


def cornell_box_scene() -> Scene:
    """The classic smallpt Cornell-box scene (walls as huge spheres)."""
    big = 1e4
    scene = Scene()
    scene.add(Sphere((big + 1, 40.8, 81.6), big, (0.75, 0.25, 0.25)))      # left wall (red)
    scene.add(Sphere((-big + 99, 40.8, 81.6), big, (0.25, 0.25, 0.75)))    # right wall (blue)
    scene.add(Sphere((50, 40.8, big), big, (0.75, 0.75, 0.75)))            # back wall
    scene.add(Sphere((50, big, 81.6), big, (0.75, 0.75, 0.75)))            # floor
    scene.add(Sphere((50, -big + 81.6, 81.6), big, (0.75, 0.75, 0.75)))    # ceiling
    scene.add(Sphere((27, 16.5, 47), 16.5, (0.8, 0.8, 0.8)))               # left ball
    scene.add(Sphere((73, 16.5, 78), 16.5, (0.7, 0.9, 0.7)))               # right ball
    scene.add(Sphere((50, 681.6 - 0.27, 81.6), 600, (0.0, 0.0, 0.0), (12.0, 12.0, 12.0)))  # light
    return scene


class PathTracer:
    """Vectorised diffuse path tracer.

    Parameters
    ----------
    scene:
        The scene to render; defaults to the Cornell box.
    """

    def __init__(self, scene: Scene | None = None):
        self.scene = scene if scene is not None else cornell_box_scene()
        if not self.scene.spheres:
            raise ValueError("the scene must contain at least one sphere")
        self._centres = np.array([s.centre for s in self.scene.spheres])
        self._radii = np.array([s.radius for s in self.scene.spheres])
        self._colours = np.array([s.colour for s in self.scene.spheres])
        self._emissions = np.array([s.emission for s in self.scene.spheres])

    # ------------------------------------------------------------------
    # Ray / scene intersection
    # ------------------------------------------------------------------
    def _intersect(self, origins: np.ndarray, directions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Nearest-hit sphere index (-1 for miss) and hit distance per ray."""
        n_rays = origins.shape[0]
        best_t = np.full(n_rays, np.inf)
        best_idx = np.full(n_rays, -1, dtype=int)
        eps = 1e-4
        for idx in range(len(self._radii)):
            oc = origins - self._centres[idx]
            b = np.einsum("ij,ij->i", oc, directions)
            c = np.einsum("ij,ij->i", oc, oc) - self._radii[idx] ** 2
            disc = b * b - c
            hit = disc > 0.0
            if not np.any(hit):
                continue
            sqrt_disc = np.sqrt(np.where(hit, disc, 0.0))
            t1 = -b - sqrt_disc
            t2 = -b + sqrt_disc
            t = np.where(t1 > eps, t1, np.where(t2 > eps, t2, np.inf))
            closer = hit & (t < best_t)
            best_t = np.where(closer, t, best_t)
            best_idx = np.where(closer, idx, best_idx)
        return best_idx, best_t

    @staticmethod
    def _cosine_sample(normals: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Cosine-weighted hemisphere sample around each normal."""
        n = normals.shape[0]
        u1 = rng.random(n)
        u2 = rng.random(n)
        r = np.sqrt(u1)
        theta = 2.0 * np.pi * u2
        x = r * np.cos(theta)
        y = r * np.sin(theta)
        z = np.sqrt(np.clip(1.0 - u1, 0.0, 1.0))
        # Build an orthonormal basis around each normal.
        w = normals
        helper = np.where(np.abs(w[:, :1]) > 0.1, np.array([[0.0, 1.0, 0.0]]), np.array([[1.0, 0.0, 0.0]]))
        u = np.cross(helper, w)
        u /= np.linalg.norm(u, axis=1, keepdims=True) + 1e-12
        v = np.cross(w, u)
        return x[:, None] * u + y[:, None] * v + z[:, None] * w

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self, settings: RenderSettings = RenderSettings()) -> np.ndarray:
        """Render the scene; returns an (height, width, 3) float image in [0, 1]."""
        rng = np.random.default_rng(settings.seed)
        width, height = settings.width, settings.height

        # Camera matching smallpt's: positioned at (50, 52, 295.6) looking down -z.
        cam_origin = np.array([50.0, 52.0, 295.6])
        cam_dir = np.array([0.0, -0.042612, -1.0])
        cam_dir /= np.linalg.norm(cam_dir)
        cx = np.array([width * 0.5135 / height, 0.0, 0.0])
        cy = np.cross(cx, cam_dir)
        cy = cy / np.linalg.norm(cy) * 0.5135

        xs, ys = np.meshgrid(np.arange(width), np.arange(height))
        accumulated = np.zeros((height * width, 3))

        for _ in range(settings.samples_per_pixel):
            jitter_x = (xs + rng.random(xs.shape)) / width - 0.5
            jitter_y = (ys + rng.random(ys.shape)) / height - 0.5
            directions = (
                cam_dir[None, None, :]
                + cx[None, None, :] * jitter_x[..., None]
                - cy[None, None, :] * jitter_y[..., None]
            ).reshape(-1, 3)
            directions /= np.linalg.norm(directions, axis=1, keepdims=True)
            origins = np.broadcast_to(cam_origin, directions.shape).copy()
            accumulated += self._trace(origins, directions, settings, rng)

        image = accumulated / settings.samples_per_pixel
        image = np.clip(image, 0.0, 1.0) ** (1.0 / 2.2)  # gamma correction
        return image.reshape(height, width, 3)

    def _trace(
        self,
        origins: np.ndarray,
        directions: np.ndarray,
        settings: RenderSettings,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Trace a batch of rays; returns the radiance per ray."""
        n_rays = origins.shape[0]
        radiance = np.zeros((n_rays, 3))
        throughput = np.ones((n_rays, 3))
        active = np.ones(n_rays, dtype=bool)

        for bounce in range(settings.max_bounces):
            if not np.any(active):
                break
            idx_active = np.nonzero(active)[0]
            hit_idx, hit_t = self._intersect(origins[idx_active], directions[idx_active])

            missed = hit_idx < 0
            miss_rows = idx_active[missed]
            radiance[miss_rows] += throughput[miss_rows] * np.array(self.scene.background)
            active[miss_rows] = False

            hit_rows = idx_active[~missed]
            if len(hit_rows) == 0:
                continue
            spheres = hit_idx[~missed]
            t = hit_t[~missed][:, None]
            points = origins[hit_rows] + directions[hit_rows] * t
            normals = points - self._centres[spheres]
            normals /= np.linalg.norm(normals, axis=1, keepdims=True) + 1e-12
            # Flip normals to face the incoming ray.
            facing = np.einsum("ij,ij->i", normals, directions[hit_rows]) < 0.0
            normals = np.where(facing[:, None], normals, -normals)

            radiance[hit_rows] += throughput[hit_rows] * self._emissions[spheres]
            throughput[hit_rows] *= self._colours[spheres]

            # Russian roulette after a couple of bounces.
            if bounce >= 2:
                survive_p = np.clip(np.max(throughput[hit_rows], axis=1), 0.05, 0.95)
                survived = rng.random(len(hit_rows)) < survive_p
                throughput[hit_rows[survived]] /= survive_p[survived][:, None]
                active[hit_rows[~survived]] = False
                hit_rows = hit_rows[survived]
                normals = normals[survived]
                points = points[survived]
                if len(hit_rows) == 0:
                    continue

            new_dirs = self._cosine_sample(normals, rng)
            origins[hit_rows] = points + normals * 1e-3
            directions[hit_rows] = new_dirs

        return radiance

    # ------------------------------------------------------------------
    # Cost model hooks
    # ------------------------------------------------------------------
    @staticmethod
    def estimated_instructions(settings: RenderSettings, instructions_per_sample: float = 5.0e3) -> float:
        """Rough instruction cost of a render on the target platform.

        The calibration is anchored on the paper's own numbers rather than a
        native smallpt build: Fig. 7 and Table II are simultaneously
        consistent when a 1024x768, 5-spp frame costs ~19.6 G (effective)
        instructions, i.e. ~5 k effective instructions per primary sample;
        the same per-sample constant scales other sizes / sample counts.
        """
        return settings.primary_ray_count * instructions_per_sample
