"""The MP-SoC platform: actuation state machine tying together the models.

The :class:`SoCPlatform` is what the governors drive and what the system
simulator steps.  It owns

* the platform specification (voltage window, OPP table),
* the board power model, the performance model and the latency model,
* the *actuation state*: the current operating point, whether a transition is
  in flight and when it completes, and whether the SoC is running at all
  (brown-out / reboot behaviour).

Semantics of a transition: when a new OPP is requested the platform computes
the transition latency; until that latency has elapsed the board continues to
draw (at least) the power of the more expensive of the two OPPs and performs
no useful work attributable to the new OPP (the paper's Table I measures
exactly this dead time and charge).  Requests arriving while a transition is
in flight replace the pending target and restart the remaining latency from
the larger of the two outstanding latencies — a conservative model of the
serialised sysfs writes the real governor performs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .cores import CoreConfig
from .latency import TransitionLatencyModel
from .opp import FrequencyLadder, OperatingPoint, OPPTable
from .performance_model import PerformanceModel
from .power_model import BigLittlePowerModel, PowerModel

__all__ = ["PlatformSpec", "PendingTransition", "SoCPlatform"]


@dataclass(frozen=True)
class PlatformSpec:
    """Static description of the platform's electrical and OPP envelope."""

    name: str
    opp_table: OPPTable
    minimum_voltage: float = 4.1
    maximum_voltage: float = 5.7
    reboot_voltage: float = 4.6
    reboot_latency_s: float = 8.0

    def __post_init__(self) -> None:
        if self.minimum_voltage <= 0:
            raise ValueError("minimum_voltage must be positive")
        if self.maximum_voltage <= self.minimum_voltage:
            raise ValueError("maximum_voltage must exceed minimum_voltage")
        if not self.minimum_voltage <= self.reboot_voltage <= self.maximum_voltage:
            raise ValueError("reboot_voltage must lie within the operating window")
        if self.reboot_latency_s < 0:
            raise ValueError("reboot_latency_s must be non-negative")


@dataclass
class PendingTransition:
    """An OPP change currently in flight."""

    target: OperatingPoint
    completes_at: float
    power_during_w: float


class SoCPlatform:
    """Actuation state machine for the MP-SoC.

    Parameters
    ----------
    spec:
        Electrical/OPP envelope of the platform.
    power_model:
        Maps operating points to board power.
    performance_model:
        Maps operating points to instruction throughput.
    latency_model:
        DVFS / hot-plug transition latencies.
    initial_opp:
        Operating point at power-on.  Defaults to the lowest OPP, which is
        how the paper's system boots before the governor takes over.
    """

    def __init__(
        self,
        spec: PlatformSpec,
        power_model: PowerModel,
        performance_model: PerformanceModel,
        latency_model: TransitionLatencyModel | None = None,
        initial_opp: OperatingPoint | None = None,
    ):
        self.spec = spec
        self.power_model = power_model
        self.performance_model = performance_model
        self.latency_model = latency_model if latency_model is not None else TransitionLatencyModel()
        self._initial_opp = initial_opp if initial_opp is not None else spec.opp_table.lowest
        if not spec.opp_table.allows_config(self._initial_opp.config):
            raise ValueError("initial OPP configuration is not in the platform's OPP table")
        self.reset()

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return the platform to its power-on state."""
        self.current_opp: OperatingPoint = self._initial_opp
        self.pending: Optional[PendingTransition] = None
        self.running: bool = True
        self._reboot_ready_at: float = 0.0
        self.transition_count: int = 0
        self.dvfs_transition_count: int = 0
        self.hotplug_transition_count: int = 0
        self.brownout_count: int = 0
        self.actuation_epoch: int = getattr(self, "actuation_epoch", 0) + 1

    @property
    def opp_table(self) -> OPPTable:
        return self.spec.opp_table

    @property
    def frequency_ladder(self) -> FrequencyLadder:
        return self.spec.opp_table.frequencies

    @property
    def is_transitioning(self) -> bool:
        return self.pending is not None

    # ------------------------------------------------------------------
    # Power / performance queries
    # ------------------------------------------------------------------
    # ``actuation_epoch`` is the cached-value protocol for :meth:`power` and
    # :meth:`instruction_rate`: both are piecewise constant between actuation
    # events (OPP requests, transition completions, brown-outs, reboots,
    # resets), and the counter increments exactly at those events.  A caller
    # that evaluates power every step — the system simulator's hot loop —
    # caches the value and recomputes only when the epoch moved, instead of
    # re-walking the power model per step.

    def power_changed_since(self, epoch: int) -> bool:
        """Whether board power / instruction rate may differ from when the
        caller last observed :attr:`actuation_epoch` equal to ``epoch``."""
        return self.actuation_epoch != epoch

    def power(self, now: float | None = None) -> float:
        """Board power draw right now (W)."""
        if not self.running:
            return 0.0
        if self.pending is not None:
            return self.pending.power_during_w
        return self.power_model.power(self.current_opp)

    def instruction_rate(self) -> float:
        """Useful instruction throughput right now (instr/s).

        During a transition the cores are busy with the transition itself, so
        useful throughput is attributed at the rate of the *cheaper* endpoint
        — a conservative accounting matching the paper's treatment of
        transition overhead as dead time.
        """
        if not self.running:
            return 0.0
        if self.pending is not None:
            current = self.performance_model.instruction_rate(self.current_opp)
            target = self.performance_model.instruction_rate(self.pending.target)
            return min(current, target)
        return self.performance_model.instruction_rate(self.current_opp)

    # ------------------------------------------------------------------
    # Actuation
    # ------------------------------------------------------------------
    def request_opp(self, target: OperatingPoint, now: float, cores_first: bool = True) -> float:
        """Request a transition to ``target`` starting at time ``now``.

        Returns the transition latency in seconds (0 if the request is a
        no-op).  Requests while off are ignored.
        """
        if not self.running:
            return 0.0
        if not self.opp_table.allows_config(target.config):
            raise ValueError(f"target configuration {target.config} exceeds the platform's clusters")
        target = OperatingPoint(target.config, self.frequency_ladder.snap(target.frequency_hz))

        origin = self.pending.target if self.pending is not None else self.current_opp
        if target == origin:
            return 0.0

        latency = self.latency_model.transition_latency(origin, target, cores_first=cores_first)
        if self.pending is not None:
            # Fold the outstanding transition into the new one: keep whichever
            # completion horizon is further away, and draw the worst-case power.
            completes_at = max(self.pending.completes_at, now + latency)
            power_during = max(
                self.pending.power_during_w,
                self.power_model.power(origin),
                self.power_model.power(target),
            )
        else:
            completes_at = now + latency
            power_during = max(
                self.power_model.power(self.current_opp),
                self.power_model.power(target),
            )

        if origin.config != target.config:
            self.hotplug_transition_count += 1
        if abs(origin.frequency_hz - target.frequency_hz) > 1.0:
            self.dvfs_transition_count += 1
        self.transition_count += 1
        self.actuation_epoch += 1

        if latency <= 0.0:
            self.current_opp = target
            self.pending = None
            return 0.0

        self.pending = PendingTransition(target=target, completes_at=completes_at, power_during_w=power_during)
        return latency

    def advance(self, now: float, supply_voltage: float) -> None:
        """Advance the actuation state machine to time ``now``.

        Completes any finished transition, detects brown-out (supply below
        the minimum operating voltage) and handles reboot once the supply
        recovers above the reboot threshold for platforms configured to
        restart.
        """
        if self.running:
            if supply_voltage < self.spec.minimum_voltage:
                # Brown-out: the SoC loses power, all cores stop.
                self.running = False
                self.pending = None
                self.brownout_count += 1
                self._reboot_ready_at = now + self.spec.reboot_latency_s
                self.actuation_epoch += 1
                return
            if self.pending is not None and now >= self.pending.completes_at:
                self.current_opp = self.pending.target
                self.pending = None
                self.actuation_epoch += 1
        else:
            if supply_voltage >= self.spec.reboot_voltage and now >= self._reboot_ready_at:
                # Cold boot back to the lowest OPP.
                self.running = True
                self.current_opp = self._initial_opp
                self.pending = None
                self.actuation_epoch += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self.running else "off"
        return f"SoCPlatform({self.spec.name}, {self.current_opp}, {state})"
