"""Calibrated Samsung Exynos5422 (ODROID-XU4) platform definition.

This module holds the numeric calibration that ties the generic SoC models to
the measurements reported in the paper:

* board power vs frequency per core configuration (Fig. 4),
* smallpt frame rate vs power (Fig. 7),
* DVFS / hot-plug transition latencies (Fig. 10),
* the 4.1 V - 5.7 V operating-voltage window (Section IV).

Calibration anchors and the reasoning behind the chosen constants are listed
in DESIGN.md §6; EXPERIMENTS.md records how closely the resulting curves match
the paper's figures.
"""

from __future__ import annotations

from .cores import CoreConfig, core_ladder
from .latency import TransitionLatencyModel
from .opp import GHZ, FrequencyLadder, OPPTable, OperatingPoint, PAPER_FREQUENCIES_HZ
from .performance_model import PerformanceModel, WorkloadScaling
from .platform import PlatformSpec, SoCPlatform
from .power_model import BigLittlePowerModel, ClusterPowerParameters, VoltageFrequencyMap

__all__ = [
    "EXYNOS5422_MIN_VOLTAGE",
    "EXYNOS5422_MAX_VOLTAGE",
    "EXYNOS5422_FREQUENCIES_HZ",
    "exynos5422_power_model",
    "exynos5422_performance_model",
    "exynos5422_latency_model",
    "exynos5422_opp_table",
    "exynos5422_spec",
    "build_exynos5422_platform",
]

#: Operating-voltage window of the ODROID-XU4 board (Section IV).
EXYNOS5422_MIN_VOLTAGE = 4.1
EXYNOS5422_MAX_VOLTAGE = 5.7

#: The eight governor frequencies (Section III).
EXYNOS5422_FREQUENCIES_HZ = PAPER_FREQUENCIES_HZ


def exynos5422_power_model() -> BigLittlePowerModel:
    """Board power model calibrated against Fig. 4.

    Anchor points (board power while ray tracing):

    * 1xA7 @ 0.2 GHz  -> ~1.8 W (left edge of Fig. 7's LITTLE-only panel)
    * 4xA7 @ 1.4 GHz  -> ~3.0 W
    * 4xA7+4xA15 @ 1.4 GHz -> ~7.3 W (top of Fig. 4)
    """
    little_vf = VoltageFrequencyMap(v_min=0.90, v_max=1.20, f_min_hz=0.2 * GHZ, f_max_hz=1.4 * GHZ)
    big_vf = VoltageFrequencyMap(v_min=0.90, v_max=1.25, f_min_hz=0.2 * GHZ, f_max_hz=1.4 * GHZ)
    little = ClusterPowerParameters(
        effective_capacitance_f=150e-12,
        static_power_w=0.030,
        vf_map=little_vf,
    )
    big = ClusterPowerParameters(
        effective_capacitance_f=450e-12,
        static_power_w=0.080,
        vf_map=big_vf,
    )
    return BigLittlePowerModel(base_power_w=1.70, little=little, big=big)


def exynos5422_performance_model() -> PerformanceModel:
    """Instruction-throughput / FPS model calibrated against Fig. 7 and Table II."""
    return PerformanceModel(
        ipc_little=0.23,
        ipc_big=0.644,
        workload=WorkloadScaling(
            instructions_per_frame=19.6e9,
            instructions_per_render=290e9,
            parallel_fraction=0.99,
        ),
    )


def exynos5422_latency_model() -> TransitionLatencyModel:
    """DVFS / hot-plug latency model calibrated against Fig. 10."""
    return TransitionLatencyModel(
        hotplug_base_s=0.010,
        hotplug_reference_hz=1.4 * GHZ,
        # 10 ms at 1.4 GHz grows to ~40 ms at 0.2 GHz, matching Fig. 10's spread.
        hotplug_frequency_exponent=0.71,
        hotplug_big_extra_s=0.004,
        dvfs_base_s=0.0012,
        dvfs_per_core_s=0.00022,
        dvfs_up_penalty_s=0.0006,
    )


def exynos5422_opp_table() -> OPPTable:
    """The OPP table: 8 frequencies x the 8-step core ladder."""
    return OPPTable(
        frequency_ladder=FrequencyLadder(EXYNOS5422_FREQUENCIES_HZ),
        configs=core_ladder(max_little=4, max_big=4),
    )


def exynos5422_spec() -> PlatformSpec:
    """Electrical/OPP envelope of the ODROID-XU4."""
    return PlatformSpec(
        name="ODROID-XU4 (Exynos5422)",
        opp_table=exynos5422_opp_table(),
        minimum_voltage=EXYNOS5422_MIN_VOLTAGE,
        maximum_voltage=EXYNOS5422_MAX_VOLTAGE,
        reboot_voltage=4.6,
        reboot_latency_s=8.0,
    )


def build_exynos5422_platform(initial_opp: OperatingPoint | None = None) -> SoCPlatform:
    """Assemble the fully calibrated ODROID-XU4 platform model.

    Parameters
    ----------
    initial_opp:
        Operating point at power-on; defaults to the lowest OPP
        (1 LITTLE core at 0.2 GHz).
    """
    return SoCPlatform(
        spec=exynos5422_spec(),
        power_model=exynos5422_power_model(),
        performance_model=exynos5422_performance_model(),
        latency_model=exynos5422_latency_model(),
        initial_opp=initial_opp,
    )
