"""Board power consumption model (paper Fig. 4).

The governor never needs a microarchitectural power model: it only needs the
board-level power drawn at each operating performance point while running the
CPU-intensive ray-tracing workload.  The paper characterises this surface
experimentally (Fig. 4); we reproduce it with a standard analytical per-core
model calibrated to the figure:

    P_board(config, f) = P_base
                         + n_little * (P_static_L + C_eff_L * f * Vdd_L(f)^2)
                         + n_big    * (P_static_B + C_eff_B * f * Vdd_B(f)^2)

where ``Vdd(f)`` is a per-cluster linear voltage/frequency map.  A tabulated
variant is also provided so users with measured OPP tables (e.g. from a real
ODROID-XU4) can plug in their own data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Protocol

import numpy as np

from .cores import CoreConfig, CoreType
from .opp import GHZ, OperatingPoint

__all__ = [
    "VoltageFrequencyMap",
    "ClusterPowerParameters",
    "PowerModel",
    "BigLittlePowerModel",
    "TabulatedPowerModel",
]


@dataclass(frozen=True)
class VoltageFrequencyMap:
    """Linear supply-voltage vs frequency relationship for one cluster.

    ``Vdd(f) = v_min + (v_max - v_min) * (f - f_min) / (f_max - f_min)``,
    clamped to ``[v_min, v_max]``.  This matches the shape of the Exynos5422
    ASV voltage tables closely enough for board-power reproduction.
    """

    v_min: float
    v_max: float
    f_min_hz: float
    f_max_hz: float

    def __post_init__(self) -> None:
        if self.v_min <= 0 or self.v_max < self.v_min:
            raise ValueError("require 0 < v_min <= v_max")
        if self.f_min_hz <= 0 or self.f_max_hz <= self.f_min_hz:
            raise ValueError("require 0 < f_min_hz < f_max_hz")

    def voltage(self, frequency_hz: float) -> float:
        """Supply voltage at the given frequency."""
        span = self.f_max_hz - self.f_min_hz
        frac = (frequency_hz - self.f_min_hz) / span
        frac = min(max(frac, 0.0), 1.0)
        return self.v_min + (self.v_max - self.v_min) * frac


@dataclass(frozen=True)
class ClusterPowerParameters:
    """Per-core power parameters for one cluster type.

    Attributes
    ----------
    effective_capacitance_f:
        Effective switched capacitance per core in farads; dynamic power is
        ``C_eff * f * Vdd^2`` (activity factor folded in, as the workload is
        CPU-bound).
    static_power_w:
        Per-core static (leakage + uncore share) power in watts while online.
    vf_map:
        Voltage/frequency relationship of the cluster.
    """

    effective_capacitance_f: float
    static_power_w: float
    vf_map: VoltageFrequencyMap

    def __post_init__(self) -> None:
        if self.effective_capacitance_f <= 0:
            raise ValueError("effective_capacitance_f must be positive")
        if self.static_power_w < 0:
            raise ValueError("static_power_w must be non-negative")

    def core_power(self, frequency_hz: float) -> float:
        """Power of a single online core of this cluster at ``frequency_hz``."""
        vdd = self.vf_map.voltage(frequency_hz)
        return self.static_power_w + self.effective_capacitance_f * frequency_hz * vdd * vdd


class PowerModel(Protocol):
    """Anything that maps an operating point to board power in watts."""

    def power(self, opp: OperatingPoint) -> float:  # pragma: no cover - protocol
        ...


class BigLittlePowerModel:
    """Analytical board-power model for a two-cluster big.LITTLE SoC.

    Parameters
    ----------
    base_power_w:
        Board power with a single LITTLE core idle-clocked: covers DRAM, the
        fan, voltage regulators, peripherals and the uncore.  Fig. 4's curves
        all converge towards roughly this value at the lowest frequency.
    little / big:
        Per-cluster per-core parameters.
    """

    def __init__(
        self,
        base_power_w: float,
        little: ClusterPowerParameters,
        big: ClusterPowerParameters,
    ):
        if base_power_w < 0:
            raise ValueError("base_power_w must be non-negative")
        self.base_power_w = base_power_w
        self.little = little
        self.big = big

    def cluster(self, core_type: CoreType) -> ClusterPowerParameters:
        return self.little if core_type is CoreType.LITTLE else self.big

    def core_power(self, core_type: CoreType, frequency_hz: float) -> float:
        """Power of one online core of the given type at ``frequency_hz``."""
        return self.cluster(core_type).core_power(frequency_hz)

    def power(self, opp: OperatingPoint) -> float:
        """Board power at an operating point (W)."""
        config = opp.config
        f = opp.frequency_hz
        return (
            self.base_power_w
            + config.n_little * self.little.core_power(f)
            + config.n_big * self.big.core_power(f)
        )

    def power_of(self, config: CoreConfig, frequency_hz: float) -> float:
        """Convenience overload taking the configuration and frequency separately."""
        return self.power(OperatingPoint(config, frequency_hz))

    def power_curve(self, config: CoreConfig, frequencies_hz) -> np.ndarray:
        """Board power over an array of frequencies for a fixed configuration."""
        return np.array([self.power_of(config, float(f)) for f in frequencies_hz])


class TabulatedPowerModel:
    """Board power from a measured (config, frequency) -> watts table.

    Frequencies between table entries are linearly interpolated; frequencies
    outside the tabulated range are clamped.  Configurations must match
    exactly (hot-plugging is discrete).
    """

    def __init__(self, table: Mapping[tuple[tuple[int, int], float], float]):
        if not table:
            raise ValueError("the power table must not be empty")
        self._by_config: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
        grouped: dict[tuple[int, int], list[tuple[float, float]]] = {}
        for (config_tuple, frequency_hz), watts in table.items():
            if watts <= 0:
                raise ValueError("all tabulated powers must be positive")
            grouped.setdefault(tuple(config_tuple), []).append((float(frequency_hz), float(watts)))
        for config_tuple, pairs in grouped.items():
            pairs.sort()
            freqs = np.array([p[0] for p in pairs])
            watts = np.array([p[1] for p in pairs])
            self._by_config[config_tuple] = (freqs, watts)

    def power(self, opp: OperatingPoint) -> float:
        key = opp.config.as_tuple()
        if key not in self._by_config:
            raise KeyError(f"no power data for configuration {opp.config}")
        freqs, watts = self._by_config[key]
        return float(np.interp(opp.frequency_hz, freqs, watts))

    def power_of(self, config: CoreConfig, frequency_hz: float) -> float:
        return self.power(OperatingPoint(config, frequency_hz))

    @property
    def configurations(self) -> list[tuple[int, int]]:
        """The core configurations present in the table."""
        return sorted(self._by_config)
