"""Operating performance points (OPPs) and the DVFS frequency ladder.

An OPP couples a :class:`~repro.soc.cores.CoreConfig` with an operating
frequency.  The paper (Section III) restricts DVFS to eight predefined
frequencies chosen so that the corresponding power consumptions are roughly
linearly spaced:

    0.2, 0.45, 0.72, 0.92, 1.1, 1.2, 1.3, 1.4 GHz

Both clusters are driven from the same ladder (the control algorithm applies
one ``fclk`` to the system), matching the paper's presentation.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from .cores import CoreConfig, core_ladder

__all__ = [
    "GHZ",
    "MHZ",
    "PAPER_FREQUENCIES_HZ",
    "OperatingPoint",
    "FrequencyLadder",
    "OPPTable",
]

#: One gigahertz in hertz.
GHZ = 1e9
#: One megahertz in hertz.
MHZ = 1e6

#: The eight DVFS frequencies used throughout the paper, in Hz.
PAPER_FREQUENCIES_HZ: tuple[float, ...] = (
    0.20 * GHZ,
    0.45 * GHZ,
    0.72 * GHZ,
    0.92 * GHZ,
    1.10 * GHZ,
    1.20 * GHZ,
    1.30 * GHZ,
    1.40 * GHZ,
)


@dataclass(frozen=True)
class OperatingPoint:
    """A single operating performance point: core configuration + frequency."""

    config: CoreConfig
    frequency_hz: float

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("frequency_hz must be positive")

    @property
    def frequency_ghz(self) -> float:
        return self.frequency_hz / GHZ

    def with_frequency(self, frequency_hz: float) -> "OperatingPoint":
        return OperatingPoint(self.config, frequency_hz)

    def with_config(self, config: CoreConfig) -> "OperatingPoint":
        return OperatingPoint(config, self.frequency_hz)

    def __str__(self) -> str:
        return f"{self.config}@{self.frequency_ghz:.2f}GHz"


class FrequencyLadder:
    """An ordered set of permitted DVFS frequencies with step-wise navigation."""

    def __init__(self, frequencies_hz: Sequence[float] = PAPER_FREQUENCIES_HZ):
        freqs = sorted(set(float(f) for f in frequencies_hz))
        if not freqs:
            raise ValueError("the frequency ladder must contain at least one frequency")
        if any(f <= 0 for f in freqs):
            raise ValueError("all frequencies must be positive")
        self._frequencies = tuple(freqs)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    @property
    def frequencies_hz(self) -> tuple[float, ...]:
        return self._frequencies

    def __len__(self) -> int:
        return len(self._frequencies)

    def __iter__(self) -> Iterator[float]:
        return iter(self._frequencies)

    def __contains__(self, frequency_hz: float) -> bool:
        return any(abs(f - frequency_hz) < 1.0 for f in self._frequencies)

    @property
    def lowest(self) -> float:
        return self._frequencies[0]

    @property
    def highest(self) -> float:
        return self._frequencies[-1]

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    def index_of(self, frequency_hz: float) -> int:
        """Index of the ladder entry nearest to ``frequency_hz``."""
        pos = bisect_left(self._frequencies, frequency_hz)
        if pos == 0:
            return 0
        if pos == len(self._frequencies):
            return len(self._frequencies) - 1
        before = self._frequencies[pos - 1]
        after = self._frequencies[pos]
        return pos if (after - frequency_hz) < (frequency_hz - before) else pos - 1

    def snap(self, frequency_hz: float) -> float:
        """Return the ladder frequency nearest to ``frequency_hz``."""
        return self._frequencies[self.index_of(frequency_hz)]

    def step_down(self, frequency_hz: float, steps: int = 1) -> float:
        """The frequency ``steps`` ladder positions below (clamped at the bottom)."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        idx = max(self.index_of(frequency_hz) - steps, 0)
        return self._frequencies[idx]

    def step_up(self, frequency_hz: float, steps: int = 1) -> float:
        """The frequency ``steps`` ladder positions above (clamped at the top)."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        idx = min(self.index_of(frequency_hz) + steps, len(self._frequencies) - 1)
        return self._frequencies[idx]

    def is_lowest(self, frequency_hz: float) -> bool:
        return self.index_of(frequency_hz) == 0

    def is_highest(self, frequency_hz: float) -> bool:
        return self.index_of(frequency_hz) == len(self._frequencies) - 1


class OPPTable:
    """The full set of operating performance points of a platform.

    Combines a frequency ladder with the ordered core-configuration ladder and
    provides the OPP-level navigation the governor and the baseline governors
    need (lowest/highest OPP, enumeration for characterisation sweeps).
    """

    def __init__(
        self,
        frequency_ladder: FrequencyLadder | None = None,
        configs: Sequence[CoreConfig] | None = None,
    ):
        self.frequencies = frequency_ladder if frequency_ladder is not None else FrequencyLadder()
        self.configs: tuple[CoreConfig, ...] = tuple(configs) if configs is not None else tuple(core_ladder())
        if not self.configs:
            raise ValueError("the OPP table needs at least one core configuration")

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def all_points(self) -> list[OperatingPoint]:
        """Every (configuration, frequency) combination, lowest first."""
        return [
            OperatingPoint(cfg, f)
            for cfg in self.configs
            for f in self.frequencies
        ]

    def __len__(self) -> int:
        return len(self.configs) * len(self.frequencies)

    def __iter__(self) -> Iterator[OperatingPoint]:
        return iter(self.all_points())

    # ------------------------------------------------------------------
    # Extremes
    # ------------------------------------------------------------------
    @property
    def lowest(self) -> OperatingPoint:
        """The minimum-power OPP: the smallest configuration at the lowest frequency."""
        return OperatingPoint(self.configs[0], self.frequencies.lowest)

    @property
    def highest(self) -> OperatingPoint:
        """The maximum-performance OPP: the largest configuration at the highest frequency."""
        return OperatingPoint(self.configs[-1], self.frequencies.highest)

    # ------------------------------------------------------------------
    # Config ladder navigation
    # ------------------------------------------------------------------
    def config_index(self, config: CoreConfig) -> int:
        """Index of ``config`` in the configuration ladder."""
        try:
            return self.configs.index(config)
        except ValueError as exc:
            raise KeyError(f"configuration {config} is not in the OPP table") from exc

    def config_step_down(self, config: CoreConfig, steps: int = 1) -> CoreConfig:
        idx = max(self.config_index(config) - steps, 0)
        return self.configs[idx]

    def config_step_up(self, config: CoreConfig, steps: int = 1) -> CoreConfig:
        idx = min(self.config_index(config) + steps, len(self.configs) - 1)
        return self.configs[idx]

    def contains_config(self, config: CoreConfig) -> bool:
        """Whether ``config`` is one of the ladder's characterised rungs."""
        return config in self.configs

    @property
    def max_little(self) -> int:
        """Largest LITTLE-core count appearing in the table."""
        return max(c.n_little for c in self.configs)

    @property
    def max_big(self) -> int:
        """Largest big-core count appearing in the table."""
        return max(c.n_big for c in self.configs)

    def allows_config(self, config: CoreConfig) -> bool:
        """Whether ``config`` lies within the platform's cluster sizes.

        The governor's independent LITTLE/big scaling factors (paper eq. 2)
        can produce configurations off the characterised ladder (e.g. two
        LITTLE cores plus one big core); any configuration within the cluster
        sizes is electrically valid and allowed here.
        """
        return 1 <= config.n_little <= self.max_little and 0 <= config.n_big <= self.max_big
