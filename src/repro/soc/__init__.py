"""MP-SoC substrate: cores, OPPs, power/performance/latency models, platform.

This subpackage models the *load* side of the paper's system: the Samsung
Exynos5422 big.LITTLE SoC on the ODROID-XU4 board, characterised by the paper
in Fig. 4 (power), Fig. 7 (performance), Fig. 10 (transition latency) and
Table I (worst-case transition cost).
"""

from .cores import CoreConfig, CoreType, CORE_LADDER, core_ladder
from .opp import (
    GHZ,
    MHZ,
    PAPER_FREQUENCIES_HZ,
    FrequencyLadder,
    OperatingPoint,
    OPPTable,
)
from .power_model import (
    BigLittlePowerModel,
    ClusterPowerParameters,
    TabulatedPowerModel,
    VoltageFrequencyMap,
)
from .performance_model import PerformanceModel, WorkloadScaling
from .latency import TransitionLatencyModel, TransitionStep
from .platform import PendingTransition, PlatformSpec, SoCPlatform
from .exynos5422 import (
    EXYNOS5422_FREQUENCIES_HZ,
    EXYNOS5422_MAX_VOLTAGE,
    EXYNOS5422_MIN_VOLTAGE,
    build_exynos5422_platform,
    exynos5422_latency_model,
    exynos5422_opp_table,
    exynos5422_performance_model,
    exynos5422_power_model,
    exynos5422_spec,
)

__all__ = [
    "CoreConfig",
    "CoreType",
    "CORE_LADDER",
    "core_ladder",
    "GHZ",
    "MHZ",
    "PAPER_FREQUENCIES_HZ",
    "FrequencyLadder",
    "OperatingPoint",
    "OPPTable",
    "BigLittlePowerModel",
    "ClusterPowerParameters",
    "TabulatedPowerModel",
    "VoltageFrequencyMap",
    "PerformanceModel",
    "WorkloadScaling",
    "TransitionLatencyModel",
    "TransitionStep",
    "PendingTransition",
    "PlatformSpec",
    "SoCPlatform",
    "EXYNOS5422_FREQUENCIES_HZ",
    "EXYNOS5422_MAX_VOLTAGE",
    "EXYNOS5422_MIN_VOLTAGE",
    "build_exynos5422_platform",
    "exynos5422_latency_model",
    "exynos5422_opp_table",
    "exynos5422_performance_model",
    "exynos5422_power_model",
    "exynos5422_spec",
]
