"""Core types and core configurations for a big.LITTLE MP-SoC.

The Exynos5422 used in the paper has two clusters: four low-power ARM
Cortex-A7 ('LITTLE') cores and four high-performance ARM Cortex-A15 ('big')
cores.  Dynamic power management (DPM) is performed by hot-plugging cores in
and out at runtime, so the unit of DPM state is the *core configuration*: how
many LITTLE and how many big cores are currently online.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator

__all__ = ["CoreType", "CoreConfig", "CORE_LADDER", "core_ladder"]


class CoreType(str, Enum):
    """The two core types of a big.LITTLE system."""

    LITTLE = "LITTLE"
    BIG = "big"


@dataclass(frozen=True, order=True)
class CoreConfig:
    """Number of online LITTLE and big cores.

    The ordering used by ``order=True`` (first by LITTLE count, then by big
    count) is *not* the platform's power ordering; use
    :func:`core_ladder` / :class:`repro.soc.opp.OPPTable` for that.

    Attributes
    ----------
    n_little:
        Number of online LITTLE (A7) cores.  At least one core must stay
        online to run the OS, and on the Exynos5422 CPU0 is a LITTLE core, so
        ``n_little >= 1``.
    n_big:
        Number of online big (A15) cores.
    """

    n_little: int
    n_big: int

    def __post_init__(self) -> None:
        if self.n_little < 1:
            raise ValueError("at least one LITTLE core must remain online")
        if self.n_big < 0:
            raise ValueError("n_big must be non-negative")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        """Total number of online cores."""
        return self.n_little + self.n_big

    def count(self, core_type: CoreType) -> int:
        """Number of online cores of the given type."""
        return self.n_little if core_type is CoreType.LITTLE else self.n_big

    def as_tuple(self) -> tuple[int, int]:
        return (self.n_little, self.n_big)

    # ------------------------------------------------------------------
    # Hot-plug transitions
    # ------------------------------------------------------------------
    def can_add(self, core_type: CoreType, max_little: int = 4, max_big: int = 4) -> bool:
        """Whether one more core of ``core_type`` can be brought online."""
        if core_type is CoreType.LITTLE:
            return self.n_little < max_little
        return self.n_big < max_big

    def can_remove(self, core_type: CoreType) -> bool:
        """Whether one core of ``core_type`` can be taken offline."""
        if core_type is CoreType.LITTLE:
            return self.n_little > 1
        return self.n_big > 0

    def add(self, core_type: CoreType, max_little: int = 4, max_big: int = 4) -> "CoreConfig":
        """Return the configuration with one more core of ``core_type`` online.

        If the cluster is already full the configuration is returned
        unchanged (hot-plug requests beyond the cluster size are no-ops on
        the real platform too).
        """
        if not self.can_add(core_type, max_little, max_big):
            return self
        if core_type is CoreType.LITTLE:
            return CoreConfig(self.n_little + 1, self.n_big)
        return CoreConfig(self.n_little, self.n_big + 1)

    def remove(self, core_type: CoreType) -> "CoreConfig":
        """Return the configuration with one core of ``core_type`` offline.

        Removing the last LITTLE core (or a big core when none is online) is
        a no-op.
        """
        if not self.can_remove(core_type):
            return self
        if core_type is CoreType.LITTLE:
            return CoreConfig(self.n_little - 1, self.n_big)
        return CoreConfig(self.n_little, self.n_big - 1)

    def __str__(self) -> str:
        if self.n_big == 0:
            return f"{self.n_little}xA7"
        return f"{self.n_little}xA7+{self.n_big}xA15"


def core_ladder(max_little: int = 4, max_big: int = 4) -> list[CoreConfig]:
    """The ordered ladder of core configurations used by the paper (Fig. 4).

    LITTLE cores are filled first, then big cores are added on top of a full
    LITTLE cluster:

        1xA7, 2xA7, 3xA7, 4xA7, 4xA7+1xA15, ..., 4xA7+4xA15

    This matches the configurations the paper characterises and is the
    natural monotone-power ordering for the governor's DPM decisions.
    """
    ladder: list[CoreConfig] = [CoreConfig(n, 0) for n in range(1, max_little + 1)]
    ladder.extend(CoreConfig(max_little, n) for n in range(1, max_big + 1))
    return ladder


#: The default Exynos5422 ladder (4 LITTLE + 4 big).
CORE_LADDER: list[CoreConfig] = core_ladder()
