"""Performance model: instruction throughput and ray-trace frame rate (Fig. 7).

The paper measures performance two ways:

* **FPS** of the smallpt ray tracer at 5 samples per pixel (Fig. 7, and
  "renders per minute" of a larger render in Table II), and
* **instructions completed** (Table II).

Both derive from the same underlying quantity: the aggregate instruction
throughput of the online cores.  The ray tracer is embarrassingly parallel
and CPU-bound, so throughput scales with the sum over online cores of
``IPC_eff * f`` where ``IPC_eff`` is the workload's effective instructions
per cycle on that core type.

Calibration (see DESIGN.md §6): ``IPC_eff = 0.23`` for the A7 and ``0.644``
for the A15 reproduce, simultaneously, the Fig. 7 frame rates (with a 5-spp
frame costing about 19.6 G instructions) and the Table II instruction counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cores import CoreConfig, CoreType
from .opp import OperatingPoint

__all__ = ["WorkloadScaling", "PerformanceModel"]


@dataclass(frozen=True)
class WorkloadScaling:
    """How a specific workload maps instruction throughput to work units.

    Attributes
    ----------
    instructions_per_frame:
        Instructions required to render one reference frame (smallpt,
        1024x768, 5 samples per pixel).
    instructions_per_render:
        Instructions required for one Table II "render" (a higher-quality
        render; the paper's renders/minute figures imply roughly 15x a
        5-spp frame).
    parallel_fraction:
        Fraction of the workload that parallelises across cores (Amdahl).
        smallpt is almost perfectly parallel.
    """

    instructions_per_frame: float = 19.6e9
    instructions_per_render: float = 290e9
    parallel_fraction: float = 0.99

    def __post_init__(self) -> None:
        if self.instructions_per_frame <= 0:
            raise ValueError("instructions_per_frame must be positive")
        if self.instructions_per_render <= 0:
            raise ValueError("instructions_per_render must be positive")
        if not 0.0 < self.parallel_fraction <= 1.0:
            raise ValueError("parallel_fraction must lie in (0, 1]")


class PerformanceModel:
    """Aggregate instruction throughput and derived frame/render rates.

    Parameters
    ----------
    ipc_little / ipc_big:
        Effective workload instructions-per-cycle on a LITTLE / big core.
    workload:
        Work-unit scaling (frame / render instruction costs).
    """

    def __init__(
        self,
        ipc_little: float = 0.23,
        ipc_big: float = 0.644,
        workload: WorkloadScaling | None = None,
    ):
        if ipc_little <= 0 or ipc_big <= 0:
            raise ValueError("IPC values must be positive")
        self.ipc_little = ipc_little
        self.ipc_big = ipc_big
        self.workload = workload if workload is not None else WorkloadScaling()

    # ------------------------------------------------------------------
    # Instruction throughput
    # ------------------------------------------------------------------
    def core_instruction_rate(self, core_type: CoreType, frequency_hz: float) -> float:
        """Instruction throughput of one core of the given type (instr/s)."""
        ipc = self.ipc_little if core_type is CoreType.LITTLE else self.ipc_big
        return ipc * frequency_hz

    def instruction_rate(self, opp: OperatingPoint) -> float:
        """Aggregate instruction throughput at an operating point (instr/s).

        An Amdahl correction accounts for the small serial fraction of the
        workload: with ``n`` symmetric-equivalent cores the speed-up over one
        LITTLE core is ``1 / ((1-p) + p/n_eq)`` where ``n_eq`` is the online
        capacity measured in LITTLE-core equivalents.
        """
        config = opp.config
        f = opp.frequency_hz
        raw = (
            config.n_little * self.core_instruction_rate(CoreType.LITTLE, f)
            + config.n_big * self.core_instruction_rate(CoreType.BIG, f)
        )
        single = self.core_instruction_rate(CoreType.LITTLE, f)
        n_eq = raw / single if single > 0 else 1.0
        p = self.workload.parallel_fraction
        speedup = 1.0 / ((1.0 - p) + p / n_eq)
        return single * speedup

    def instruction_rate_of(self, config: CoreConfig, frequency_hz: float) -> float:
        """Convenience overload taking configuration and frequency separately."""
        return self.instruction_rate(OperatingPoint(config, frequency_hz))

    # ------------------------------------------------------------------
    # Workload-level rates
    # ------------------------------------------------------------------
    def fps(self, opp: OperatingPoint) -> float:
        """smallpt 5-spp frames per second at an operating point (Fig. 7)."""
        return self.instruction_rate(opp) / self.workload.instructions_per_frame

    def fps_of(self, config: CoreConfig, frequency_hz: float) -> float:
        return self.fps(OperatingPoint(config, frequency_hz))

    def renders_per_minute(self, opp: OperatingPoint) -> float:
        """Table II renders per minute at an operating point."""
        return 60.0 * self.instruction_rate(opp) / self.workload.instructions_per_render

    def performance_curve(self, config: CoreConfig, frequencies_hz) -> np.ndarray:
        """FPS over an array of frequencies for a fixed configuration."""
        return np.array([self.fps_of(config, float(f)) for f in frequencies_hz])
