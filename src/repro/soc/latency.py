"""Transition latency and transition charge models (paper Fig. 10 and Table I).

Power-neutral operation only needs enough buffer capacitance to carry the SoC
through the latency of a DVFS or hot-plug transition, so the latency model is
what connects the control design to the capacitor sizing:

* **Hot-plug latency** (Fig. 10, top): tens of milliseconds per core, larger
  at lower operating frequency (the hot-plug path runs on the CPU being
  scaled).  Measured values range from roughly 10 ms (at 1.4 GHz) to about
  40 ms (at 200 MHz) per single-core transition.
* **DVFS latency** (Fig. 10, bottom): a few milliseconds per frequency step,
  mildly dependent on how many cores are online and on the direction.

Table I then evaluates the worst-case highest-to-lowest OPP transition for
the two possible orderings (frequency-first vs cores-first) and derives the
required capacitance; :mod:`repro.core.capacitor_sizing` uses this model for
that computation.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cores import CoreConfig, CoreType
from .opp import GHZ, OperatingPoint

__all__ = ["TransitionLatencyModel", "TransitionStep"]


@dataclass(frozen=True)
class TransitionStep:
    """A single actuation step inside a composite OPP transition."""

    description: str
    latency_s: float
    power_during_w: float

    @property
    def charge_coulombs_at(self) -> float:  # pragma: no cover - simple alias
        """Deprecated alias kept for backwards compatibility."""
        return self.latency_s * self.power_during_w


class TransitionLatencyModel:
    """Analytical fit of the Fig. 10 latency measurements.

    Parameters
    ----------
    hotplug_base_s:
        Hot-plug latency for one core transition at the reference frequency.
    hotplug_reference_hz:
        Frequency at which ``hotplug_base_s`` applies (1.4 GHz in Fig. 10).
    hotplug_frequency_exponent:
        Latency grows as ``(f_ref / f) ** exponent`` at lower frequencies;
        0.5 reproduces the measured 10 ms -> ~26-40 ms spread between 1.4 GHz
        and 200 MHz.
    hotplug_big_extra_s:
        Additional latency when the transition powers a big-cluster core
        (bringing up the A15 cluster involves the cluster power domain).
    dvfs_base_s:
        Latency of one frequency step with a single LITTLE core online.
    dvfs_per_core_s:
        Additional latency per extra online core (cpufreq notifies each).
    dvfs_up_penalty_s:
        Extra latency when stepping the frequency up (voltage must rise
        before frequency).
    """

    def __init__(
        self,
        hotplug_base_s: float = 0.010,
        hotplug_reference_hz: float = 1.4 * GHZ,
        hotplug_frequency_exponent: float = 0.5,
        hotplug_big_extra_s: float = 0.004,
        dvfs_base_s: float = 0.0012,
        dvfs_per_core_s: float = 0.00022,
        dvfs_up_penalty_s: float = 0.0006,
    ):
        if hotplug_base_s <= 0 or dvfs_base_s <= 0:
            raise ValueError("base latencies must be positive")
        if hotplug_reference_hz <= 0:
            raise ValueError("hotplug_reference_hz must be positive")
        if hotplug_frequency_exponent < 0:
            raise ValueError("hotplug_frequency_exponent must be non-negative")
        if hotplug_big_extra_s < 0 or dvfs_per_core_s < 0 or dvfs_up_penalty_s < 0:
            raise ValueError("latency adders must be non-negative")
        self.hotplug_base_s = hotplug_base_s
        self.hotplug_reference_hz = hotplug_reference_hz
        self.hotplug_frequency_exponent = hotplug_frequency_exponent
        self.hotplug_big_extra_s = hotplug_big_extra_s
        self.dvfs_base_s = dvfs_base_s
        self.dvfs_per_core_s = dvfs_per_core_s
        self.dvfs_up_penalty_s = dvfs_up_penalty_s

    # ------------------------------------------------------------------
    # Hot-plugging
    # ------------------------------------------------------------------
    def hotplug_latency(
        self,
        from_config: CoreConfig,
        to_config: CoreConfig,
        frequency_hz: float,
    ) -> float:
        """Latency (s) to move between two core configurations at a frequency.

        Multi-core transitions are performed one core at a time (as the Linux
        hot-plug interface does), so the latency is the sum over the
        individual single-core transitions.
        """
        if frequency_hz <= 0:
            raise ValueError("frequency_hz must be positive")
        scale = (self.hotplug_reference_hz / frequency_hz) ** self.hotplug_frequency_exponent
        per_core = self.hotplug_base_s * scale
        d_little = abs(to_config.n_little - from_config.n_little)
        d_big = abs(to_config.n_big - from_config.n_big)
        latency = d_little * per_core + d_big * (per_core + self.hotplug_big_extra_s)
        return latency

    def single_hotplug_latency(
        self, core_type: CoreType, frequency_hz: float
    ) -> float:
        """Latency of one single-core hot-plug transition of the given type."""
        scale = (self.hotplug_reference_hz / frequency_hz) ** self.hotplug_frequency_exponent
        latency = self.hotplug_base_s * scale
        if core_type is CoreType.BIG:
            latency += self.hotplug_big_extra_s
        return latency

    # ------------------------------------------------------------------
    # DVFS
    # ------------------------------------------------------------------
    def dvfs_latency(
        self,
        from_frequency_hz: float,
        to_frequency_hz: float,
        config: CoreConfig,
    ) -> float:
        """Latency (s) of a single DVFS step between two ladder frequencies."""
        if from_frequency_hz <= 0 or to_frequency_hz <= 0:
            raise ValueError("frequencies must be positive")
        if from_frequency_hz == to_frequency_hz:
            return 0.0
        latency = self.dvfs_base_s + self.dvfs_per_core_s * (config.total - 1)
        if to_frequency_hz > from_frequency_hz:
            latency += self.dvfs_up_penalty_s
        return latency

    # ------------------------------------------------------------------
    # Composite transitions
    # ------------------------------------------------------------------
    def transition_latency(
        self,
        from_opp: OperatingPoint,
        to_opp: OperatingPoint,
        cores_first: bool = True,
    ) -> float:
        """Total latency of an arbitrary OPP transition.

        ``cores_first`` selects the ordering: hot-plug to the target core
        configuration and then change frequency (the paper's scenario (b)), or
        the reverse (scenario (a)).  The frequency in effect during the
        hot-plug phase differs between the two orderings, which is what makes
        (b) cheaper.
        """
        if cores_first:
            hot = self.hotplug_latency(from_opp.config, to_opp.config, from_opp.frequency_hz)
            dvfs = self.dvfs_latency(from_opp.frequency_hz, to_opp.frequency_hz, to_opp.config)
        else:
            dvfs = self.dvfs_latency(from_opp.frequency_hz, to_opp.frequency_hz, from_opp.config)
            hot = self.hotplug_latency(from_opp.config, to_opp.config, to_opp.frequency_hz)
        return hot + dvfs
