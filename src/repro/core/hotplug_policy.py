"""Derivative core hot-plugging response policy (paper Section II-B, eq. 2-3).

The second stage of the governor's response deals with 'macro' variation in
the harvested supply by adding or removing CPU cores.  The decision is
*derivative*: it depends on how fast the supply voltage is changing.

Measuring ``dV_C/dt`` continuously would cost CPU time, so the paper
approximates it at each threshold crossing from the tracking quantum and the
time since the previous crossing (eq. 3):

    dV_C/dt  ≈  V_q / τ

Two gradient thresholds ``alpha`` (LITTLE cores) and ``beta`` (big cores)
convert the gradient into the ternary core-scaling factors ``S_L`` and
``S_b`` of eq. 2: when the gradient magnitude exceeds ``beta`` a big core is
added/removed, and when it exceeds ``alpha`` a LITTLE core is added/removed
(``beta > alpha``, so a very steep change scales both clusters at once, as
observed at point 'B' of Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.monitor import ThresholdCrossing

__all__ = ["CoreScalingResponse", "DerivativeHotplugPolicy"]


@dataclass(frozen=True)
class CoreScalingResponse:
    """The ternary core-scaling factors of eq. 2.

    ``+1`` adds a core of that type, ``-1`` removes one, ``0`` leaves the
    cluster unchanged.
    """

    s_little: int
    s_big: int

    def __post_init__(self) -> None:
        if self.s_little not in (-1, 0, 1) or self.s_big not in (-1, 0, 1):
            raise ValueError("core scaling factors must be -1, 0 or +1")

    @property
    def any_change(self) -> bool:
        return self.s_little != 0 or self.s_big != 0


class DerivativeHotplugPolicy:
    """Decide core scaling from the approximated supply-voltage gradient.

    Parameters
    ----------
    v_q:
        Threshold tracking quantum (the ΔV of the gradient approximation).
    alpha:
        LITTLE-core gradient threshold in V/s.
    beta:
        big-core gradient threshold in V/s (``beta >= alpha``).
    """

    def __init__(self, v_q: float, alpha: float, beta: float):
        if v_q <= 0:
            raise ValueError("v_q must be positive")
        if alpha <= 0 or beta <= 0:
            raise ValueError("alpha and beta must be positive")
        if beta < alpha:
            raise ValueError("beta must be >= alpha")
        self.v_q = v_q
        self.alpha = alpha
        self.beta = beta

    # ------------------------------------------------------------------
    # Gradient approximation (eq. 3)
    # ------------------------------------------------------------------
    def gradient_magnitude(self, tau: float) -> float:
        """|dV_C/dt| approximated as V_q / τ (eq. 3)."""
        if tau <= 0:
            return float("inf")
        return self.v_q / tau

    @property
    def tau_little(self) -> float:
        """Crossing interval below which the LITTLE response triggers (V_q/α)."""
        return self.v_q / self.alpha

    @property
    def tau_big(self) -> float:
        """Crossing interval below which the big response triggers (V_q/β)."""
        return self.v_q / self.beta

    # ------------------------------------------------------------------
    # Response (eq. 2)
    # ------------------------------------------------------------------
    def respond(self, crossing: ThresholdCrossing, tau: float) -> CoreScalingResponse:
        """Core-scaling response for a crossing that happened ``tau`` seconds
        after the previous one.

        A ``LOW`` crossing with a steep gradient removes cores; a ``HIGH``
        crossing with a steep gradient adds cores.  A gradual change (gradient
        below ``alpha``) leaves the core configuration untouched and lets the
        DVFS stage absorb the variation.
        """
        gradient = self.gradient_magnitude(tau)
        direction = -1 if crossing is ThresholdCrossing.LOW else 1
        s_big = direction if gradient > self.beta else 0
        s_little = direction if gradient > self.alpha else 0
        return CoreScalingResponse(s_little=s_little, s_big=s_big)
