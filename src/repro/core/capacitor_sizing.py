"""Buffer-capacitance sizing (paper Section IV-A and Table I).

Power-neutral operation still needs *some* capacitance: enough to supply the
board through the latency of the worst-case performance-scaling response,
which is the transition from the highest OPP (maximum power) to the lowest
OPP (minimum power).  Table I evaluates the two possible orderings of that
composite transition:

* scenario (a): perform all DVFS steps first, then hot-plug the cores out —
  slow, because hot-plugging at the (now low) frequency takes tens of
  milliseconds per core;
* scenario (b): hot-plug the cores out first, then perform the DVFS steps —
  much faster, because hot-plugging happens at the high frequency.

For each scenario we decompose the transition into its individual steps,
accumulate the elapsed time ``δ`` and the charge ``Q = ∫ I dt`` drawn from
the buffer at the minimum operating voltage, and size the capacitance as

    C_required = Q / (V_max - V_min)

i.e. the capacitor must hold the transition's charge within the board's
operating-voltage window.  (The paper's Table I reports 84.2 mF and 15.4 mF;
our latency/power calibration reproduces the ordering and the roughly 3-5x
advantage of scenario (b), which is the conclusion the 47 mF component choice
rests on.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..soc.cores import CoreConfig, CoreType
from ..soc.latency import TransitionLatencyModel, TransitionStep
from ..soc.opp import FrequencyLadder, OperatingPoint, OPPTable
from ..soc.platform import SoCPlatform
from ..soc.power_model import PowerModel

__all__ = [
    "TransitionOrdering",
    "TransitionCost",
    "worst_case_transition_cost",
    "required_buffer_capacitance",
    "table1",
]


class TransitionOrdering(str, Enum):
    """The two orderings evaluated in Table I."""

    FREQUENCY_FIRST = "frequency_first"  # scenario (a)
    CORES_FIRST = "cores_first"          # scenario (b)


@dataclass
class TransitionCost:
    """Cost of a composite highest-to-lowest OPP transition."""

    ordering: TransitionOrdering
    duration_s: float
    charge_coulombs: float
    required_capacitance_f: float
    steps: list[TransitionStep] = field(default_factory=list)

    @property
    def average_current_a(self) -> float:
        """Mean current drawn from the buffer during the transition."""
        if self.duration_s <= 0:
            return 0.0
        return self.charge_coulombs / self.duration_s


def _config_removal_sequence(from_config: CoreConfig, to_config: CoreConfig) -> list[CoreConfig]:
    """Intermediate configurations removing big cores first, one core at a time."""
    sequence: list[CoreConfig] = []
    config = from_config
    while config.n_big > to_config.n_big:
        config = config.remove(CoreType.BIG)
        sequence.append(config)
    while config.n_little > to_config.n_little:
        config = config.remove(CoreType.LITTLE)
        sequence.append(config)
    return sequence


def _frequency_descent(ladder: FrequencyLadder, from_hz: float, to_hz: float) -> list[float]:
    """Intermediate ladder frequencies stepping down from ``from_hz`` to ``to_hz``."""
    sequence: list[float] = []
    f = ladder.snap(from_hz)
    target = ladder.snap(to_hz)
    while f > target:
        f = ladder.step_down(f)
        sequence.append(f)
    return sequence


def worst_case_transition_cost(
    power_model: PowerModel,
    latency_model: TransitionLatencyModel,
    opp_table: OPPTable,
    ordering: TransitionOrdering,
    supply_voltage: float,
    voltage_headroom: float | None = None,
) -> TransitionCost:
    """Cost of the highest-to-lowest OPP transition under one ordering.

    Parameters
    ----------
    power_model / latency_model / opp_table:
        Platform characterisation.
    ordering:
        Scenario (a) ``FREQUENCY_FIRST`` or scenario (b) ``CORES_FIRST``.
    supply_voltage:
        Voltage at which the charge is drawn (the paper evaluates at the
        lowest operating voltage).
    voltage_headroom:
        Voltage swing the buffer may use to deliver the charge; defaults to
        the full operating window implied by the highest/lowest thresholds
        (1.6 V for the ODROID-XU4).
    """
    if supply_voltage <= 0:
        raise ValueError("supply_voltage must be positive")
    highest = opp_table.highest
    lowest = opp_table.lowest
    ladder = opp_table.frequencies
    if voltage_headroom is None:
        voltage_headroom = 1.6
    if voltage_headroom <= 0:
        raise ValueError("voltage_headroom must be positive")

    steps: list[TransitionStep] = []

    def add_dvfs_steps(config: CoreConfig, from_hz: float, to_hz: float) -> float:
        """Append the DVFS descent at a fixed configuration; returns final frequency."""
        f = ladder.snap(from_hz)
        for next_f in _frequency_descent(ladder, from_hz, to_hz):
            latency = latency_model.dvfs_latency(f, next_f, config)
            # The frequency changes partway through the step; charge the mean
            # of the before/after draw over the step's dead time.
            power = 0.5 * (
                power_model.power(OperatingPoint(config, f))
                + power_model.power(OperatingPoint(config, next_f))
            )
            steps.append(
                TransitionStep(
                    description=f"DVFS {f/1e9:.2f}->{next_f/1e9:.2f} GHz @ {config}",
                    latency_s=latency,
                    power_during_w=power,
                )
            )
            f = next_f
        return f

    def add_hotplug_steps(from_config: CoreConfig, to_config: CoreConfig, frequency_hz: float) -> None:
        config = from_config
        for next_config in _config_removal_sequence(from_config, to_config):
            removed_big = next_config.n_big < config.n_big
            core_type = CoreType.BIG if removed_big else CoreType.LITTLE
            latency = latency_model.single_hotplug_latency(core_type, frequency_hz)
            # The departing core is pulled from the scheduler at the start of
            # the operation and is fully powered down by the end of it, so
            # the dead-time draw is the mean of the before/after draws.
            power = 0.5 * (
                power_model.power(OperatingPoint(config, frequency_hz))
                + power_model.power(OperatingPoint(next_config, frequency_hz))
            )
            steps.append(
                TransitionStep(
                    description=f"hot-unplug {core_type.value} {config}->{next_config} @ {frequency_hz/1e9:.2f} GHz",
                    latency_s=latency,
                    power_during_w=power,
                )
            )
            config = next_config

    if ordering is TransitionOrdering.FREQUENCY_FIRST:
        add_dvfs_steps(highest.config, highest.frequency_hz, lowest.frequency_hz)
        add_hotplug_steps(highest.config, lowest.config, lowest.frequency_hz)
    else:
        add_hotplug_steps(highest.config, lowest.config, highest.frequency_hz)
        add_dvfs_steps(lowest.config, highest.frequency_hz, lowest.frequency_hz)

    duration = sum(step.latency_s for step in steps)
    charge = sum(step.latency_s * step.power_during_w / supply_voltage for step in steps)
    required_c = charge / voltage_headroom
    return TransitionCost(
        ordering=ordering,
        duration_s=duration,
        charge_coulombs=charge,
        required_capacitance_f=required_c,
        steps=steps,
    )


def required_buffer_capacitance(
    platform: SoCPlatform,
    supply_voltage: float | None = None,
    voltage_headroom: float | None = None,
) -> dict[TransitionOrdering, TransitionCost]:
    """Evaluate both Table I scenarios for a platform.

    Returns a mapping from ordering to :class:`TransitionCost`; the minimum
    required buffer capacitance is the ``required_capacitance_f`` of the
    cheaper (cores-first) scenario.
    """
    if supply_voltage is None:
        supply_voltage = platform.spec.minimum_voltage
    if voltage_headroom is None:
        voltage_headroom = platform.spec.maximum_voltage - platform.spec.minimum_voltage
    return {
        ordering: worst_case_transition_cost(
            power_model=platform.power_model,
            latency_model=platform.latency_model,
            opp_table=platform.opp_table,
            ordering=ordering,
            supply_voltage=supply_voltage,
            voltage_headroom=voltage_headroom,
        )
        for ordering in TransitionOrdering
    }


def table1(platform: SoCPlatform) -> list[dict]:
    """Table I as a list of row dictionaries (used by the benchmark harness)."""
    costs = required_buffer_capacitance(platform)
    rows = []
    for ordering, label in (
        (TransitionOrdering.FREQUENCY_FIRST, "(a) Frequency, Core"),
        (TransitionOrdering.CORES_FIRST, "(b) Core, Frequency"),
    ):
        cost = costs[ordering]
        rows.append(
            {
                "scenario": label,
                "transition_time_ms": cost.duration_s * 1e3,
                "charge_coulombs": cost.charge_coulombs,
                "required_capacitance_mf": cost.required_capacitance_f * 1e3,
            }
        )
    return rows
