"""The paper's contribution: the power-neutral performance-scaling governor.

Contains the controller parameters (Section II-A), the dynamic dual-threshold
tracker (eq. 1), the linear DVFS policy and derivative hot-plugging policy
(Section II-B, eq. 2-3), the :class:`PowerNeutralGovernor` tying them together
(Fig. 5), the Section III parameter-tuning methodology and the Table I buffer
capacitance sizing.
"""

from .parameters import (
    ControllerParameters,
    FIG6_PARAMETERS,
    FIG11_PARAMETERS,
    PAPER_TUNED_PARAMETERS,
)
from .thresholds import ThresholdTracker
from .dvfs_policy import LinearDVFSPolicy
from .hotplug_policy import CoreScalingResponse, DerivativeHotplugPolicy
from .governor import PowerNeutralGovernor
from .capacitor_sizing import (
    TransitionCost,
    TransitionOrdering,
    required_buffer_capacitance,
    table1,
    worst_case_transition_cost,
)
from .tuning import (
    TuningResult,
    TuningScenario,
    evaluate_parameters,
    grid_search,
    random_search,
)

__all__ = [
    "ControllerParameters",
    "FIG6_PARAMETERS",
    "FIG11_PARAMETERS",
    "PAPER_TUNED_PARAMETERS",
    "ThresholdTracker",
    "LinearDVFSPolicy",
    "CoreScalingResponse",
    "DerivativeHotplugPolicy",
    "PowerNeutralGovernor",
    "TransitionCost",
    "TransitionOrdering",
    "required_buffer_capacitance",
    "table1",
    "worst_case_transition_cost",
    "TuningResult",
    "TuningScenario",
    "evaluate_parameters",
    "grid_search",
    "random_search",
]
