"""The power-neutral performance-scaling governor (the paper's contribution).

The governor ties together the three mechanisms described in Section II and
the flowchart of Fig. 5:

1. a :class:`~repro.core.thresholds.ThresholdTracker` owning the dynamic
   ``V_high`` / ``V_low`` thresholds (eq. 1),
2. a :class:`~repro.core.dvfs_policy.LinearDVFSPolicy` applying the linear
   frequency response to every crossing,
3. a :class:`~repro.core.hotplug_policy.DerivativeHotplugPolicy` applying the
   derivative core hot-plugging response (eq. 2-3).

It is interrupt driven: the simulator (standing in for the external
comparator hardware of Fig. 9) calls :meth:`on_interrupt` whenever the supply
voltage crosses one of the programmed thresholds.  Each invocation

* measures ``τ``, the time since the previous crossing,
* computes the DVFS step and the core-scaling response,
* shifts both thresholds by ``V_q`` in the direction of the crossing,
* returns the requested operating point (the platform model charges the
  appropriate transition latency).

The per-invocation CPU cost is modelled at 50 µs, which over a typical run
reproduces the ~0.1 % CPU overhead reported in Section V-D.
"""

from __future__ import annotations

from typing import Optional

from ..governors.base import Governor, GovernorDecision
from ..hw.monitor import ThresholdCrossing
from ..soc.cores import CoreConfig, CoreType
from ..soc.opp import OperatingPoint
from ..soc.platform import SoCPlatform
from .dvfs_policy import LinearDVFSPolicy
from .hotplug_policy import DerivativeHotplugPolicy
from .parameters import ControllerParameters, PAPER_TUNED_PARAMETERS
from .thresholds import ThresholdTracker

__all__ = ["PowerNeutralGovernor"]


class PowerNeutralGovernor(Governor):
    """Power-neutral performance scaling through DVFS and core hot-plugging.

    Parameters
    ----------
    parameters:
        The four algorithmic parameters (``V_width``, ``V_q``, ``alpha``,
        ``beta``) plus the ablation switches.  Defaults to the values tuned
        through simulation in Section III.
    target_voltage:
        The calibrated target supply voltage (Section V-B sets it to the PV
        array's maximum power point, 5.3 V).  The dynamic thresholds may
        track downwards from here as far as the platform's minimum operating
        voltage, but their upward travel is capped just above the target:
        when more power is harvested than the present operating point
        consumes, the governor keeps raising performance rather than letting
        the node voltage drift towards open circuit, which is what pins
        operation at (and MPP-tracks) the target.  Pass ``None`` to let the
        thresholds roam the full operating window instead (used for the
        controlled-supply verification of Fig. 11, where no PV MPP exists).
    """

    name = "power-neutral"
    uses_voltage_monitor = True
    sampling_interval_s = None
    cpu_time_per_invocation_s = 50e-6

    def __init__(
        self,
        parameters: ControllerParameters = PAPER_TUNED_PARAMETERS,
        target_voltage: float | None = 5.3,
    ):
        super().__init__()
        self.parameters = parameters
        self.target_voltage = target_voltage
        self._tracker: Optional[ThresholdTracker] = None
        self._dvfs: Optional[LinearDVFSPolicy] = None
        self._hotplug = DerivativeHotplugPolicy(
            v_q=parameters.v_q, alpha=parameters.alpha, beta=parameters.beta
        )
        self._last_crossing_time: Optional[float] = None
        self._last_crossing_type: Optional[ThresholdCrossing] = None
        self._last_hotplug_time: float = float("-inf")
        #: History of (time, crossing, tau, decision) tuples for analysis.
        self.decision_log: list[tuple[float, ThresholdCrossing, float, OperatingPoint]] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def initialise(self, platform: SoCPlatform, time: float, supply_voltage: float) -> None:
        """Calibrate the thresholds around the present supply voltage (eq. 1)."""
        params = self.parameters
        v_floor = params.v_floor if params.v_floor is not None else platform.spec.minimum_voltage
        if params.v_ceiling is not None:
            v_ceiling = params.v_ceiling
        elif self.target_voltage is not None:
            # Cap the upward travel of the threshold window just above the
            # calibrated target (the PV maximum power point): surplus power is
            # then absorbed by raising performance, not by letting V_C drift
            # towards the open-circuit voltage.
            v_ceiling = min(
                self.target_voltage + params.v_width, platform.spec.maximum_voltage
            )
            v_ceiling = max(v_ceiling, v_floor + params.v_width)
        else:
            v_ceiling = platform.spec.maximum_voltage
        self._tracker = ThresholdTracker(
            v_width=params.v_width,
            v_q=params.v_q,
            v_floor=v_floor,
            v_ceiling=v_ceiling,
        )
        self._tracker.calibrate(supply_voltage)
        self._dvfs = LinearDVFSPolicy(platform.frequency_ladder)
        self._last_crossing_time = time
        self._last_crossing_type = None
        self._last_hotplug_time = float("-inf")
        self.decision_log.clear()

    # ------------------------------------------------------------------
    # Threshold reporting (consumed by the voltage monitor)
    # ------------------------------------------------------------------
    def thresholds(self) -> Optional[tuple[float, float]]:
        if self._tracker is None:
            return None
        return self._tracker.as_tuple()

    @property
    def tracker(self) -> ThresholdTracker:
        """The live threshold tracker (available after :meth:`initialise`)."""
        if self._tracker is None:
            raise RuntimeError("governor has not been initialised")
        return self._tracker

    # ------------------------------------------------------------------
    # Interrupt handling (the Fig. 5 flowchart)
    # ------------------------------------------------------------------
    def on_interrupt(
        self,
        crossing: ThresholdCrossing,
        time: float,
        supply_voltage: float,
        platform: SoCPlatform,
    ) -> Optional[GovernorDecision]:
        if self._tracker is None or self._dvfs is None:
            raise RuntimeError("governor has not been initialised")
        self._account_invocation()

        # τ: time elapsed since the previous crossing of the *same* threshold
        # (eq. 3 / Fig. 5 timer).  The gradient approximation dV_C/dt ≈ V_q/τ
        # only holds between consecutive crossings in the same direction —
        # that is when the tracked threshold has moved by exactly V_q.  When
        # the previous crossing was of the opposite threshold the supply is
        # merely hunting inside the window, the gradient estimate is
        # undefined, and no core-scaling response is taken.
        same_direction = self._last_crossing_type == crossing
        if self._last_crossing_time is None or not same_direction:
            tau = float("inf")
        else:
            tau = max(time - self._last_crossing_time, 0.0)
        self._last_crossing_time = time
        self._last_crossing_type = crossing

        current = platform.current_opp

        # Stage 1 — linear DVFS response.
        if self.parameters.use_dvfs:
            new_frequency = self._dvfs.respond(crossing, current.frequency_hz)
        else:
            new_frequency = current.frequency_hz

        # Stage 2 — core hot-plugging (DPM) response.  Two rules engage it:
        #
        #   * the paper's derivative rule (eq. 2-3): a steep supply-voltage
        #     gradient across consecutive same-direction crossings scales the
        #     clusters immediately — this is the fast anti-brown-out path the
        #     Table I capacitance is sized for;
        #   * a saturation rule completing the Fig. 5 "keep responding while
        #     V_C remains beyond the threshold" loop: when the frequency
        #     ladder is exhausted in the crossing's direction and V_C is
        #     still outside the window, the only response left is a core —
        #     one is added/removed regardless of gradient.
        #
        # Core *additions* are separated by a hold-off so that DPM follows
        # the macro trend rather than the micro hunting DVFS absorbs; core
        # *removals* are never delayed — shedding load ahead of a collapsing
        # supply is the anti-brown-out path the Table I capacitance is sized
        # for.
        new_config = current.config
        if self.parameters.use_hotplug:
            holdoff_elapsed = (
                time - self._last_hotplug_time >= self.parameters.hotplug_holdoff_s
            )
            allowed = holdoff_elapsed or crossing is ThresholdCrossing.LOW
            if allowed:
                if same_direction:
                    response = self._hotplug.respond(crossing, tau)
                    new_config = self._apply_core_scaling(new_config, response.s_little, CoreType.LITTLE, platform)
                    new_config = self._apply_core_scaling(new_config, response.s_big, CoreType.BIG, platform)
                if new_config == current.config and self._dvfs_saturated(crossing, current.frequency_hz, platform):
                    new_config = self._saturation_core_response(crossing, current.config, platform)
                if new_config != current.config:
                    self._last_hotplug_time = time

        # Stage 3 — shift the thresholds to track the harvested supply.
        if crossing is ThresholdCrossing.LOW:
            self._tracker.on_low_crossing()
        else:
            self._tracker.on_high_crossing()

        target = OperatingPoint(new_config, new_frequency)
        if target == current:
            return None
        self.decision_log.append((time, crossing, tau, target))
        return GovernorDecision(target=target, cores_first=self.parameters.cores_first)

    def _dvfs_saturated(
        self, crossing: ThresholdCrossing, frequency_hz: float, platform: SoCPlatform
    ) -> bool:
        """Whether the DVFS stage can respond no further in this direction."""
        if not self.parameters.use_dvfs:
            return True
        ladder = platform.frequency_ladder
        if crossing is ThresholdCrossing.LOW:
            return ladder.is_lowest(frequency_hz)
        return ladder.is_highest(frequency_hz)

    def _saturation_core_response(
        self, crossing: ThresholdCrossing, config: CoreConfig, platform: SoCPlatform
    ) -> CoreConfig:
        """One-core response used when only DPM can still follow the supply.

        Additions bring a LITTLE core up first (the gentler power step) and
        fall back to a big core once the LITTLE cluster is full; removals
        shed a big core first and fall back to a LITTLE core.
        """
        table = platform.opp_table
        if crossing is ThresholdCrossing.HIGH:
            if config.can_add(CoreType.LITTLE, table.max_little, table.max_big):
                return config.add(CoreType.LITTLE, table.max_little, table.max_big)
            return config.add(CoreType.BIG, table.max_little, table.max_big)
        if config.can_remove(CoreType.BIG):
            return config.remove(CoreType.BIG)
        return config.remove(CoreType.LITTLE)

    @staticmethod
    def _apply_core_scaling(
        config: CoreConfig, factor: int, core_type: CoreType, platform: SoCPlatform
    ) -> CoreConfig:
        """Apply one ternary core-scaling factor, respecting cluster limits."""
        if factor == 0:
            return config
        table = platform.opp_table
        max_little = max(c.n_little for c in table.configs)
        max_big = max(c.n_big for c in table.configs)
        if factor > 0:
            return config.add(core_type, max_little=max_little, max_big=max_big)
        return config.remove(core_type)
