"""Linear DVFS response policy (paper Section II-B, first stage).

On every threshold crossing the governor applies *linear control* to the
operating frequency: the frequency moves exactly one step along the ladder of
``N`` predefined operating frequencies — down when ``V_low`` was crossed
(harvested power falling), up when ``V_high`` was crossed (harvested power
rising).  DVFS is applied first because its latency is much lower than core
hot-plugging, making it the right tool for the 'micro' variability of the
harvested supply.
"""

from __future__ import annotations

from ..hw.monitor import ThresholdCrossing
from ..soc.opp import FrequencyLadder

__all__ = ["LinearDVFSPolicy"]


class LinearDVFSPolicy:
    """Step the operating frequency one ladder position per crossing.

    Parameters
    ----------
    ladder:
        The platform's permitted DVFS frequencies.
    steps_per_crossing:
        Number of ladder positions to move per crossing.  The paper uses 1
        ("migrated to the next lowest of N predefined operating frequency
        levels"); larger values are exposed for ablation studies.
    """

    def __init__(self, ladder: FrequencyLadder, steps_per_crossing: int = 1):
        if steps_per_crossing < 1:
            raise ValueError("steps_per_crossing must be at least 1")
        self.ladder = ladder
        self.steps_per_crossing = steps_per_crossing

    def respond(self, crossing: ThresholdCrossing, current_frequency_hz: float) -> float:
        """Return the new operating frequency for a threshold crossing."""
        if crossing is ThresholdCrossing.LOW:
            return self.ladder.step_down(current_frequency_hz, self.steps_per_crossing)
        return self.ladder.step_up(current_frequency_hz, self.steps_per_crossing)

    def at_limit(self, crossing: ThresholdCrossing, current_frequency_hz: float) -> bool:
        """Whether the frequency can move no further in the crossing's direction."""
        if crossing is ThresholdCrossing.LOW:
            return self.ladder.is_lowest(current_frequency_hz)
        return self.ladder.is_highest(current_frequency_hz)
