"""Controller parameters of the power-neutral performance-scaling governor.

The governor has four algorithmic parameters (paper Section II-A and Fig. 3):

* ``v_width`` — the initial separation between the ``V_high`` and ``V_low``
  thresholds bounding the supply voltage;
* ``v_q``     — the amount by which both thresholds move each time one of
  them is crossed (the tracking quantum);
* ``alpha``   — the minimum |dV_C/dt| that warrants adding/removing a
  'LITTLE' core;
* ``beta``    — the minimum |dV_C/dt| that warrants adding/removing a 'big'
  core (``beta > alpha`` because big cores are a larger power step).

Three named parameter sets appear in the paper and are provided as constants:
the values tuned through simulation in Section III, the illustrative values of
the Fig. 6 simulation, and the deliberately exaggerated values used for the
controlled-supply demonstration of Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "ControllerParameters",
    "PAPER_TUNED_PARAMETERS",
    "FIG6_PARAMETERS",
    "FIG11_PARAMETERS",
]


@dataclass(frozen=True)
class ControllerParameters:
    """Tunable parameters of the power-neutral governor.

    Attributes
    ----------
    v_width:
        Initial threshold separation in volts.
    v_q:
        Threshold tracking quantum in volts.
    alpha:
        LITTLE-core gradient threshold in V/s.
    beta:
        big-core gradient threshold in V/s.
    use_dvfs:
        Enable the linear DVFS response (disable for DPM-only ablation).
    use_hotplug:
        Enable the derivative core hot-plugging response (disable for the
        DVFS-only ablation, equivalent to generalising the single-core
        approach of paper reference [11]).
    cores_first:
        Transition ordering used when a decision changes both the core
        configuration and the frequency (paper Table I scenario (b) when
        True).
    hotplug_holdoff_s:
        Minimum interval between successive core *additions*.  Hot-plugging
        targets the 'macro' variation of the harvested supply (Section II-B);
        rate-limiting additions keeps the DPM layer from reacting to the
        'micro' variation that DVFS already absorbs, preventing add/remove
        churn while the OPP settles around a new power level.  Core removals
        are never delayed — shedding load to prevent brown-out is the
        safety-critical path.  Set to 0 to disable (ablation).
    v_floor:
        Lowest value ``V_low`` may be driven down to while tracking; defaults
        to the platform's minimum operating voltage when the governor is
        initialised (``None`` means "use the platform minimum").
    v_ceiling:
        Highest value ``V_high`` may be driven up to (``None`` means "use the
        platform maximum").
    """

    v_width: float
    v_q: float
    alpha: float
    beta: float
    use_dvfs: bool = True
    use_hotplug: bool = True
    cores_first: bool = True
    hotplug_holdoff_s: float = 0.5
    v_floor: float | None = None
    v_ceiling: float | None = None

    def __post_init__(self) -> None:
        if self.v_width <= 0:
            raise ValueError("v_width must be positive")
        if self.v_q <= 0:
            raise ValueError("v_q must be positive")
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.beta <= 0:
            raise ValueError("beta must be positive")
        if self.beta < self.alpha:
            raise ValueError(
                "beta (big-core gradient threshold) must be >= alpha "
                "(LITTLE-core gradient threshold)"
            )
        if not (self.use_dvfs or self.use_hotplug):
            raise ValueError("at least one of use_dvfs / use_hotplug must be enabled")
        if self.hotplug_holdoff_s < 0:
            raise ValueError("hotplug_holdoff_s must be non-negative")
        if self.v_floor is not None and self.v_ceiling is not None:
            if self.v_ceiling <= self.v_floor:
                raise ValueError("v_ceiling must exceed v_floor")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def tau_big(self) -> float:
        """Crossing interval below which a big-core response is taken: V_q / beta."""
        return self.v_q / self.beta

    @property
    def tau_little(self) -> float:
        """Crossing interval below which a LITTLE-core response is taken: V_q / alpha."""
        return self.v_q / self.alpha

    def with_overrides(self, **changes) -> "ControllerParameters":
        """Return a copy with the given fields replaced (for sweeps/ablations)."""
        return replace(self, **changes)


#: Best-performing values found through the Section III simulation study.
PAPER_TUNED_PARAMETERS = ControllerParameters(
    v_width=0.144,
    v_q=0.0479,
    alpha=0.120,
    beta=0.479,
)

#: Values used for the illustrative simulation of Fig. 6.
FIG6_PARAMETERS = ControllerParameters(
    v_width=0.200,
    v_q=0.080,
    alpha=0.100,
    beta=0.120,
)

#: Deliberately large values used for clarity in the Fig. 11 demonstration.
FIG11_PARAMETERS = ControllerParameters(
    v_width=0.335,
    v_q=0.190,
    alpha=0.238,
    beta=0.633,
)
