"""Parameter selection through simulation (paper Section III).

The paper selects the governor's four parameters (``V_width``, ``V_q``,
``alpha``, ``beta``) by simulating the closed-loop system in Matlab-Simulink
under a sudden-shadowing scenario and scoring each candidate by the stability
of the supply voltage — specifically "the proportion of time spent within 5 %
of the target voltage".  The best values found were 144 mV, 47.9 mV,
0.120 V/s and 0.479 V/s.

This module reproduces that methodology on the Python simulator: a
:class:`TuningScenario` describes the stimulus (irradiance profile, platform,
buffer), :func:`evaluate_parameters` runs the closed loop for one candidate
and scores it, and :func:`grid_search` / :func:`random_search` sweep the
parameter space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Iterable, Sequence

import numpy as np

from ..analysis.stability import fraction_within_tolerance
from ..energy.irradiance import ramped_shadow_irradiance
from ..energy.pv_array import PVArray, paper_pv_array
from ..energy.supercapacitor import PAPER_BUFFER_CAPACITANCE_F, Supercapacitor
from ..energy.traces import IrradianceTrace
from ..sim.simulator import EnergyHarvestingSimulation, SimulationConfig
from ..sim.supplies import PVArraySupply
from ..soc.platform import SoCPlatform
from .governor import PowerNeutralGovernor
from .parameters import ControllerParameters

__all__ = ["TuningScenario", "TuningResult", "evaluate_parameters", "grid_search", "random_search"]


@dataclass
class TuningScenario:
    """The closed-loop stimulus used to score parameter candidates.

    Parameters
    ----------
    platform_factory:
        Builds a fresh platform model for each evaluation (state machines are
        stateful, so candidates must not share one).
    irradiance:
        The irradiance profile driving the PV array.  The default mimics the
        Fig. 6 scenario: full sun with a sudden period of heavy shadowing.
    pv_array:
        The harvesting array.
    capacitance_f:
        Buffer capacitance.
    target_voltage:
        Voltage whose ±5 % band defines the stability score (the array's MPP
        voltage, 5.3 V for the calibrated array).
    tolerance:
        Relative tolerance of the stability band.
    duration_s:
        Length of each evaluation run.
    """

    platform_factory: Callable[[], SoCPlatform]
    irradiance: IrradianceTrace | None = None
    pv_array: PVArray = field(default_factory=paper_pv_array)
    capacitance_f: float = PAPER_BUFFER_CAPACITANCE_F
    target_voltage: float = 5.3
    tolerance: float = 0.05
    duration_s: float = 30.0

    def __post_init__(self) -> None:
        if self.irradiance is None:
            # Full sun, a deep shadow over the middle third of the run, then
            # recovery.  The shadow keeps the harvest just above the lowest
            # OPP's draw so that a well-tuned controller can ride it out, and
            # its edges ramp over half a second as real shadowing does.
            self.irradiance = ramped_shadow_irradiance(
                high_w_m2=1000.0,
                low_w_m2=450.0,
                shadow_start=self.duration_s / 3.0,
                shadow_end=2.0 * self.duration_s / 3.0,
                duration=self.duration_s,
                ramp_s=0.5,
                dt=0.05,
            )

    def build_simulation(self, parameters: ControllerParameters) -> EnergyHarvestingSimulation:
        """Assemble the closed-loop simulation for one parameter candidate."""
        platform = self.platform_factory()
        governor = PowerNeutralGovernor(parameters)
        supply = PVArraySupply(self.pv_array, self.irradiance)
        capacitor = Supercapacitor(self.capacitance_f)
        config = SimulationConfig(
            duration_s=self.duration_s,
            record_interval_s=0.05,
            initial_voltage=self.target_voltage,
        )
        return EnergyHarvestingSimulation(
            platform=platform,
            governor=governor,
            supply=supply,
            capacitor=capacitor,
            config=config,
        )


@dataclass(frozen=True)
class TuningResult:
    """Score of one parameter candidate."""

    parameters: ControllerParameters
    fraction_within: float
    survived: bool
    brownouts: int
    instructions: float

    @property
    def score(self) -> float:
        """Primary ranking key: stability, with brown-outs disqualifying."""
        return self.fraction_within if self.survived else self.fraction_within - 1.0

    def as_dict(self) -> dict:
        return {
            "v_width_mv": 1e3 * self.parameters.v_width,
            "v_q_mv": 1e3 * self.parameters.v_q,
            "alpha_v_per_s": self.parameters.alpha,
            "beta_v_per_s": self.parameters.beta,
            "fraction_within": self.fraction_within,
            "survived": self.survived,
            "instructions_g": self.instructions / 1e9,
        }


def evaluate_parameters(parameters: ControllerParameters, scenario: TuningScenario) -> TuningResult:
    """Run the closed loop once and score the candidate (Section III metric)."""
    sim = scenario.build_simulation(parameters)
    result = sim.run()
    fraction = fraction_within_tolerance(
        result.times, result.supply_voltage, scenario.target_voltage, scenario.tolerance
    )
    return TuningResult(
        parameters=parameters,
        fraction_within=fraction,
        survived=result.survived,
        brownouts=result.brownout_count,
        instructions=result.total_instructions,
    )


def grid_search(
    scenario: TuningScenario,
    v_width_values: Sequence[float],
    v_q_values: Sequence[float],
    alpha_values: Sequence[float],
    beta_values: Sequence[float],
) -> list[TuningResult]:
    """Exhaustive sweep over a parameter grid, best candidates first.

    Candidates with ``beta < alpha`` are skipped (they violate the control
    law's assumption that big cores respond to steeper gradients).
    """
    results: list[TuningResult] = []
    for v_width, v_q, alpha, beta in product(v_width_values, v_q_values, alpha_values, beta_values):
        if beta < alpha:
            continue
        params = ControllerParameters(v_width=v_width, v_q=v_q, alpha=alpha, beta=beta)
        results.append(evaluate_parameters(params, scenario))
    results.sort(key=lambda r: r.score, reverse=True)
    return results


def random_search(
    scenario: TuningScenario,
    n_candidates: int = 20,
    seed: int = 0,
    v_width_range: tuple[float, float] = (0.05, 0.40),
    v_q_range: tuple[float, float] = (0.02, 0.20),
    alpha_range: tuple[float, float] = (0.05, 0.40),
    beta_range: tuple[float, float] = (0.10, 0.80),
) -> list[TuningResult]:
    """Random sweep of the parameter space, best candidates first."""
    if n_candidates < 1:
        raise ValueError("n_candidates must be positive")
    rng = np.random.default_rng(seed)
    results: list[TuningResult] = []
    for _ in range(n_candidates):
        v_width = float(rng.uniform(*v_width_range))
        v_q = float(rng.uniform(*v_q_range))
        alpha = float(rng.uniform(*alpha_range))
        beta = float(rng.uniform(max(alpha, beta_range[0]), beta_range[1]))
        params = ControllerParameters(v_width=v_width, v_q=v_q, alpha=alpha, beta=beta)
        results.append(evaluate_parameters(params, scenario))
    results.sort(key=lambda r: r.score, reverse=True)
    return results
