"""Dynamic dual-threshold tracker (paper Section II-A, eq. 1).

The tracker owns the two voltage thresholds ``V_high`` and ``V_low``.  They
are calibrated at start-up to bound the present supply voltage with a
separation of ``V_width`` (eq. 1), and thereafter move down by ``V_q`` every
time ``V_low`` is crossed and up by ``V_q`` every time ``V_high`` is crossed,
so that the pair "tracks" the harvested power level.

The tracker clamps the thresholds to the feasible window: ``V_low`` never
drops below the floor (the platform's minimum operating voltage, so the
governor always reacts before brown-out) and ``V_high`` never rises above the
ceiling (the maximum board voltage / PV open-circuit region).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ThresholdTracker"]


@dataclass
class ThresholdTracker:
    """State machine for the two dynamic voltage thresholds.

    Attributes
    ----------
    v_width:
        Separation between the thresholds.
    v_q:
        Step by which both thresholds move on each crossing.
    v_floor:
        Lowest permitted value of ``V_low``.
    v_ceiling:
        Highest permitted value of ``V_high``.
    """

    v_width: float
    v_q: float
    v_floor: float
    v_ceiling: float

    def __post_init__(self) -> None:
        if self.v_width <= 0:
            raise ValueError("v_width must be positive")
        if self.v_q <= 0:
            raise ValueError("v_q must be positive")
        if self.v_ceiling - self.v_floor < self.v_width:
            raise ValueError(
                "the [v_floor, v_ceiling] window must be at least v_width wide"
            )
        self.v_low: float = self.v_floor
        self.v_high: float = self.v_floor + self.v_width
        self.calibrated = False

    # ------------------------------------------------------------------
    # Calibration (eq. 1)
    # ------------------------------------------------------------------
    def calibrate(self, supply_voltage: float) -> tuple[float, float]:
        """Centre the thresholds on the present supply voltage.

        Implements eq. 1:  ``V_high = V_C + V_width/2``, ``V_low = V_C -
        V_width/2``, then clamps the pair into the permitted window while
        preserving the separation.
        """
        low = supply_voltage - 0.5 * self.v_width
        high = supply_voltage + 0.5 * self.v_width
        low, high = self._clamp_pair(low, high)
        self.v_low, self.v_high = low, high
        self.calibrated = True
        return self.v_low, self.v_high

    def _clamp_pair(self, low: float, high: float) -> tuple[float, float]:
        """Shift the (low, high) pair so it lies inside the permitted window."""
        if low < self.v_floor:
            shift = self.v_floor - low
            low += shift
            high += shift
        if high > self.v_ceiling:
            shift = high - self.v_ceiling
            low -= shift
            high -= shift
        # Window narrower than the pair can only happen if v_width is larger
        # than the window, which __post_init__ rejects.
        return low, high

    # ------------------------------------------------------------------
    # Tracking
    # ------------------------------------------------------------------
    def on_low_crossing(self) -> tuple[float, float]:
        """Shift both thresholds down by ``V_q`` (harvested power falling)."""
        low, high = self._clamp_pair(self.v_low - self.v_q, self.v_high - self.v_q)
        self.v_low, self.v_high = low, high
        return low, high

    def on_high_crossing(self) -> tuple[float, float]:
        """Shift both thresholds up by ``V_q`` (harvested power rising)."""
        low, high = self._clamp_pair(self.v_low + self.v_q, self.v_high + self.v_q)
        self.v_low, self.v_high = low, high
        return low, high

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def separation(self) -> float:
        """Present separation between the thresholds."""
        return self.v_high - self.v_low

    @property
    def centre(self) -> float:
        """Midpoint between the thresholds."""
        return 0.5 * (self.v_high + self.v_low)

    def contains(self, supply_voltage: float) -> bool:
        """Whether the supply voltage currently lies between the thresholds."""
        return self.v_low <= supply_voltage <= self.v_high

    def as_tuple(self) -> tuple[float, float]:
        return (self.v_low, self.v_high)
