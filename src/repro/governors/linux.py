"""Re-implementations of the default Linux cpufreq governors (Table II baselines).

The paper compares its approach against the stock Linux power-management
governors while harvesting from the PV array.  These governors are
*utilisation driven* and completely unaware of the supply voltage, which is
why the aggressive ones (performance, ondemand, interactive) brown the board
out almost immediately and even the adaptive conservative governor only
survives a few seconds: with a CPU-bound workload the measured utilisation is
always ~100 %, so they all drive the frequency to the maximum.

The decision rules implemented here follow the documented behaviour of the
kernel governors (sampling period, up/down thresholds, step sizes); scheduling
details that do not affect the outcome at 100 % utilisation are simplified.
All Linux governors leave every core online (the stock kernel does not
hot-plug cores), so only the frequency is managed.
"""

from __future__ import annotations

from typing import Optional

from ..soc.cores import CoreConfig
from ..soc.opp import OperatingPoint
from ..soc.platform import SoCPlatform
from .base import Governor, GovernorDecision

__all__ = [
    "PerformanceGovernor",
    "PowersaveGovernor",
    "OndemandGovernor",
    "ConservativeGovernor",
    "InteractiveGovernor",
]


class _LinuxGovernor(Governor):
    """Shared plumbing for the utilisation-driven Linux governors."""

    uses_voltage_monitor = False
    sampling_interval_s = 0.1
    cpu_time_per_invocation_s = 20e-6

    def __init__(self) -> None:
        super().__init__()
        self._all_cores: Optional[CoreConfig] = None

    def initialise(self, platform: SoCPlatform, time: float, supply_voltage: float) -> None:
        table = platform.opp_table
        self._all_cores = CoreConfig(table.max_little, table.max_big)

    def _decision(self, platform: SoCPlatform, frequency_hz: float) -> Optional[GovernorDecision]:
        """Build a decision keeping all cores online at the given frequency."""
        assert self._all_cores is not None
        target = OperatingPoint(self._all_cores, platform.frequency_ladder.snap(frequency_hz))
        if target == platform.current_opp and not platform.is_transitioning:
            return None
        return GovernorDecision(target=target, cores_first=False)


class PerformanceGovernor(_LinuxGovernor):
    """``performance``: statically pins the highest frequency."""

    name = "linux-performance"

    def on_tick(self, time, supply_voltage, utilization, platform) -> Optional[GovernorDecision]:
        self._account_invocation()
        return self._decision(platform, platform.frequency_ladder.highest)


class PowersaveGovernor(_LinuxGovernor):
    """``powersave``: statically pins the lowest frequency."""

    name = "linux-powersave"

    def on_tick(self, time, supply_voltage, utilization, platform) -> Optional[GovernorDecision]:
        self._account_invocation()
        return self._decision(platform, platform.frequency_ladder.lowest)


class OndemandGovernor(_LinuxGovernor):
    """``ondemand``: jump to the maximum frequency when utilisation is high.

    Above ``up_threshold`` the frequency jumps straight to the maximum; below
    it the target frequency is proportional to the measured utilisation
    (``f = f_max * util / up_threshold``), snapped to the ladder.
    """

    name = "linux-ondemand"

    def __init__(self, up_threshold: float = 0.80):
        super().__init__()
        if not 0.0 < up_threshold <= 1.0:
            raise ValueError("up_threshold must lie in (0, 1]")
        self.up_threshold = up_threshold

    def on_tick(self, time, supply_voltage, utilization, platform) -> Optional[GovernorDecision]:
        self._account_invocation()
        ladder = platform.frequency_ladder
        if utilization >= self.up_threshold:
            return self._decision(platform, ladder.highest)
        target = ladder.highest * utilization / self.up_threshold
        return self._decision(platform, max(target, ladder.lowest))


class ConservativeGovernor(_LinuxGovernor):
    """``conservative``: step the frequency gradually towards the demand.

    One ladder step up when utilisation exceeds ``up_threshold``, one step
    down when it falls below ``down_threshold``.  Under a CPU-bound workload
    the frequency therefore climbs to the maximum over the first ~1-2 s of
    ticks — which is why the paper measured a five-second lifetime for it.
    """

    name = "linux-conservative"

    def __init__(self, up_threshold: float = 0.80, down_threshold: float = 0.20):
        super().__init__()
        if not 0.0 < down_threshold < up_threshold <= 1.0:
            raise ValueError("require 0 < down_threshold < up_threshold <= 1")
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold

    def on_tick(self, time, supply_voltage, utilization, platform) -> Optional[GovernorDecision]:
        self._account_invocation()
        ladder = platform.frequency_ladder
        current = platform.current_opp.frequency_hz
        if utilization >= self.up_threshold:
            return self._decision(platform, ladder.step_up(current))
        if utilization <= self.down_threshold:
            return self._decision(platform, ladder.step_down(current))
        return None


class InteractiveGovernor(_LinuxGovernor):
    """``interactive``: ramp quickly to a high frequency on sustained load.

    On a load burst the governor jumps to ``hispeed_fraction`` of the maximum
    frequency; if the load persists past ``above_hispeed_delay_s`` it moves to
    the maximum.  Idle load lets it fall back to the minimum.
    """

    name = "linux-interactive"
    sampling_interval_s = 0.02  # the interactive governor samples on a 20 ms timer

    def __init__(
        self,
        hispeed_fraction: float = 0.75,
        go_hispeed_load: float = 0.85,
        above_hispeed_delay_s: float = 0.08,
    ):
        super().__init__()
        if not 0.0 < hispeed_fraction <= 1.0:
            raise ValueError("hispeed_fraction must lie in (0, 1]")
        if not 0.0 < go_hispeed_load <= 1.0:
            raise ValueError("go_hispeed_load must lie in (0, 1]")
        if above_hispeed_delay_s < 0:
            raise ValueError("above_hispeed_delay_s must be non-negative")
        self.hispeed_fraction = hispeed_fraction
        self.go_hispeed_load = go_hispeed_load
        self.above_hispeed_delay_s = above_hispeed_delay_s
        self._hispeed_since: Optional[float] = None

    def on_tick(self, time, supply_voltage, utilization, platform) -> Optional[GovernorDecision]:
        self._account_invocation()
        ladder = platform.frequency_ladder
        if utilization < self.go_hispeed_load:
            self._hispeed_since = None
            return self._decision(platform, ladder.lowest)
        hispeed = ladder.snap(ladder.highest * self.hispeed_fraction)
        if self._hispeed_since is None:
            self._hispeed_since = time
            return self._decision(platform, hispeed)
        if time - self._hispeed_since >= self.above_hispeed_delay_s:
            return self._decision(platform, ladder.highest)
        return self._decision(platform, hispeed)
