"""Power-management governors: the common interface and the baseline policies.

The paper's own governor lives in :mod:`repro.core.governor`; this subpackage
holds the :class:`~repro.governors.base.Governor` interface it implements and
the baselines it is evaluated against: the five stock Linux cpufreq governors
(Table II), a static-OPP governor (Section III), the single-core power-neutral
DFS precursor (reference [11]) and a SolarTune-style prediction-based
scheduler (reference [9]).
"""

from .base import Governor, GovernorDecision
from .linux import (
    ConservativeGovernor,
    InteractiveGovernor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)
from .static import StaticGovernor
from .single_core_dfs import SingleCoreDFSGovernor
from .solartune import SolarTuneGovernor

__all__ = [
    "Governor",
    "GovernorDecision",
    "ConservativeGovernor",
    "InteractiveGovernor",
    "OndemandGovernor",
    "PerformanceGovernor",
    "PowersaveGovernor",
    "StaticGovernor",
    "SingleCoreDFSGovernor",
    "SolarTuneGovernor",
]
