"""Static operating-point governor.

Pins one operating point for the whole run.  This is the "static performance"
system used as the comparison case in the Section III simulations (Fig. 6:
"V_C behaviour without proposed control scheme") and is also the building
block for the capacitance and parameter ablation studies.
"""

from __future__ import annotations

from typing import Optional

from ..soc.opp import OperatingPoint
from ..soc.platform import SoCPlatform
from .base import Governor, GovernorDecision

__all__ = ["StaticGovernor"]


class StaticGovernor(Governor):
    """Hold a fixed operating point (no runtime adaptation).

    Parameters
    ----------
    opp:
        The operating point to hold.  ``None`` keeps whatever operating point
        the platform boots into.
    """

    name = "static"
    uses_voltage_monitor = False
    sampling_interval_s = 0.5
    cpu_time_per_invocation_s = 5e-6

    def __init__(self, opp: Optional[OperatingPoint] = None):
        super().__init__()
        self.opp = opp
        if opp is not None:
            self.name = f"static-{opp.config}-{opp.frequency_ghz:.2f}GHz"

    def on_tick(self, time, supply_voltage, utilization, platform: SoCPlatform) -> Optional[GovernorDecision]:
        self._account_invocation()
        if self.opp is None:
            return None
        if platform.current_opp == self.opp and not platform.is_transitioning:
            return None
        return GovernorDecision(target=self.opp, cores_first=True)
