"""Common interface for all power-management governors.

The system simulator drives governors through two hooks:

* :meth:`Governor.on_interrupt` — called when the voltage-monitoring hardware
  raises a threshold-crossing interrupt (only for governors that declare
  ``uses_voltage_monitor``), mirroring the interrupt-driven implementation of
  the paper's approach;
* :meth:`Governor.on_tick` — called periodically every ``sampling_interval_s``
  seconds, mirroring how the Linux cpufreq governors (ondemand, conservative,
  interactive, ...) sample CPU utilisation.

Either hook may return a :class:`GovernorDecision` naming the operating point
the platform should move to; the simulator applies it through
:meth:`repro.soc.platform.SoCPlatform.request_opp`, which charges the
appropriate transition latency.

Governors also account for their own execution cost
(``cpu_time_per_invocation_s``) so the Fig. 15 overhead analysis can be
reproduced.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from ..hw.monitor import ThresholdCrossing
from ..soc.opp import OperatingPoint
from ..soc.platform import SoCPlatform

__all__ = ["GovernorDecision", "Governor"]


@dataclass(frozen=True)
class GovernorDecision:
    """A requested operating-point change.

    Attributes
    ----------
    target:
        The operating point the governor wants the platform to move to.
    cores_first:
        Ordering of the composite transition: hot-plug before DVFS (the
        paper's preferred scenario (b)) or the reverse.
    """

    target: OperatingPoint
    cores_first: bool = True


class Governor(ABC):
    """Base class for power-management governors.

    Subclasses override :meth:`on_interrupt` and/or :meth:`on_tick` and set
    the class attributes that tell the simulator which hooks to wire up.
    """

    #: Human-readable governor name (used in reports and Table II).
    name: str = "governor"
    #: Whether the governor consumes threshold interrupts from the monitor.
    uses_voltage_monitor: bool = False
    #: Periodic invocation interval in seconds (``None`` disables ticking).
    sampling_interval_s: Optional[float] = None
    #: Modelled CPU time consumed by one governor invocation, in seconds.
    #: The paper measures the proposed approach at ~0.104 % CPU over the run;
    #: per-invocation values are calibrated in the concrete governors.
    cpu_time_per_invocation_s: float = 50e-6

    def __init__(self) -> None:
        self.invocation_count = 0
        self.cpu_time_s = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def initialise(self, platform: SoCPlatform, time: float, supply_voltage: float) -> None:
        """Called once before the simulation starts (and again after reboot)."""

    def reset_accounting(self) -> None:
        """Clear the invocation/CPU-time counters."""
        self.invocation_count = 0
        self.cpu_time_s = 0.0

    def _account_invocation(self) -> None:
        self.invocation_count += 1
        self.cpu_time_s += self.cpu_time_per_invocation_s

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def on_interrupt(
        self,
        crossing: ThresholdCrossing,
        time: float,
        supply_voltage: float,
        platform: SoCPlatform,
    ) -> Optional[GovernorDecision]:
        """Handle a threshold-crossing interrupt; return a decision or ``None``."""
        return None

    def on_tick(
        self,
        time: float,
        supply_voltage: float,
        utilization: float,
        platform: SoCPlatform,
    ) -> Optional[GovernorDecision]:
        """Handle a periodic sampling tick; return a decision or ``None``."""
        return None

    # ------------------------------------------------------------------
    # Voltage-monitor integration
    # ------------------------------------------------------------------
    def thresholds(self) -> Optional[tuple[float, float]]:
        """Current (V_low, V_high) the monitor should be programmed with.

        Only meaningful for governors with ``uses_voltage_monitor = True``;
        others return ``None``.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
