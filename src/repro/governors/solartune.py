"""SolarTune-style prediction-based scheduling baseline (paper reference [9]).

SolarTune couples a multicore CPU directly to a PV source and adapts the load
to the *predicted* availability of harvested power over the next scheduling
epoch.  The paper argues that prediction-based schemes handle the slow
'macro' variability well but cannot react to the unpredictable 'micro'
variability (sudden shadowing), which is what motivates the instantaneous,
interrupt-driven power-neutral approach.

This baseline re-creates that behaviour:

* every ``epoch_s`` seconds it estimates the power currently being harvested
  (its own consumption plus the buffer charging rate, both of which a real
  implementation can observe),
* it forecasts the next epoch's harvest with an exponentially weighted moving
  average of those estimates,
* it selects the highest operating point whose modelled power stays within
  ``safety_margin`` of the forecast.

Between epochs it does nothing — so a shadow that arrives mid-epoch drains the
small buffer before the next scheduling decision, causing the brown-outs the
proposed approach avoids.
"""

from __future__ import annotations

from typing import Optional

from ..soc.opp import OperatingPoint
from ..soc.platform import SoCPlatform
from .base import Governor, GovernorDecision

__all__ = ["SolarTuneGovernor"]


class SolarTuneGovernor(Governor):
    """Epoch-based, prediction-driven load tuning.

    Parameters
    ----------
    epoch_s:
        Scheduling epoch (decision interval).
    ewma_alpha:
        Weight of the newest harvest estimate in the forecast.
    safety_margin:
        Fraction of the forecast power the selected OPP may use.
    buffer_capacitance_f:
        Capacitance assumed when converting the observed dV/dt into a
        charging power (the scheduler knows its platform's buffer size).
    """

    name = "solartune"
    uses_voltage_monitor = False
    sampling_interval_s = 1.0
    cpu_time_per_invocation_s = 200e-6

    def __init__(
        self,
        epoch_s: float = 10.0,
        ewma_alpha: float = 0.4,
        safety_margin: float = 0.95,
        buffer_capacitance_f: float = 47e-3,
    ):
        super().__init__()
        if epoch_s <= 0:
            raise ValueError("epoch_s must be positive")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must lie in (0, 1]")
        if not 0.0 < safety_margin <= 1.0:
            raise ValueError("safety_margin must lie in (0, 1]")
        if buffer_capacitance_f <= 0:
            raise ValueError("buffer_capacitance_f must be positive")
        self.epoch_s = epoch_s
        self.ewma_alpha = ewma_alpha
        self.safety_margin = safety_margin
        self.buffer_capacitance_f = buffer_capacitance_f
        self.sampling_interval_s = min(1.0, epoch_s)
        self._forecast_w: Optional[float] = None
        self._last_sample: Optional[tuple[float, float]] = None  # (time, voltage)
        self._next_epoch = 0.0
        self._opps_by_power: list[tuple[float, OperatingPoint]] = []

    def initialise(self, platform: SoCPlatform, time: float, supply_voltage: float) -> None:
        self._forecast_w = None
        self._last_sample = (time, supply_voltage)
        self._next_epoch = time
        # Pre-sort the characterised OPP ladder by modelled power.
        self._opps_by_power = sorted(
            ((platform.power_model.power(opp), opp) for opp in platform.opp_table.all_points()),
            key=lambda pair: pair[0],
        )

    # ------------------------------------------------------------------
    # Harvest estimation and forecasting
    # ------------------------------------------------------------------
    def _estimate_harvest(self, time: float, supply_voltage: float, platform: SoCPlatform) -> Optional[float]:
        """Observed harvest = own consumption + buffer charging power."""
        if self._last_sample is None:
            self._last_sample = (time, supply_voltage)
            return None
        t_prev, v_prev = self._last_sample
        self._last_sample = (time, supply_voltage)
        dt = time - t_prev
        if dt <= 0:
            return None
        dvdt = (supply_voltage - v_prev) / dt
        charging_power = self.buffer_capacitance_f * dvdt * supply_voltage
        own_power = platform.power_model.power(platform.current_opp) if platform.running else 0.0
        return max(own_power + charging_power, 0.0)

    def _select_opp(self, budget_w: float) -> OperatingPoint:
        """Highest-power characterised OPP fitting within the budget."""
        chosen = self._opps_by_power[0][1]
        for power, opp in self._opps_by_power:
            if power <= budget_w:
                chosen = opp
            else:
                break
        return chosen

    # ------------------------------------------------------------------
    # Periodic scheduling
    # ------------------------------------------------------------------
    def on_tick(self, time, supply_voltage, utilization, platform: SoCPlatform) -> Optional[GovernorDecision]:
        self._account_invocation()
        estimate = self._estimate_harvest(time, supply_voltage, platform)
        if estimate is not None:
            if self._forecast_w is None:
                self._forecast_w = estimate
            else:
                a = self.ewma_alpha
                self._forecast_w = a * estimate + (1.0 - a) * self._forecast_w

        if time + 1e-9 < self._next_epoch or self._forecast_w is None:
            return None
        self._next_epoch = time + self.epoch_s

        budget = self._forecast_w * self.safety_margin
        target = self._select_opp(budget)
        if target == platform.current_opp and not platform.is_transitioning:
            return None
        return GovernorDecision(target=target, cores_first=True)
