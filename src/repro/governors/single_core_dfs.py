"""Single-core power-neutral DFS baseline (paper reference [11]).

Balsamo et al. demonstrated power-neutral operation on an ultra-low-power
single-core MCU using dynamic *frequency* scaling only.  This governor
re-creates that approach on the MP-SoC platform so the paper's extension
(heterogeneous DVFS + DPM) can be compared against its precursor:

* a single LITTLE core stays online for the whole run (no hot-plugging),
* the same dual dynamic-threshold mechanism tracks the supply voltage,
* every crossing moves the frequency one ladder step (linear DFS response).

Because only one LITTLE core is ever used, the power range this baseline can
modulate over is narrow (roughly 1.75-2.1 W on the calibrated platform), so it
survives as long as the harvest covers that floor but leaves most of the
available energy unused — exactly the gap the proposed approach closes.
"""

from __future__ import annotations

from typing import Optional

from ..core.dvfs_policy import LinearDVFSPolicy
from ..core.thresholds import ThresholdTracker
from ..hw.monitor import ThresholdCrossing
from ..soc.cores import CoreConfig
from ..soc.opp import OperatingPoint
from ..soc.platform import SoCPlatform
from .base import Governor, GovernorDecision

__all__ = ["SingleCoreDFSGovernor"]


class SingleCoreDFSGovernor(Governor):
    """Power-neutral dynamic frequency scaling on a single LITTLE core.

    Parameters
    ----------
    v_width:
        Threshold separation (defaults to the paper's tuned value).
    v_q:
        Threshold tracking quantum.
    """

    name = "single-core-dfs"
    uses_voltage_monitor = True
    sampling_interval_s = None
    cpu_time_per_invocation_s = 40e-6

    def __init__(self, v_width: float = 0.144, v_q: float = 0.0479):
        super().__init__()
        if v_width <= 0 or v_q <= 0:
            raise ValueError("v_width and v_q must be positive")
        self.v_width = v_width
        self.v_q = v_q
        self._tracker: Optional[ThresholdTracker] = None
        self._dvfs: Optional[LinearDVFSPolicy] = None
        self._config = CoreConfig(1, 0)

    def initialise(self, platform: SoCPlatform, time: float, supply_voltage: float) -> None:
        self._tracker = ThresholdTracker(
            v_width=self.v_width,
            v_q=self.v_q,
            v_floor=platform.spec.minimum_voltage,
            v_ceiling=platform.spec.maximum_voltage,
        )
        self._tracker.calibrate(supply_voltage)
        self._dvfs = LinearDVFSPolicy(platform.frequency_ladder)

    def thresholds(self) -> Optional[tuple[float, float]]:
        if self._tracker is None:
            return None
        return self._tracker.as_tuple()

    def on_interrupt(
        self,
        crossing: ThresholdCrossing,
        time: float,
        supply_voltage: float,
        platform: SoCPlatform,
    ) -> Optional[GovernorDecision]:
        if self._tracker is None or self._dvfs is None:
            raise RuntimeError("governor has not been initialised")
        self._account_invocation()

        current = platform.current_opp
        new_frequency = self._dvfs.respond(crossing, current.frequency_hz)

        if crossing is ThresholdCrossing.LOW:
            self._tracker.on_low_crossing()
        else:
            self._tracker.on_high_crossing()

        target = OperatingPoint(self._config, new_frequency)
        if target == current and not platform.is_transitioning:
            return None
        return GovernorDecision(target=target, cores_first=True)
