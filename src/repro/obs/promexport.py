"""Prometheus text exposition (version 0.0.4) over a metrics registry.

:func:`render_prometheus` turns a :class:`~repro.obs.metrics.MetricsRegistry`
(or its :meth:`to_dict` document, so a ``<store>.metrics.json`` sidecar read
back from disk renders identically) into the plain-text format every
Prometheus-compatible scraper ingests:

* counters  -> ``# TYPE name counter`` single samples;
* gauges    -> ``# TYPE name gauge`` single samples;
* timers    -> ``# TYPE name summary``: ``name_count`` / ``name_sum``
  (min/max ride along as ``name_min`` / ``name_max`` gauges);
* histograms -> ``# TYPE name histogram``: **cumulative** ``name_bucket``
  samples with ``le`` upper-edge labels ending in ``le="+Inf"``, plus
  ``name_sum`` / ``name_count`` — the exact shape PromQL's
  ``histogram_quantile()`` expects.

Series names are sanitised to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``): dots and other junk become underscores, so
the repo's internal ``store.idx_hit`` counter exports as ``store_idx_hit``.
Labelled series produced via :func:`~repro.obs.metrics.series_key` —
``http_request_duration_seconds{route="/campaigns",status="200"}`` — keep
their labels, with the histogram ``le`` label appended after them.

Nothing here talks HTTP: the campaign service's ``GET
/metrics?format=prometheus`` calls :func:`render_prometheus` and writes the
string; ``python -c`` one-liners can render a sidecar file the same way.
"""

from __future__ import annotations

import math
import re
from typing import Mapping, Union

from .metrics import MetricsRegistry, split_series_key
from .timeseries import Histogram

__all__ = ["render_prometheus", "sanitise_metric_name", "PROMETHEUS_CONTENT_TYPE"]

#: The Content-Type a scrape endpoint must declare for this format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_JUNK = re.compile(r"[^a-zA-Z0-9_:]")
_NAME_BAD_START = re.compile(r"^[^a-zA-Z_:]")


def sanitise_metric_name(name: str) -> str:
    """A valid Prometheus metric name: junk to ``_``, numeric start prefixed."""
    cleaned = _NAME_JUNK.sub("_", name)
    if _NAME_BAD_START.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: Mapping) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        '{}="{}"'.format(
            sanitise_metric_name(str(key)),
            str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n"),
        )
        for key, value in sorted(labels.items())
    )
    return "{" + rendered + "}"


def _sample(name: str, labels: Mapping, value: float) -> str:
    return f"{name}{_labels_text(labels)} {_format_value(value)}"


def render_prometheus(metrics: "Union[MetricsRegistry, Mapping]") -> str:
    """The registry (or its ``to_dict`` document) as exposition text."""
    doc = metrics.to_dict() if isinstance(metrics, MetricsRegistry) else dict(metrics)
    lines: list = []
    typed: set = set()

    def declare(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key, value in sorted((doc.get("counters") or {}).items()):
        raw_name, labels = split_series_key(key)
        name = sanitise_metric_name(raw_name)
        declare(name, "counter")
        lines.append(_sample(name, labels, float(value)))

    for key, value in sorted((doc.get("gauges") or {}).items()):
        raw_name, labels = split_series_key(key)
        name = sanitise_metric_name(raw_name)
        declare(name, "gauge")
        lines.append(_sample(name, labels, float(value)))

    for key, timer in sorted((doc.get("timers") or {}).items()):
        raw_name, labels = split_series_key(key)
        name = sanitise_metric_name(raw_name)
        declare(name, "summary")
        lines.append(_sample(name + "_count", labels, float(timer.get("count", 0))))
        lines.append(_sample(name + "_sum", labels, float(timer.get("total_s", 0.0))))
        for suffix, field in (("_min", "min_s"), ("_max", "max_s")):
            value = timer.get(field)
            if value is not None and math.isfinite(float(value)):
                declare(name + suffix, "gauge")
                lines.append(_sample(name + suffix, labels, float(value)))

    for key, data in sorted((doc.get("histograms") or {}).items()):
        raw_name, labels = split_series_key(key)
        name = sanitise_metric_name(raw_name)
        histogram = data if isinstance(data, Histogram) else Histogram.from_dict(data)
        declare(name, "histogram")
        for edge, cumulative in histogram.cumulative_buckets():
            bucket_labels = dict(labels)
            bucket_labels["le"] = _format_value(float(edge))
            lines.append(_sample(name + "_bucket", bucket_labels, float(cumulative)))
        lines.append(_sample(name + "_sum", labels, histogram.sum))
        lines.append(_sample(name + "_count", labels, float(histogram.count)))

    return "\n".join(lines) + ("\n" if lines else "")
