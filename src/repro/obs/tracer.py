"""Span tracing: append-only JSONL trace events from every execution layer.

A :class:`Tracer` writes one JSON object per line to a *trace file*.  Every
event carries the same envelope::

    {"t": <unix seconds>, "kind": "span" | "event" | "counter" | "gauge",
     "name": <event name>, "pid": <os pid>, "worker": <worker label>,
     "campaign": <campaign hash, when known>,
     "dur_s": <span duration>, "value": <counter/gauge value>,
     "attrs": {<free-form details>}}

``t`` is wall-clock (``time.time()``) so trace files written by *different
processes* — the coordinator, each shard worker — merge into one timeline by
sorting on it (see :func:`repro.obs.report.load_events`); durations are
measured with the monotonic ``perf_counter`` so they never go negative under
clock adjustment.

Trace files live in a *trace directory*, one file per writing process
(``trace-<worker>-<pid>.jsonl``), exactly like shard result stores: no
locking, no cross-process file sharing, merge on read.

Disabled tracing is a **true no-op**: :class:`NullTracer` (the module
singleton :data:`NULL_TRACER`) implements the same surface with empty
callables and a reusable null span, so instrumented code pays a method call
and nothing else — no file is ever opened, no event dict is ever built.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Optional

__all__ = ["Tracer", "NullTracer", "NULL_TRACER", "trace_file_name"]


def trace_file_name(worker: str, pid: Optional[int] = None) -> str:
    """The per-process trace file name inside a trace directory."""
    return f"trace-{worker}-{pid if pid is not None else os.getpid()}.jsonl"


class _Span:
    """An open span: times its ``with`` block, emits one event on exit."""

    __slots__ = ("_tracer", "name", "attrs", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> "_Span":
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        self._tracer.span_event(self.name, time.perf_counter() - self._t0, **self.attrs)


class _NullSpan:
    """The reusable span of a disabled tracer: enters, exits, records nothing."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Appends telemetry events to one JSONL trace file.

    The file is opened lazily on the first event (a tracer that never fires
    leaves no file behind) and every event is flushed immediately so a
    concurrently running ``obs tail`` sees it live.  Emission must never
    take a campaign down: write errors disable the tracer instead of
    propagating.
    """

    enabled = True

    def __init__(self, path: "str | os.PathLike", worker: str = "main",
                 campaign: Optional[str] = None):
        self.path = Path(path)
        self.worker = str(worker)
        self.campaign = campaign
        self.pid = os.getpid()
        self._fh = None

    # ------------------------------------------------------------------
    def _emit(self, kind: str, name: str, **fields) -> None:
        event = {
            "t": time.time(),
            "kind": kind,
            "name": name,
            "pid": self.pid,
            "worker": self.worker,
        }
        if self.campaign is not None:
            event["campaign"] = self.campaign
        event.update(fields)
        try:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = self.path.open("a", encoding="utf-8")
            self._fh.write(json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n")
            self._fh.flush()
        except OSError:
            # Telemetry is advisory; a full disk must not kill the campaign.
            self.enabled = False
            self._fh = None

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> _Span:
        """A context manager timing its block into one ``span`` event."""
        return _Span(self, name, attrs)

    def span_event(self, name: str, dur_s: float, **attrs) -> None:
        """Emit a span whose duration was measured by the caller."""
        self._emit("span", name, dur_s=round(float(dur_s), 6), attrs=attrs)

    def event(self, name: str, **attrs) -> None:
        """A point event (worker lifecycle, heartbeat, ...)."""
        self._emit("event", name, attrs=attrs)

    def counter(self, name: str, value: float = 1, **attrs) -> None:
        """A monotonic increment (cache hit, timeout, probe, ...)."""
        self._emit("counter", name, value=value, attrs=attrs)

    def gauge(self, name: str, value: float, **attrs) -> None:
        """A sampled level (bracket width, open cells, queue depth, ...)."""
        self._emit("gauge", name, value=value, attrs=attrs)

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None


class NullTracer:
    """The disabled tracer: same surface, empty callables, no file, ever."""

    enabled = False
    path = None
    worker = "disabled"
    campaign = None

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def span_event(self, name: str, dur_s: float, **attrs) -> None:
        return None

    def event(self, name: str, **attrs) -> None:
        return None

    def counter(self, name: str, value: float = 1, **attrs) -> None:
        return None

    def gauge(self, name: str, value: float, **attrs) -> None:
        return None

    def close(self) -> None:
        return None


#: The shared disabled tracer — what un-instrumented call sites default to.
NULL_TRACER = NullTracer()
