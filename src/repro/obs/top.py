"""``repro obs top`` — a live terminal view over a trace directory.

Where ``obs tail`` prints every event and ``obs report`` aggregates a
finished run, ``obs top`` is the in-between: a refreshing snapshot of a
*running* system — a traced ``repro serve`` instance or a long campaign —
built on the same :class:`~repro.obs.report.TracePoller` the service's SSE
endpoint uses.  Each refresh folds the newly appended events into bounded
:class:`~repro.obs.timeseries.RollingWindow` state and renders:

* throughput: events/s and executed scenarios/s over the window;
* request latency: live p50/p95 per busiest routes (``http.request`` spans);
* in-flight requests (the ``http.requests_in_flight`` gauge);
* resource curves: RSS, CPU %, fds, threads from the resource sampler;
* campaign counters (cache hits, executed, probes) accumulated since start.

The view is pure fold-and-render — :meth:`TopView.tick` returns the frame
as a string — so tests drive it with synthetic events and the CLI's
``--once`` flag prints a single frame without entering the refresh loop.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from .report import TracePoller
from .timeseries import RollingWindow

__all__ = ["TopView", "run_top"]

#: Clear screen + home — the whole "UI framework".
_CLEAR = "\x1b[2J\x1b[H"


def _fmt_bytes(value: Optional[float]) -> str:
    if value is None:
        return "-"
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}"
        value /= 1024.0
    return "-"


def _fmt(value: Optional[float], fmt: str = "{:.3f}") -> str:
    return "-" if value is None else fmt.format(value)


class TopView:
    """Folds trace events into rolling state and renders one frame."""

    def __init__(self, source, window_s: float = 30.0, max_routes: int = 6):
        self.source = source
        self.window_s = float(window_s)
        self.max_routes = int(max_routes)
        self._poller = TracePoller(source)
        self._events = RollingWindow(window_s=window_s, max_samples=16384)
        self._scenarios = RollingWindow(window_s=window_s, max_samples=16384)
        self._scenario_durs = RollingWindow(window_s=window_s, max_samples=4096)
        self._routes: dict[str, RollingWindow] = {}
        self._gauges: dict[str, float] = {}
        self._counters: dict[str, float] = {}
        self._alerts: dict[str, dict] = {}
        self._started = time.time()
        self._last_event_t: Optional[float] = None

    # ------------------------------------------------------------------
    def update(self, events: Sequence[dict]) -> None:
        """Fold freshly polled events into the rolling state."""
        for event in events:
            t = float(event.get("t", 0.0))
            self._last_event_t = t
            kind = event.get("kind")
            name = str(event.get("name", ""))
            self._events.observe(1.0, t=t)
            if kind == "span":
                dur = float(event.get("dur_s", 0.0))
                attrs = event.get("attrs", {})
                if name == "http.request":
                    route = str(attrs.get("route", "?"))
                    window = self._routes.get(route)
                    if window is None:
                        window = self._routes[route] = RollingWindow(
                            window_s=self.window_s, max_samples=4096
                        )
                    window.observe(dur, t=t)
                elif name == "scenario":
                    self._scenarios.observe(1.0, t=t)
                    if not attrs.get("cached"):
                        self._scenario_durs.observe(dur, t=t)
            elif kind == "event" and name in ("alert.fired", "alert.resolved"):
                attrs = event.get("attrs") or {}
                alert = str(attrs.get("alert", "?"))
                if name == "alert.fired":
                    self._alerts[alert] = dict(attrs)
                else:
                    self._alerts.pop(alert, None)
            elif kind == "gauge":
                self._gauges[name] = float(event.get("value", 0.0))
            elif kind == "counter":
                self._counters[name] = self._counters.get(name, 0.0) + float(
                    event.get("value", 1)
                )

    def tick(self) -> str:
        """Poll the trace, fold, and return the rendered frame."""
        self.update(self._poller.poll())
        return self.render()

    # ------------------------------------------------------------------
    def render(self, now: Optional[float] = None) -> str:
        now = time.time() if now is None else float(now)
        lines = [
            f"repro obs top — {self.source}   "
            f"(window {self.window_s:.0f}s, up {now - self._started:.0f}s)",
            "",
        ]
        age = None if self._last_event_t is None else max(0.0, now - self._last_event_t)
        lines.append(
            f"  events/s    : {self._events.rate(now):8.2f}    "
            f"last event: {_fmt(age, '{:.1f}s ago')}"
        )
        lines.append(
            f"  scenarios/s : {self._scenarios.rate(now):8.2f}    "
            f"exec p95: {_fmt(self._scenario_durs.quantile(0.95, now), '{:.3f}s')}"
        )
        in_flight = self._gauges.get("http.requests_in_flight")
        if in_flight is not None:
            lines.append(f"  in-flight   : {in_flight:8.0f}")

        if self._routes:
            lines.append("")
            lines.append("  route                            req/s     p50       p95")
            busiest = sorted(
                self._routes.items(), key=lambda kv: -kv[1].rate(now)
            )[: self.max_routes]
            for route, window in busiest:
                lines.append(
                    f"  {route:<30} {window.rate(now):7.2f}  "
                    f"{_fmt(window.quantile(0.50, now), '{:8.4f}')}  "
                    f"{_fmt(window.quantile(0.95, now), '{:8.4f}')}"
                )

        resource_bits = []
        rss = self._gauges.get("process.rss_bytes")
        if rss is not None:
            resource_bits.append(f"rss {_fmt_bytes(rss)}")
        cpu = self._gauges.get("process.cpu_percent")
        if cpu is not None:
            resource_bits.append(f"cpu {cpu:.1f}%")
        fds = self._gauges.get("process.open_fds")
        if fds is not None:
            resource_bits.append(f"fds {fds:.0f}")
        threads = self._gauges.get("process.threads")
        if threads is not None:
            resource_bits.append(f"threads {threads:.0f}")
        if resource_bits:
            lines.append("")
            lines.append("  resources   : " + "   ".join(resource_bits))

        if self._alerts:
            lines.append("")
            bits = []
            for alert, attrs in sorted(self._alerts.items()):
                condition = attrs.get("condition") or ""
                value = attrs.get("value")
                detail = f" ({condition}, now {value:g})" if value is not None else (
                    f" ({condition})" if condition else ""
                )
                bits.append(f"{alert}{detail}")
            lines.append("  ALERTS      : " + "   ".join(bits))

        interesting = {
            name: value
            for name, value in sorted(self._counters.items())
            if not name.startswith("store.")
        }
        if interesting:
            lines.append("")
            lines.append(
                "  counters    : "
                + "   ".join(f"{name}={value:g}" for name, value in interesting.items())
            )
        return "\n".join(lines)


def run_top(
    source,
    interval_s: float = 1.0,
    once: bool = False,
    max_frames: Optional[int] = None,
) -> int:
    """The blocking ``obs top`` loop (Ctrl-C exits; ``once`` prints a frame)."""
    view = TopView(source)
    frames = 0
    try:
        while True:
            frame = view.tick()
            if once or max_frames is not None:
                print(frame)
            else:
                print(_CLEAR + frame, flush=True)
            frames += 1
            if once or (max_frames is not None and frames >= max_frames):
                return 0
            time.sleep(interval_s)
    except KeyboardInterrupt:
        return 0
