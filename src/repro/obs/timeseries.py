"""Fixed-boundary log-bucket histograms and bounded rolling time-windows.

The distribution side of :mod:`repro.obs`: where a
:class:`~repro.obs.metrics.MetricsRegistry` timer keeps count/total/min/max,
a :class:`Histogram` keeps a *shape* — sample counts in fixed, typically
log-spaced buckets — from which quantiles (p50/p95/p99) are estimated by
linear interpolation inside the bucket that crosses the target rank.  Fixed
boundaries are what make histograms **mergeable**: two histograms recorded
by different processes (a coordinator and its shard workers, or two serve
replicas) add bucket-wise into one distribution, exactly the property
Prometheus exposition (:mod:`repro.obs.promexport`) needs for its
cumulative ``_bucket`` series.

:class:`RollingWindow` is the complementary *recent* view: a bounded deque
of ``(t, value)`` samples evicted by age and by count, answering "p95 over
the last 30 s" and "events per second right now" for the live surfaces
(``repro obs top``, the service ``/dashboard``) where a since-process-start
histogram would be too sluggish to watch.

Quantile estimates are clamped into ``[min_observed, max_observed]`` — an
estimated p95 can never exceed the largest sample actually seen, however
coarse the buckets.
"""

from __future__ import annotations

import bisect
import math
import time
from collections import deque
from typing import Iterable, Optional, Sequence

__all__ = [
    "Histogram",
    "RollingWindow",
    "log_bucket_boundaries",
    "exact_quantile",
    "DEFAULT_LATENCY_BOUNDARIES",
    "DEFAULT_QUANTILES",
]

#: The quantiles every serialised histogram reports.
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


def log_bucket_boundaries(
    lo: float = 1e-4, hi: float = 60.0, per_decade: int = 3
) -> tuple:
    """Geometric bucket boundaries from ``lo`` to at least ``hi``.

    ``per_decade`` boundaries per power of ten, e.g. the default produces
    0.0001, 0.000215, 0.000464, 0.001, ... — even coverage in log space, so
    one set of buckets resolves sub-millisecond cache hits and minute-long
    simulations alike.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi (got lo={lo!r}, hi={hi!r})")
    if per_decade < 1:
        raise ValueError("per_decade must be at least 1")
    boundaries = []
    exponent = 0
    while True:
        value = lo * 10.0 ** (exponent / per_decade)
        boundaries.append(float(f"{value:.6g}"))  # trim float dust: 0.00046415888…
        if value >= hi:
            return tuple(boundaries)
        exponent += 1


#: Request/scenario latency buckets: 0.1 ms .. 60 s, 3 per decade.
DEFAULT_LATENCY_BOUNDARIES = log_bucket_boundaries(1e-4, 60.0, 3)


def exact_quantile(values: Sequence[float], q: float) -> Optional[float]:
    """The q-quantile of raw samples (linear interpolation, None when empty)."""
    if not values:
        return None
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1] (got {q!r})")
    ordered = sorted(values)
    position = q * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


class Histogram:
    """A fixed-boundary bucket histogram with count/sum/min/max.

    ``boundaries`` are the *upper* edges of the finite buckets; one implicit
    overflow bucket catches everything above the last edge.  Observation is
    O(log buckets) (``bisect``), merging is element-wise addition, and the
    whole state round-trips through :meth:`to_dict`/:meth:`from_dict` so
    histograms serialise into the ``<store>.metrics.json`` sidecar next to
    counters and timers.
    """

    __slots__ = ("boundaries", "counts", "count", "sum", "min", "max")

    def __init__(self, boundaries: Optional[Iterable[float]] = None):
        bounds = tuple(
            float(b) for b in (boundaries if boundaries is not None else DEFAULT_LATENCY_BOUNDARIES)
        )
        if not bounds:
            raise ValueError("a histogram needs at least one bucket boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"boundaries must be strictly increasing: {bounds}")
        self.boundaries = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: the overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram (same boundaries) into this one."""
        if other.boundaries != self.boundaries:
            raise ValueError(
                "cannot merge histograms with different boundaries "
                f"({len(self.boundaries)} vs {len(other.boundaries)} buckets)"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> Optional[float]:
        """Estimated q-quantile: interpolated inside the crossing bucket.

        The estimate is clamped to ``[min, max]`` of the *observed* samples,
        so coarse buckets can blur a quantile but never push it past the
        largest value actually recorded.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1] (got {q!r})")
        if self.count == 0:
            return None
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count > 0:
                lower = self.boundaries[i - 1] if i > 0 else min(self.min, self.boundaries[0])
                upper = self.boundaries[i] if i < len(self.boundaries) else self.max
                fraction = (rank - (cumulative - bucket_count)) / bucket_count
                estimate = lower + (upper - lower) * max(0.0, min(1.0, fraction))
                return min(max(estimate, self.min), self.max)
        return self.max

    def quantiles(self, qs: Sequence[float] = DEFAULT_QUANTILES) -> dict:
        return {f"p{int(q * 100)}": self.quantile(q) for q in qs}

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def cumulative_buckets(self) -> list:
        """``(upper_edge, cumulative_count)`` pairs, Prometheus-style.

        The final pair is ``(math.inf, count)`` — the ``le="+Inf"`` bucket.
        """
        pairs = []
        cumulative = 0
        for edge, bucket_count in zip(self.boundaries, self.counts):
            cumulative += bucket_count
            pairs.append((edge, cumulative))
        pairs.append((math.inf, self.count))
        return pairs

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        empty = self.count == 0
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "count": self.count,
            "sum": round(self.sum, 9),
            # min/max share the quantiles' rounding so the serialised
            # document keeps the clamp invariant (p95 <= max) exactly
            "min": None if empty else round(self.min, 9),
            "max": None if empty else round(self.max, 9),
            "mean": None if empty else round(self.sum / self.count, 9),
            "quantiles": {
                name: (None if value is None else round(value, 9))
                for name, value in self.quantiles().items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        histogram = cls(boundaries=data["boundaries"])
        counts = [int(c) for c in data["counts"]]
        if len(counts) != len(histogram.counts):
            raise ValueError(
                f"counts length {len(counts)} does not match "
                f"{len(histogram.boundaries)} boundaries"
            )
        histogram.counts = counts
        histogram.count = int(data["count"])
        histogram.sum = float(data["sum"])
        histogram.min = math.inf if data.get("min") is None else float(data["min"])
        histogram.max = -math.inf if data.get("max") is None else float(data["max"])
        return histogram


class NullHistogram:
    """The disabled histogram: observes nothing, reports nothing."""

    __slots__ = ()
    boundaries: tuple = ()
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        return None

    def merge(self, other) -> "NullHistogram":
        return self

    def quantile(self, q: float) -> None:
        return None

    def quantiles(self, qs: Sequence[float] = DEFAULT_QUANTILES) -> dict:
        return {}

    def to_dict(self) -> dict:
        return {}


#: The shared disabled histogram handed out by a disabled registry.
NULL_HISTOGRAM = NullHistogram()


class RollingWindow:
    """A bounded window of recent ``(t, value)`` samples.

    Samples older than ``window_s`` are evicted on read and write; the deque
    is additionally capped at ``max_samples`` so a hot loop cannot grow it
    without bound.  Quantiles over the window are exact (computed from the
    retained samples), which is what a live view wants — the long-run shape
    belongs to :class:`Histogram`.
    """

    __slots__ = ("window_s", "max_samples", "_samples")

    def __init__(self, window_s: float = 60.0, max_samples: int = 4096):
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if max_samples < 1:
            raise ValueError("max_samples must be at least 1")
        self.window_s = float(window_s)
        self.max_samples = int(max_samples)
        self._samples: deque = deque()

    def observe(self, value: float, t: Optional[float] = None) -> None:
        now = time.time() if t is None else float(t)
        self._samples.append((now, float(value)))
        if len(self._samples) > self.max_samples:
            self._samples.popleft()
        self._evict(now)

    def _evict(self, now: float) -> None:
        horizon = now - self.window_s
        samples = self._samples
        while samples and samples[0][0] < horizon:
            samples.popleft()

    # ------------------------------------------------------------------
    def values(self, now: Optional[float] = None) -> list:
        self._evict(time.time() if now is None else float(now))
        return [value for _, value in self._samples]

    def __len__(self) -> int:
        return len(self._samples)

    def quantile(self, q: float, now: Optional[float] = None) -> Optional[float]:
        return exact_quantile(self.values(now), q)

    def mean(self, now: Optional[float] = None) -> Optional[float]:
        values = self.values(now)
        return sum(values) / len(values) if values else None

    def last(self) -> Optional[float]:
        return self._samples[-1][1] if self._samples else None

    def rate(self, now: Optional[float] = None) -> float:
        """Samples per second over the (occupied part of the) window."""
        now = time.time() if now is None else float(now)
        self._evict(now)
        if not self._samples:
            return 0.0
        elapsed = max(now - self._samples[0][0], 1e-9)
        return len(self._samples) / elapsed
