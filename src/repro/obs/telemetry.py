"""The telemetry bundle threaded through the execution layers.

:class:`Telemetry` pairs one :class:`~repro.obs.tracer.Tracer` (streamed
events) with one :class:`~repro.obs.metrics.MetricsRegistry` (end-of-run
roll-up) and remembers the trace directory, so a coordinator can hand child
worker processes the *directory* and each child builds its own per-process
tracer file (:func:`~repro.obs.tracer.trace_file_name`) — trace files are
never shared across processes, exactly like shard result stores.

The module singleton :data:`DISABLED` is what every instrumented constructor
defaults to (``telemetry or DISABLED``): a bundle of the null tracer and
null registry whose methods are all empty callables, so code instrumented
against it is indistinguishable — in behaviour *and* in filesystem output —
from un-instrumented code.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

from .metrics import NULL_METRICS, MetricsRegistry, NullMetrics, metrics_sidecar_path
from .tracer import NULL_TRACER, NullTracer, Tracer, trace_file_name

__all__ = ["Telemetry", "DISABLED", "metrics_file_name"]


def metrics_file_name(worker: str = "main", pid: Optional[int] = None) -> str:
    """The per-process metrics mirror a worker writes into the trace dir.

    Mirrors :func:`~repro.obs.tracer.trace_file_name`: one
    ``metrics-<worker>-<pid>.json`` per writing process, so a sharded
    campaign's trace directory collects every worker's histogram roll-up
    next to its trace file — the input ``obs report`` and
    :func:`~repro.obs.history.summarize_run` merge bucket-wise.
    """
    return f"metrics-{worker}-{os.getpid() if pid is None else pid}.json"


class Telemetry:
    """One process's telemetry: a tracer, a metrics registry, the trace dir."""

    def __init__(
        self,
        tracer: "Tracer | NullTracer",
        metrics: "MetricsRegistry | NullMetrics",
        trace_dir: Optional[Path] = None,
    ):
        self.tracer = tracer
        self.metrics = metrics
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None

    @property
    def enabled(self) -> bool:
        return bool(self.tracer.enabled or self.metrics.enabled)

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        trace_dir: "str | os.PathLike",
        worker: str = "main",
        campaign: Optional[str] = None,
    ) -> "Telemetry":
        """Enabled telemetry writing ``trace-<worker>-<pid>.jsonl`` in a dir."""
        trace_dir = Path(trace_dir)
        tracer = Tracer(trace_dir / trace_file_name(worker), worker=worker, campaign=campaign)
        return cls(tracer, MetricsRegistry(), trace_dir=trace_dir)

    # ------------------------------------------------------------------
    def write_metrics(self, store_path: "str | os.PathLike") -> Optional[Path]:
        """Write the ``metrics.json`` sidecar next to a result store.

        Returns the sidecar path, or ``None`` when metrics are disabled
        (a disabled bundle must leave no file behind).  When the bundle has
        a trace directory, the same roll-up is additionally mirrored there
        as ``metrics-<worker>-<pid>.json`` — shard workers write their
        sidecar next to their *shard* store, so without the mirror a trace
        directory only ever sees one process's histograms.
        """
        if not self.metrics.enabled:
            return None
        sidecar = self.metrics.write(metrics_sidecar_path(store_path))
        if self.trace_dir is not None:
            worker = getattr(self.tracer, "worker", "main")
            try:
                self.metrics.write(self.trace_dir / metrics_file_name(worker))
            except OSError:
                pass  # the mirror is advisory; the store sidecar is canonical
        return sidecar

    def close(self) -> None:
        self.tracer.close()


#: The shared disabled bundle — the default of every instrumented layer.
DISABLED = Telemetry(NULL_TRACER, NULL_METRICS)
