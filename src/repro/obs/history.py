"""Cross-run performance history: the append-only run ledger.

Every traced run is an island until something writes down what it looked
like.  This module is that something:

* :func:`summarize_run` distils one finished trace directory into a compact
  :class:`RunSummary` — phase timings, throughput, cache-hit ratio, scenario
  latency quantiles merged bucket-wise across **every** worker's metrics
  sidecar (:func:`repro.obs.report.merged_sidecar_histograms`), per-route
  request quantiles, resource peaks, fault/retry counters, and provenance
  (``repro_version``, git revision, machine) — the longitudinal record a
  regression check needs, three orders of magnitude smaller than the trace;
* :class:`RunLedger` appends those summaries to a JSONL ledger file with the
  same atomic tmp+``os.replace`` discipline as the metrics sidecars, so a
  writer dying mid-append can never tear the history;
* ``repro obs diff`` (:mod:`repro.obs.diff`) compares two summaries — or a
  fresh run against the ledger's last entry — and turns "did this change
  make things slower?" into an exit code.

The ledger lives next to the result store (``<store>.ledger.jsonl``) by
default: runs against the same store line up into one performance history
however many trace directories they scattered.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional

from .report import build_report, load_events, merged_sidecar_histograms
from .timeseries import Histogram

__all__ = [
    "LEDGER_SCHEMA",
    "RunSummary",
    "RunLedger",
    "ledger_path",
    "summarize_run",
    "run_provenance",
    "git_revision",
]

#: Bumped when RunSummary gains/renames fields; readers tolerate unknowns.
LEDGER_SCHEMA = 1

#: The histogram series every execution layer records scenario wall time into.
SCENARIO_HISTOGRAM = "scenario_duration_seconds"


def ledger_path(store_path: "str | os.PathLike") -> Path:
    """Where the run ledger lives, relative to a result store."""
    return Path(str(store_path) + ".ledger.jsonl")


def git_revision() -> Optional[str]:
    """The short git revision of the source tree, or None outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


_PROVENANCE: Optional[dict] = None


def run_provenance() -> dict:
    """Who/what produced a measurement: version, git rev, interpreter, machine.

    Computed once per process (the git subprocess is not free) and returned
    as a fresh copy each call so callers may annotate without cross-talk.
    """
    global _PROVENANCE
    if _PROVENANCE is None:
        from .. import __version__

        doc = {
            "repro_version": __version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
        }
        rev = git_revision()
        if rev is not None:
            doc["git_rev"] = rev
        _PROVENANCE = doc
    return dict(_PROVENANCE)


@dataclass
class RunSummary:
    """One run's compact performance record — a single ledger line.

    ``scenario_latency`` carries the quantiles of the merged
    ``scenario_duration_seconds`` histograms from *all* worker sidecars
    (coordinator, shard workers, recovery workers), with the contributing
    worker labels; ``routes`` the per-route request quantiles; ``counters``
    the fault/retry/respawn totals a regression gate cares about.  ``meta``
    is free-form (benchmark figures, provenance extras).
    """

    kind: str = "sweep"  # sweep | shard | boundary | serve | bench
    t: float = 0.0
    campaign: Optional[str] = None
    engine: Optional[str] = None
    repro_version: str = ""
    trace_dir: Optional[str] = None
    wall_s: Optional[float] = None
    scenarios: int = 0
    executed: int = 0
    cached: int = 0
    cache_hit_ratio: Optional[float] = None
    throughput_sps: Optional[float] = None
    phases: dict = field(default_factory=dict)
    scenario_latency: dict = field(default_factory=dict)
    routes: dict = field(default_factory=dict)
    resource: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)
    schema: int = LEDGER_SCHEMA

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunSummary":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C401 — set of names
        return cls(**{k: v for k, v in dict(data).items() if k in known})

    def label(self) -> str:
        """A short human identity for diff headers and ledger listings."""
        stamp = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(self.t))
        campaign = (self.campaign or "?")[:12]
        return f"{self.kind} {campaign} @ {stamp}"


class RunLedger:
    """Append-only JSONL history of :class:`RunSummary` lines.

    Appends are read-modify-write through a per-process temp file renamed
    into place (``os.replace``), exactly like the metrics sidecars: however
    the writer dies, a reader only ever sees a sequence of complete lines.
    Unparseable lines (a torn legacy append, hand-editing damage) are
    skipped on read rather than poisoning the whole history.
    """

    def __init__(self, path: "str | os.PathLike"):
        self.path = Path(path)

    def append(self, summary: RunSummary) -> RunSummary:
        line = json.dumps(summary.to_dict(), sort_keys=True, separators=(",", ":"))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            existing = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            existing = ""
        if existing and not existing.endswith("\n"):
            existing += "\n"  # heal a torn tail so the new line stays parseable
        tmp = self.path.with_name(f"{self.path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(existing + line + "\n", encoding="utf-8")
            os.replace(tmp, self.path)
        finally:
            tmp.unlink(missing_ok=True)
        return summary

    def entries(self) -> list:
        entries: list = []
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return entries
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(data, dict):
                try:
                    entries.append(RunSummary.from_dict(data))
                except TypeError:
                    continue
        return entries

    def last(self) -> Optional[RunSummary]:
        entries = self.entries()
        return entries[-1] if entries else None

    def __len__(self) -> int:
        return len(self.entries())


# ----------------------------------------------------------------------
# Summarisation
# ----------------------------------------------------------------------
def _merged_series(merged: dict, name: str) -> Optional[Histogram]:
    """All sidecar series of one histogram name (any labels) folded into one."""
    from .metrics import split_series_key

    combined: Optional[Histogram] = None
    for key, histogram in merged.items():
        series_name, _labels = split_series_key(key)
        if series_name != name:
            continue
        if combined is None:
            combined = Histogram(boundaries=histogram.boundaries)
        try:
            combined.merge(histogram)
        except ValueError:
            continue  # divergent boundaries: keep the dominant series
    return combined


def summarize_run(
    trace_dir: "str | os.PathLike",
    kind: str = "sweep",
    campaign: Optional[str] = None,
    engine: Optional[str] = None,
    meta: Optional[dict] = None,
) -> RunSummary:
    """Distil one finished trace directory into a :class:`RunSummary`.

    Shared by the campaign CLI's end-of-run ledger append, ``obs diff``'s
    on-the-fly trace comparison, and the service scheduler — one definition
    of "what this run looked like" everywhere.  Raises
    :class:`FileNotFoundError` when the trace dir is missing or holds no
    trace files (callers map that to exit code 2).
    """
    events = load_events(trace_dir)  # FileNotFoundError on missing/empty dir
    report = build_report(events, source=trace_dir)
    provenance = run_provenance()

    if campaign is None:
        stamps = [e.get("campaign") for e in events if e.get("campaign")]
        if stamps:
            campaign = max(set(stamps), key=stamps.count)

    phases = {
        name: entry.get("total_s")
        for name, entry in (report.get("phases") or {}).items()
    }
    executed = int(report.get("executed") or 0)
    execute_s = phases.get("execute")
    wall_s = (report.get("span") or {}).get("wall_s")
    basis = execute_s if execute_s else wall_s
    throughput = round(executed / basis, 4) if executed and basis else None

    scenario_latency = dict((report.get("latency") or {}).get("scenario") or {})
    if scenario_latency:
        latency_doc = report.get("latency") or {}
        scenario_latency["workers"] = list(latency_doc.get("workers") or [])
    else:
        merged, workers, _files = merged_sidecar_histograms(trace_dir)
        histogram = _merged_series(merged, SCENARIO_HISTOGRAM)
        if histogram is not None and histogram.count:
            doc = histogram.to_dict()
            scenario_latency = {
                "count": doc["count"],
                "mean_s": doc["mean"],
                "max_s": doc["max"],
                **{f"{q}_s": v for q, v in (doc["quantiles"] or {}).items()},
                "workers": workers,
            }

    routes = {
        route: {
            "requests": entry.get("requests"),
            "p50_s": entry.get("p50_s"),
            "p95_s": entry.get("p95_s"),
            "p99_s": entry.get("p99_s"),
            "max_s": entry.get("max_s"),
        }
        for route, entry in (report.get("http") or {}).items()
    }

    resource: dict = {}
    resource_section = report.get("resource") or {}
    rss = resource_section.get("rss_bytes") or {}
    if rss.get("peak") is not None:
        resource["rss_peak_bytes"] = rss["peak"]
    cpu = resource_section.get("cpu_percent") or {}
    if cpu.get("peak") is not None:
        resource["cpu_peak_percent"] = cpu["peak"]

    summary = RunSummary(
        kind=kind,
        t=time.time(),
        campaign=campaign,
        engine=engine,
        repro_version=str(provenance.get("repro_version", "")),
        trace_dir=str(Path(trace_dir)),
        wall_s=wall_s,
        scenarios=int(report.get("scenarios") or 0),
        executed=executed,
        cached=int(report.get("cached") or 0),
        cache_hit_ratio=report.get("cache_hit_ratio"),
        throughput_sps=throughput,
        phases=phases,
        scenario_latency=scenario_latency,
        routes=routes,
        resource=resource,
        counters=dict(report.get("faults") or {}),
        meta={**{k: v for k, v in provenance.items() if k != "repro_version"}, **(meta or {})},
    )
    return summary
