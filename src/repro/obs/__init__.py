"""repro.obs — structured telemetry for campaign execution.

Observability for every execution layer of the campaign engine, built from
three small parts:

* :mod:`repro.obs.tracer`  — :class:`Tracer`: append-only JSONL trace events
  (spans with monotonic durations, counters, gauges, point events), stamped
  with pid / worker label / campaign hash, one file per writing process so
  multi-process campaigns merge traces exactly like they merge result
  stores;
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`: in-memory counters /
  gauges / timers rolled up once per run into a ``<store>.metrics.json``
  sidecar next to the result store;
* :mod:`repro.obs.telemetry` — :class:`Telemetry`: the bundle the execution
  layers (:class:`~repro.sweep.runner.SweepRunner`,
  :class:`~repro.sweep.dist.DistRunner`,
  :class:`~repro.sweep.adaptive.BoundarySearch`,
  :class:`~repro.sweep.store.ResultStore`) thread through.  The
  :data:`DISABLED` singleton they default to is built from no-op callables:
  with telemetry off, instrumented code creates no files and adds nothing
  but a method call to the fast path.

The read side lives in :mod:`repro.obs.report` (`load_events` merges
per-process trace files in timestamp order; `build_report` computes the
per-phase breakdown, cache-hit ratio, slowest-N scenarios and worker
utilisation behind ``python -m repro obs report``; `follow_trace` feeds
``obs tail``), and :mod:`repro.obs.progress` holds the one live-progress
renderer all campaign CLI commands share.

Quick start::

    from repro.obs import Telemetry
    from repro.sweep import ResultStore, SweepRunner

    telemetry = Telemetry.create("trace/", worker="main")
    store = ResultStore("campaign.jsonl", telemetry=telemetry)
    SweepRunner(store, workers=4, telemetry=telemetry).run(spec)
    telemetry.write_metrics(store.path)   # -> campaign.jsonl.metrics.json
    telemetry.close()

then ``python -m repro obs report trace/``.
"""

from .metrics import (
    NULL_METRICS,
    MetricsRegistry,
    NullMetrics,
    metrics_sidecar_path,
    series_key,
    split_series_key,
)
from .alerts import AlertManager, AlertRule, load_alert_rules
from .diff import DiffThresholds, diff_summaries, format_diff
from .history import (
    RunLedger,
    RunSummary,
    git_revision,
    ledger_path,
    run_provenance,
    summarize_run,
)
from .progress import ProgressRenderer, format_scenario_line
from .promexport import PROMETHEUS_CONTENT_TYPE, render_prometheus, sanitise_metric_name
from .report import (
    TracePoller,
    build_report,
    follow_trace,
    format_event,
    format_report,
    load_events,
    merged_sidecar_histograms,
    metric_sidecar_files,
    trace_files,
)
from .resource import ResourceSampler, read_resource_sample
from .telemetry import DISABLED, Telemetry, metrics_file_name
from .timeseries import (
    DEFAULT_LATENCY_BOUNDARIES,
    Histogram,
    RollingWindow,
    exact_quantile,
    log_bucket_boundaries,
)
from .top import TopView, run_top
from .tracer import NULL_TRACER, NullTracer, Tracer, trace_file_name

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "trace_file_name",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "metrics_sidecar_path",
    "series_key",
    "split_series_key",
    "Histogram",
    "RollingWindow",
    "log_bucket_boundaries",
    "exact_quantile",
    "DEFAULT_LATENCY_BOUNDARIES",
    "render_prometheus",
    "sanitise_metric_name",
    "PROMETHEUS_CONTENT_TYPE",
    "ResourceSampler",
    "read_resource_sample",
    "Telemetry",
    "DISABLED",
    "ProgressRenderer",
    "format_scenario_line",
    "trace_files",
    "load_events",
    "build_report",
    "format_report",
    "format_event",
    "follow_trace",
    "TracePoller",
    "metric_sidecar_files",
    "merged_sidecar_histograms",
    "metrics_file_name",
    "TopView",
    "run_top",
    "RunSummary",
    "RunLedger",
    "ledger_path",
    "summarize_run",
    "run_provenance",
    "git_revision",
    "DiffThresholds",
    "diff_summaries",
    "format_diff",
    "AlertRule",
    "AlertManager",
    "load_alert_rules",
]
