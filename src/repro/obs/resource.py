"""Background process-resource sampling: RSS, CPU, fds, threads.

A :class:`ResourceSampler` is a daemon thread that wakes every
``interval_s`` seconds, reads the process's own resource usage and feeds it
into a :class:`~repro.obs.telemetry.Telemetry` bundle:

* tracer gauges (``process.rss_bytes``, ``process.cpu_seconds``,
  ``process.cpu_percent``, ``process.open_fds``, ``process.threads``) — the
  time series ``obs report``'s resource section and ``obs top``'s live
  curves are built from;
* registry gauges under their Prometheus-canonical names
  (``process_resident_memory_bytes``, ``process_cpu_seconds_total``, ...)
  plus distribution histograms (``process_sample_rss_bytes``,
  ``process_sample_cpu_percent``) so the metrics sidecar and the
  ``/metrics?format=prometheus`` exposition carry peak *and* shape;
* an optional **periodic flush** of the whole registry to its sidecar
  (atomic write-beside-rename), so a worker killed mid-campaign leaves the
  last complete snapshot behind instead of a missing or torn
  ``<store>.metrics.json``.

Readings come from ``/proc/self`` where it exists (Linux) and degrade
gracefully elsewhere: ``resource.getrusage`` covers RSS and CPU on other
POSIX platforms, and any source that cannot be read is simply omitted from
the sample.  Sampling a disabled telemetry bundle is a **no-op**:
``start()`` spawns no thread, reads no files, writes nothing — the same
contract every other :mod:`repro.obs` surface honours.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import Callable, Optional

from .telemetry import Telemetry
from .timeseries import log_bucket_boundaries

__all__ = ["ResourceSampler", "read_resource_sample"]

#: RSS distribution buckets: 1 MiB .. ~16 GiB, 3 per decade.
RSS_BOUNDARIES = log_bucket_boundaries(2.0**20, 2.0**34, 3)
#: CPU-utilisation distribution buckets: 0.1% .. overflow above 100%.
CPU_PERCENT_BOUNDARIES = log_bucket_boundaries(0.1, 100.0, 3)

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096
_CLOCK_TICKS = os.sysconf("SC_CLK_TCK") if hasattr(os, "sysconf") else 100


def _proc_self() -> Optional[Path]:
    path = Path("/proc/self")
    return path if path.exists() else None


def read_resource_sample() -> dict:
    """One point-in-time reading of this process's resource usage.

    Keys (any may be absent when the platform cannot answer):
    ``rss_bytes``, ``cpu_seconds`` (user+system, cumulative),
    ``open_fds``, ``threads``.
    """
    sample: dict = {}
    proc = _proc_self()
    if proc is not None:
        try:
            # statm field 1 is resident pages; stat fields 13/14 (0-based
            # after the comm field) are utime/stime in clock ticks.
            sample["rss_bytes"] = int((proc / "statm").read_text().split()[1]) * _PAGE_SIZE
            stat = (proc / "stat").read_text()
            # comm can contain spaces/parens; cut at the *last* ')'.
            fields = stat[stat.rindex(")") + 2 :].split()
            sample["cpu_seconds"] = (int(fields[11]) + int(fields[12])) / _CLOCK_TICKS
        except (OSError, ValueError, IndexError):
            pass
        try:
            sample["open_fds"] = len(os.listdir(proc / "fd"))
        except OSError:
            pass
        try:
            for line in (proc / "status").read_text().splitlines():
                if line.startswith("Threads:"):
                    sample["threads"] = int(line.split()[1])
                    break
        except (OSError, ValueError):
            pass
    if "rss_bytes" not in sample or "cpu_seconds" not in sample:
        try:
            import resource as _resource

            usage = _resource.getrusage(_resource.RUSAGE_SELF)
            # ru_maxrss is KiB on Linux, bytes on macOS; Linux took the
            # /proc path above, so treat the fallback value as bytes-ish.
            sample.setdefault("rss_bytes", int(usage.ru_maxrss) * 1024)
            sample.setdefault("cpu_seconds", usage.ru_utime + usage.ru_stime)
        except (ImportError, ValueError, OSError):
            pass
    sample.setdefault("threads", threading.active_count())
    return sample


class ResourceSampler:
    """Samples this process's resource usage into a telemetry bundle.

    Parameters
    ----------
    telemetry:
        The bundle to feed.  A disabled bundle makes the whole sampler a
        no-op: :meth:`start` spawns nothing.
    interval_s:
        Seconds between samples (also the periodic-flush cadence).
    flush_path:
        When set, the registry is re-written to this sidecar path after
        every sample (atomic), bounding how much metric history a killed
        process can lose.
    on_sample:
        Optional callback receiving each sample dict (tests, dashboards).
    """

    def __init__(
        self,
        telemetry: Telemetry,
        interval_s: float = 2.0,
        flush_path: "str | os.PathLike | None" = None,
        on_sample: Optional[Callable[[dict], None]] = None,
    ):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.telemetry = telemetry
        self.interval_s = float(interval_s)
        self.flush_path = Path(flush_path) if flush_path is not None else None
        self.on_sample = on_sample
        self.samples = 0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._last_cpu: Optional[tuple] = None  # (wall_t, cpu_seconds)
        self._rss_peak = 0

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------
    def start(self) -> "ResourceSampler":
        """Begin sampling; a no-op (no thread at all) when telemetry is off."""
        if not self.telemetry.enabled or self.running:
            return self
        self._stop.clear()
        self.sample_once()  # an immediate first point: short runs still get one
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout_s: float = 5.0) -> None:
        """Stop the thread and take one final sample (+ flush) for the tail."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout_s)
        self._thread = None
        self.sample_once()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.sample_once()
            except Exception:  # noqa: BLE001 — telemetry must never kill the host
                return

    def sample_once(self) -> dict:
        """Take and record one sample (public for tests and manual ticks)."""
        if not self.telemetry.enabled:
            return {}
        sample = read_resource_sample()
        now = time.time()
        tracer = self.telemetry.tracer
        metrics = self.telemetry.metrics

        rss = sample.get("rss_bytes")
        if rss is not None:
            self._rss_peak = max(self._rss_peak, rss)
            tracer.gauge("process.rss_bytes", rss)
            metrics.gauge("process_resident_memory_bytes", rss)
            metrics.gauge("process_resident_memory_peak_bytes", self._rss_peak)
            metrics.histogram(
                "process_sample_rss_bytes", boundaries=RSS_BOUNDARIES
            ).observe(rss)

        cpu = sample.get("cpu_seconds")
        if cpu is not None:
            tracer.gauge("process.cpu_seconds", cpu)
            metrics.gauge("process_cpu_seconds_total", cpu)
            if self._last_cpu is not None:
                wall = now - self._last_cpu[0]
                if wall > 0:
                    percent = max(0.0, (cpu - self._last_cpu[1]) / wall) * 100.0
                    sample["cpu_percent"] = percent
                    tracer.gauge("process.cpu_percent", round(percent, 3))
                    metrics.gauge("process_cpu_percent", round(percent, 3))
                    metrics.histogram(
                        "process_sample_cpu_percent", boundaries=CPU_PERCENT_BOUNDARIES
                    ).observe(percent)
            self._last_cpu = (now, cpu)

        for key, metric in (("open_fds", "process_open_fds"), ("threads", "process_threads")):
            value = sample.get(key)
            if value is not None:
                tracer.gauge(f"process.{key}", value)
                metrics.gauge(metric, value)

        self.samples += 1
        metrics.gauge("process_resource_samples", self.samples)
        if self.flush_path is not None and metrics.enabled:
            try:
                metrics.write(self.flush_path)
            except OSError:
                pass  # a full disk must not kill the sampler (nor the host)
        if self.on_sample is not None:
            self.on_sample(sample)
        return sample
