"""The one progress renderer behind ``sweep``, ``boundary`` and ``shard``.

Before :mod:`repro.obs`, each CLI campaign command carried its own ad-hoc
``print`` closure with subtly different formatting (``sweep`` printed an
elapsed-seconds suffix, ``shard`` did not; ``boundary`` had a third shape).
:class:`ProgressRenderer` is the single implementation: the same line format
and the same ``--quiet`` behaviour everywhere, fed by the same per-completion
telemetry the tracer records — so what the terminal shows during a run and
what ``obs tail`` replays afterwards agree.
"""

from __future__ import annotations

import sys
from typing import Optional, TextIO

__all__ = ["ProgressRenderer", "format_scenario_line"]


def _scenario_label(record: dict) -> str:
    """A human-readable scenario label, falling back to the content hash."""
    config = record.get("config")
    if isinstance(config, dict):
        try:
            # Imported lazily: repro.sweep imports repro.obs, not vice versa.
            from ..sweep.spec import ScenarioConfig

            return ScenarioConfig.from_dict(config).label()
        except (ValueError, TypeError, KeyError):
            pass
    return str(record.get("scenario_id", "?"))[:12]


def format_scenario_line(done: int, total: int, record: dict, cached: bool) -> str:
    """The per-completion progress line (identical across all campaign CLIs)."""
    status = "cached" if cached else record.get("status", "?")
    elapsed = record.get("elapsed_s")
    suffix = f" ({elapsed:.1f}s)" if elapsed is not None and not cached else ""
    return f"  [{done}/{total}] {status:7s} {_scenario_label(record)}{suffix}"


class ProgressRenderer:
    """Shared live-progress rendering for every campaign-shaped command.

    ``scenario`` matches the runner's
    :data:`~repro.sweep.runner.ProgressCallback` signature and ``round``
    the boundary search's :data:`~repro.sweep.adaptive.RoundCallback`, so
    one renderer instance serves both shapes; ``quiet`` silences both
    identically.
    """

    def __init__(self, quiet: bool = False, stream: Optional[TextIO] = None):
        self.quiet = bool(quiet)
        self.stream = stream if stream is not None else sys.stdout

    def scenario(self, done: int, total: int, record: dict, cached: bool) -> None:
        if self.quiet:
            return
        print(format_scenario_line(done, total, record, cached), file=self.stream)

    def round(self, round_index: int, message: str) -> None:
        if self.quiet:
            return
        print(f"  {message}", file=self.stream)
