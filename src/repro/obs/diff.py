"""``repro obs diff``: regression detection between two run summaries.

Given a baseline :class:`~repro.obs.history.RunSummary` A and a candidate B
(each summarised on the fly from a trace directory, or pulled from the run
ledger), :func:`diff_summaries` lines up every comparable metric — phase
wall times, merged scenario-latency quantiles, throughput, cache-hit ratio,
per-route p95s, fault counters — computes the deltas, and applies
:class:`DiffThresholds` to decide which deltas are *regressions*:

* a phase slower by more than ``phase_pct`` (ignoring phases shorter than
  ``min_phase_s`` on the baseline — noise, not signal);
* scenario p95 up by more than ``p95_pct`` (same noise floor via
  ``min_latency_s``);
* throughput down by more than ``throughput_pct``;
* any ``retry.exhausted`` in the candidate (a scenario permanently failed).

Metrics missing on either side are reported but never regress — a warm
cache-hit run has no execute phase and no scenario latency, and diffing it
against a cold run must not fail the build.  The CLI maps ``ok`` to exit
code 0/1 (and 2 for unusable inputs), which is the whole CI contract.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..analysis.reporting import format_kv, format_table
from .history import RunSummary

__all__ = ["DiffThresholds", "diff_summaries", "format_diff"]


@dataclass(frozen=True)
class DiffThresholds:
    """Regression gates, each a relative percentage unless noted."""

    p95_pct: float = 20.0
    throughput_pct: float = 10.0
    phase_pct: float = 50.0
    #: Baseline phases shorter than this never regress (timing noise).
    min_phase_s: float = 0.05
    #: Baseline latencies below this never regress (cache hits, no-ops).
    min_latency_s: float = 0.001
    fail_on_retry_exhausted: bool = True


def _pct_change(a: Optional[float], b: Optional[float]) -> Optional[float]:
    if a is None or b is None or not math.isfinite(a) or a == 0:
        return None
    return (b - a) / abs(a) * 100.0


def _row(
    metric: str,
    a: Optional[float],
    b: Optional[float],
    regression: bool = False,
    note: str = "",
) -> dict:
    pct = _pct_change(a, b)
    return {
        "metric": metric,
        "a": None if a is None else round(float(a), 6),
        "b": None if b is None else round(float(b), 6),
        "delta": None if a is None or b is None else round(float(b) - float(a), 6),
        "delta_pct": None if pct is None else round(pct, 2),
        "regression": bool(regression),
        "note": note,
    }


def diff_summaries(
    a: RunSummary, b: RunSummary, thresholds: Optional[DiffThresholds] = None
) -> dict:
    """Compare candidate ``b`` against baseline ``a``.

    Returns ``{"a": ..., "b": ..., "rows": [...], "regressions": [...],
    "ok": bool}`` where each row carries both values, absolute and relative
    delta, and whether it breached a threshold.
    """
    t = thresholds or DiffThresholds()
    rows: list = []

    # --- overall wall time and cache behaviour (informational) ----------
    rows.append(_row("wall_s", a.wall_s, b.wall_s))
    rows.append(_row("cache_hit_ratio", a.cache_hit_ratio, b.cache_hit_ratio))
    rows.append(_row("executed", float(a.executed), float(b.executed)))

    # --- throughput -----------------------------------------------------
    pct = _pct_change(a.throughput_sps, b.throughput_sps)
    throughput_regressed = pct is not None and pct < -t.throughput_pct
    rows.append(
        _row(
            "throughput_sps",
            a.throughput_sps,
            b.throughput_sps,
            regression=throughput_regressed,
            note=f"fails below -{t.throughput_pct:g}%" if throughput_regressed else "",
        )
    )

    # --- phase wall times ------------------------------------------------
    for phase in sorted(set(a.phases) | set(b.phases)):
        pa, pb = a.phases.get(phase), b.phases.get(phase)
        pct = _pct_change(pa, pb)
        regressed = (
            pa is not None
            and pb is not None
            and pa >= t.min_phase_s
            and pct is not None
            and pct > t.phase_pct
        )
        rows.append(
            _row(
                f"phase.{phase}_s",
                pa,
                pb,
                regression=regressed,
                note=f"fails above +{t.phase_pct:g}%" if regressed else "",
            )
        )

    # --- scenario latency quantiles --------------------------------------
    lat_a, lat_b = a.scenario_latency or {}, b.scenario_latency or {}
    for stat in ("p50_s", "p95_s", "p99_s", "max_s", "mean_s"):
        va, vb = lat_a.get(stat), lat_b.get(stat)
        pct = _pct_change(va, vb)
        regressed = (
            stat == "p95_s"
            and va is not None
            and vb is not None
            and va >= t.min_latency_s
            and pct is not None
            and pct > t.p95_pct
        )
        if va is None and vb is None:
            continue
        rows.append(
            _row(
                f"scenario.{stat}",
                va,
                vb,
                regression=regressed,
                note=f"fails above +{t.p95_pct:g}%" if regressed else "",
            )
        )

    # --- per-route p95 (informational: service runs only) ----------------
    for route in sorted(set(a.routes) | set(b.routes)):
        va = (a.routes.get(route) or {}).get("p95_s")
        vb = (b.routes.get(route) or {}).get("p95_s")
        if va is None and vb is None:
            continue
        rows.append(_row(f"route.{route}.p95_s", va, vb))

    # --- resource peaks (informational) ----------------------------------
    for key in sorted(set(a.resource) | set(b.resource)):
        rows.append(_row(f"resource.{key}", a.resource.get(key), b.resource.get(key)))

    # --- fault counters ---------------------------------------------------
    for name in sorted(set(a.counters) | set(b.counters)):
        va, vb = a.counters.get(name), b.counters.get(name)
        regressed = (
            t.fail_on_retry_exhausted
            and name == "retry.exhausted"
            and float(vb or 0) > 0
        )
        rows.append(
            _row(
                f"counter.{name}",
                None if va is None else float(va),
                None if vb is None else float(vb),
                regression=regressed,
                note="scenarios failed permanently" if regressed else "",
            )
        )

    regressions = [row for row in rows if row["regression"]]
    return {
        "a": {"label": a.label(), "trace_dir": a.trace_dir, "campaign": a.campaign},
        "b": {"label": b.label(), "trace_dir": b.trace_dir, "campaign": b.campaign},
        "thresholds": {
            "p95_pct": t.p95_pct,
            "throughput_pct": t.throughput_pct,
            "phase_pct": t.phase_pct,
        },
        "rows": rows,
        "regressions": regressions,
        "ok": not regressions,
    }


def format_diff(doc: dict) -> str:
    """Terminal rendering of a diff document."""
    header = {
        "baseline (A)": doc["a"]["label"],
        "candidate (B)": doc["b"]["label"],
        "thresholds": (
            f"p95 +{doc['thresholds']['p95_pct']:g}%  "
            f"throughput -{doc['thresholds']['throughput_pct']:g}%  "
            f"phase +{doc['thresholds']['phase_pct']:g}%"
        ),
        "verdict": "OK" if doc["ok"] else f"{len(doc['regressions'])} REGRESSION(S)",
    }
    blocks = [format_kv(header, title="Run diff (B vs A)")]
    rows = [
        {
            "metric": row["metric"],
            "a": row["a"],
            "b": row["b"],
            "delta_pct": row["delta_pct"],
            "flag": "REGRESSION" if row["regression"] else "",
        }
        for row in doc["rows"]
        if not (row["a"] is None and row["b"] is None)
    ]
    if rows:
        blocks.append(format_table(rows, title="Metric deltas"))
    if not doc["ok"]:
        lines = [
            f"- {row['metric']}: {row['a']} -> {row['b']} "
            f"({'+' if (row['delta_pct'] or 0) >= 0 else ''}{row['delta_pct']}%) {row['note']}"
            for row in doc["regressions"]
        ]
        blocks.append("Regressions:\n" + "\n".join(lines))
    return "\n\n".join(blocks)
