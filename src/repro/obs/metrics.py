"""Campaign metrics: in-process counters/gauges/timers rolled up to JSON.

Where the tracer (:mod:`repro.obs.tracer`) streams *events*, the
:class:`MetricsRegistry` keeps cheap in-memory aggregates — counters, last
gauge values, and timers (count / total / min / max seconds) — and writes
them once, at the end of a command, as a ``metrics.json`` sidecar next to
the result store (``<store>.metrics.json``).  That sidecar is what a future
campaign service reports without replaying a trace.

The disabled registry (:class:`NullMetrics`, singleton :data:`NULL_METRICS`)
is a true no-op: every method is an empty callable and :meth:`timer` hands
back a shared null context manager, so instrumentation costs a call and
nothing else when telemetry is off.
"""

from __future__ import annotations

import json
import math
import os
import time
from collections import Counter
from pathlib import Path
from typing import Iterable, Optional

from .timeseries import NULL_HISTOGRAM, Histogram, NullHistogram

__all__ = [
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "metrics_sidecar_path",
    "series_key",
    "split_series_key",
]


def metrics_sidecar_path(store_path: "str | os.PathLike") -> Path:
    """Where the metrics roll-up lives, relative to a result store."""
    return Path(str(store_path) + ".metrics.json")


def series_key(name: str, labels: Optional[dict] = None) -> str:
    """The registry key of a (possibly labelled) series.

    Label-less series key on their bare name; labelled series append a
    Prometheus-shaped, **sorted** label set — ``name{a="1",b="x"}`` — so the
    same labels in any spelling order collapse to one series, and the
    Prometheus exposition writer can emit the key almost verbatim.
    """
    if not labels:
        return name
    rendered = ",".join(
        f'{key}="{str(value)}"' for key, value in sorted(labels.items())
    )
    return f"{name}{{{rendered}}}"


def split_series_key(key: str) -> "tuple[str, dict]":
    """Invert :func:`series_key`: ``name{a="1"}`` -> ``("name", {"a": "1"})``."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, body = key[:-1].partition("{")
    labels: dict = {}
    for part in body.split('",'):
        if not part:
            continue
        label, _, value = part.partition('="')
        labels[label] = value.rstrip('"')
    return name, labels


class _Timer:
    """Times a ``with`` block into one named timer series."""

    __slots__ = ("_metrics", "_name", "_t0")

    def __init__(self, metrics: "MetricsRegistry", name: str):
        self._metrics = metrics
        self._name = name

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._metrics.observe(self._name, time.perf_counter() - self._t0)


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_TIMER = _NullTimer()


class MetricsRegistry:
    """Named counters, gauges and timers for one process's campaign run."""

    enabled = True

    def __init__(self):
        self._counters: Counter = Counter()
        self._gauges: dict[str, float] = {}
        #: name -> [count, total_s, min_s, max_s]
        self._timers: dict[str, list] = {}
        #: series key (name or name{labels}) -> Histogram
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, value: float = 1, labels: Optional[dict] = None) -> None:
        self._counters[series_key(name, labels)] += value

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def histogram(
        self,
        name: str,
        labels: Optional[dict] = None,
        boundaries: Optional[Iterable[float]] = None,
    ) -> Histogram:
        """The named (and optionally labelled) histogram, created on first use.

        Repeated calls with the same name/labels return the same
        :class:`~repro.obs.timeseries.Histogram`, so call sites just
        ``registry.histogram("http_request_duration_seconds",
        labels={...}).observe(dur)``.  ``boundaries`` only applies on
        creation; all series of one name should share it so they merge.
        """
        key = series_key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram(boundaries=boundaries)
        return histogram

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration sample into a timer series."""
        series = self._timers.get(name)
        if series is None:
            series = self._timers[name] = [0, 0.0, math.inf, -math.inf]
        series[0] += 1
        series[1] += seconds
        series[2] = min(series[2], seconds)
        series[3] = max(series[3], seconds)

    def timer(self, name: str) -> _Timer:
        """A context manager feeding :meth:`observe`."""
        return _Timer(self, name)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "timers": {
                name: {
                    "count": series[0],
                    "total_s": round(series[1], 6),
                    "min_s": round(series[2], 6),
                    "max_s": round(series[3], 6),
                }
                for name, series in sorted(self._timers.items())
            },
            "histograms": {
                key: histogram.to_dict()
                for key, histogram in sorted(self._histograms.items())
            },
        }

    def write(self, path: "str | os.PathLike") -> Path:
        """Persist the roll-up as JSON, atomically.

        The document is serialised to a per-process temp file first and
        renamed into place (``os.replace``), so however the writer dies —
        mid-``dumps``, mid-``write`` — a reader only ever sees the previous
        complete snapshot, never a torn one.  The pid in the temp name keeps
        concurrent writers (the run's end-of-command write racing the
        resource sampler's periodic flush) from trampling each other's
        half-written bytes.
        """
        # Lazy import: history sits above report, which imports this module.
        from .history import run_provenance

        doc = self.to_dict()
        # Provenance makes sidecars attributable across runs and machines;
        # the Prometheus writer iterates only the known series sections, so
        # the extra key is invisible to exposition.
        doc["meta"] = {
            **run_provenance(),
            "pid": os.getpid(),
            "written_t": round(time.time(), 3),
        }
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        return path


class NullMetrics:
    """The disabled registry: same surface, empty callables, writes nothing."""

    enabled = False

    def counter(self, name: str, value: float = 1, labels: Optional[dict] = None) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, seconds: float) -> None:
        return None

    def timer(self, name: str) -> _NullTimer:
        return _NULL_TIMER

    def histogram(
        self,
        name: str,
        labels: Optional[dict] = None,
        boundaries: Optional[Iterable[float]] = None,
    ) -> NullHistogram:
        return NULL_HISTOGRAM

    def to_dict(self) -> dict:
        return {"counters": {}, "gauges": {}, "timers": {}, "histograms": {}}


#: The shared disabled registry.
NULL_METRICS = NullMetrics()
