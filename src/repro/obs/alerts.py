"""Declarative SLO alerting over the live metrics registry.

An :class:`AlertRule` names a metric series, a statistic over it, a
predicate, and an optional *for*-duration; an :class:`AlertManager` holds a
set of rules plus the rolling windows the hot paths feed, and each
:meth:`AlertManager.evaluate` tick walks every rule through the
ok → pending → firing state machine:

* a breach starts the ``pending`` clock; the alert only **fires** once the
  breach has held for ``for_s`` seconds (0 = fire immediately), so a single
  slow scenario cannot page anyone;
* a reading back inside the threshold resolves the alert (or cancels a
  pending one) instantly.

Transitions are observable everywhere the stack already looks: an
``alert.fired`` / ``alert.resolved`` trace event (visible in ``obs tail`` /
``obs top``), a ``repro_alert_firing{alert="..."}`` gauge in the metrics
registry (and therefore the Prometheus exposition), and the ``GET /alerts``
endpoint + dashboard tile served from :meth:`AlertManager.status`.

Rules come from JSON — a file or inline — via :func:`load_alert_rules`::

    [{"name": "scenario-p95", "metric": "scenario_duration_seconds",
      "stat": "p95", "op": ">", "threshold": 2.5, "for_s": 5.0}]

Values are resolved in two layers: a rolling window registered under the
metric name wins (exact quantiles over the recent past — what a latency SLO
means); otherwise the rule falls back to the registry snapshot (counters
summed across matching series, gauges, timers, histogram quantiles since
process start).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Sequence

from .metrics import series_key, split_series_key
from .timeseries import Histogram, RollingWindow

__all__ = [
    "AlertRule",
    "AlertManager",
    "load_alert_rules",
    "ALERT_STATS",
    "ALERT_OPS",
]

#: The statistics a rule may ask for.  p50/p95/p99/mean/max/last work on
#: rolling windows and histograms; value/rate on counters and gauges;
#: count everywhere.
ALERT_STATS = ("p50", "p95", "p99", "mean", "max", "last", "value", "rate", "count")

ALERT_OPS = {
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
}

_QUANTILE_STATS = {"p50": 0.50, "p95": 0.95, "p99": 0.99}


@dataclass(frozen=True)
class AlertRule:
    """One declarative SLO: *stat(metric) op threshold, sustained for_s*."""

    name: str
    metric: str
    threshold: float
    stat: str = "p95"
    op: str = ">"
    labels: Mapping = field(default_factory=dict)
    for_s: float = 0.0
    description: str = ""

    def __post_init__(self):
        if not self.name:
            raise ValueError("an alert rule needs a name")
        if not self.metric:
            raise ValueError(f"alert rule {self.name!r} needs a metric")
        if self.stat not in ALERT_STATS:
            raise ValueError(
                f"alert rule {self.name!r}: unknown stat {self.stat!r} "
                f"(choose from {', '.join(ALERT_STATS)})"
            )
        if self.op not in ALERT_OPS:
            raise ValueError(
                f"alert rule {self.name!r}: unknown op {self.op!r} "
                f"(choose from {', '.join(ALERT_OPS)})"
            )
        if self.for_s < 0:
            raise ValueError(f"alert rule {self.name!r}: for_s must be >= 0")

    def to_dict(self) -> dict:
        doc = {
            "name": self.name,
            "metric": self.metric,
            "stat": self.stat,
            "op": self.op,
            "threshold": self.threshold,
            "for_s": self.for_s,
        }
        if self.labels:
            doc["labels"] = dict(self.labels)
        if self.description:
            doc["description"] = self.description
        return doc

    @classmethod
    def from_dict(cls, data: Mapping) -> "AlertRule":
        return cls(
            name=str(data["name"]),
            metric=str(data["metric"]),
            threshold=float(data["threshold"]),
            stat=str(data.get("stat", "p95")),
            op=str(data.get("op", ">")),
            labels=dict(data.get("labels") or {}),
            for_s=float(data.get("for_s", 0.0)),
            description=str(data.get("description", "")),
        )

    def condition(self) -> str:
        """``p95(scenario_duration_seconds) > 2.5 for 5s`` — human rendering."""
        target = self.metric
        if self.labels:
            target = series_key(self.metric, dict(self.labels))
        clause = f"{self.stat}({target}) {self.op} {self.threshold:g}"
        if self.for_s > 0:
            clause += f" for {self.for_s:g}s"
        return clause


def load_alert_rules(source: "str | Path") -> list:
    """Alert rules from a JSON file path or an inline JSON string.

    Accepts either a bare list of rule objects or ``{"rules": [...]}``.
    Raises :class:`ValueError` with a one-line message on anything
    malformed — the CLI surfaces it verbatim.
    """
    text = str(source)
    path = Path(text)
    origin = text
    if not text.lstrip().startswith(("[", "{")):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ValueError(f"cannot read alert rules from {origin}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"invalid alert-rule JSON in {origin}: {exc}") from exc
    if isinstance(data, Mapping):
        data = data.get("rules", [])
    if not isinstance(data, list):
        raise ValueError(f"alert rules in {origin} must be a list (or {{'rules': [...]}})")
    rules = []
    for i, entry in enumerate(data):
        try:
            rules.append(AlertRule.from_dict(entry))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"alert rule #{i + 1} in {origin}: {exc}") from exc
    return rules


class AlertManager:
    """Evaluates :class:`AlertRule` sets against live metrics.

    Hot paths feed recent samples via :meth:`observe` (backed by per-metric
    :class:`RollingWindow`\\ s); the service's evaluation loop calls
    :meth:`evaluate` every couple of seconds.  The manager is intentionally
    tolerant: a rule whose metric has no data yet simply stays ``ok``.
    """

    def __init__(
        self,
        rules: Sequence[AlertRule] = (),
        metrics=None,
        tracer=None,
        window_s: float = 60.0,
    ):
        self.rules = list(rules)
        self.metrics = metrics
        self.tracer = tracer
        self.window_s = float(window_s)
        self._windows: dict[str, RollingWindow] = {}
        self._states: dict[str, dict] = {
            rule.name: {"state": "ok", "pending_since": None, "fired_t": None, "value": None}
            for rule in self.rules
        }
        #: rule name -> (t, counter_total) marks for rate computation
        self._counter_marks: dict[str, tuple] = {}

    # ------------------------------------------------------------------
    def window(self, metric: str) -> RollingWindow:
        """The rolling window for a metric name, created on first use."""
        window = self._windows.get(metric)
        if window is None:
            window = self._windows[metric] = RollingWindow(window_s=self.window_s)
        return window

    def observe(self, metric: str, value: float, t: Optional[float] = None) -> None:
        """Feed one recent sample (e.g. a scenario duration) into a window."""
        self.window(metric).observe(value, t)

    # ------------------------------------------------------------------
    def _window_value(self, rule: AlertRule, now: float) -> Optional[float]:
        window = self._windows.get(rule.metric)
        if window is None:
            return None
        if rule.stat in _QUANTILE_STATS:
            return window.quantile(_QUANTILE_STATS[rule.stat], now=now)
        if rule.stat == "mean":
            return window.mean(now=now)
        if rule.stat == "max":
            values = window.values(now=now)
            return max(values) if values else None
        if rule.stat in ("last", "value"):
            return window.last()
        if rule.stat == "rate":
            return window.rate(now=now)
        if rule.stat == "count":
            return float(len(window))
        return None

    def _matching(self, section: Mapping, rule: AlertRule) -> list:
        """Values of registry series whose name+labels match the rule."""
        wanted = dict(rule.labels)
        matches = []
        for key, value in section.items():
            name, labels = split_series_key(str(key))
            if name != rule.metric:
                continue
            if wanted and any(labels.get(k) != str(v) for k, v in wanted.items()):
                continue
            matches.append(value)
        return matches

    def _registry_value(self, rule: AlertRule, now: float) -> Optional[float]:
        if self.metrics is None:
            return None
        doc = self.metrics.to_dict()

        counters = self._matching(doc.get("counters") or {}, rule)
        if counters:
            total = float(sum(counters))
            if rule.stat == "rate":
                mark = self._counter_marks.get(rule.name)
                self._counter_marks[rule.name] = (now, total)
                if mark is None or now <= mark[0]:
                    return None  # first sighting: no interval to rate over
                return max(0.0, total - mark[1]) / (now - mark[0])
            return total  # value/count/max/... — a counter has one number

        gauges = self._matching(doc.get("gauges") or {}, rule)
        if gauges:
            values = [float(v) for v in gauges]
            return max(values) if rule.stat == "max" else values[-1]

        histograms = self._matching(doc.get("histograms") or {}, rule)
        if histograms:
            combined: Optional[Histogram] = None
            for data in histograms:
                try:
                    histogram = Histogram.from_dict(data)
                except (KeyError, TypeError, ValueError):
                    continue
                if combined is None:
                    combined = histogram
                else:
                    try:
                        combined.merge(histogram)
                    except ValueError:
                        continue
            if combined is None or not combined.count:
                return None
            if rule.stat in _QUANTILE_STATS:
                return combined.quantile(_QUANTILE_STATS[rule.stat])
            if rule.stat == "mean":
                return combined.mean
            if rule.stat == "max":
                return combined.max
            if rule.stat == "count":
                return float(combined.count)
            return None

        timers = self._matching(doc.get("timers") or {}, rule)
        if timers:
            entry = timers[-1]
            if rule.stat == "max":
                return entry.get("max_s")
            if rule.stat == "count":
                return float(entry.get("count", 0))
            if rule.stat == "mean":
                count = entry.get("count") or 0
                return entry.get("total_s", 0.0) / count if count else None
        return None

    def value_for(self, rule: AlertRule, now: Optional[float] = None) -> Optional[float]:
        """The rule's current reading: rolling window first, registry second."""
        now = time.time() if now is None else float(now)
        value = self._window_value(rule, now)
        if value is None:
            value = self._registry_value(rule, now)
        return value

    # ------------------------------------------------------------------
    def _transition(self, rule: AlertRule, state: dict, firing: bool, now: float) -> None:
        if firing and state["state"] != "firing":
            state["state"] = "firing"
            state["fired_t"] = now
            if self.tracer is not None:
                self.tracer.event(
                    "alert.fired",
                    alert=rule.name,
                    condition=rule.condition(),
                    value=state["value"],
                    threshold=rule.threshold,
                )
        elif not firing and state["state"] == "firing":
            state["state"] = "ok"
            state["fired_t"] = None
            if self.tracer is not None:
                self.tracer.event(
                    "alert.resolved",
                    alert=rule.name,
                    condition=rule.condition(),
                    value=state["value"],
                )
        if self.metrics is not None:
            self.metrics.gauge(
                series_key("repro_alert_firing", {"alert": rule.name}),
                1.0 if state["state"] == "firing" else 0.0,
            )

    def evaluate(self, now: Optional[float] = None) -> list:
        """One tick of every rule's state machine; returns :meth:`status`."""
        now = time.time() if now is None else float(now)
        for rule in self.rules:
            state = self._states.setdefault(
                rule.name,
                {"state": "ok", "pending_since": None, "fired_t": None, "value": None},
            )
            value = self.value_for(rule, now)
            state["value"] = value
            breached = value is not None and ALERT_OPS[rule.op](value, rule.threshold)
            if not breached:
                state["pending_since"] = None
                self._transition(rule, state, firing=False, now=now)
                continue
            if state["pending_since"] is None:
                state["pending_since"] = now
            held = now - state["pending_since"]
            if held >= rule.for_s:
                self._transition(rule, state, firing=True, now=now)
            elif state["state"] != "firing":
                state["state"] = "pending"
        return self.status(now=now)

    # ------------------------------------------------------------------
    def status(self, now: Optional[float] = None) -> list:
        """Every rule's current state, JSON-shaped for ``GET /alerts``."""
        now = time.time() if now is None else float(now)
        out = []
        for rule in self.rules:
            state = self._states.get(rule.name) or {
                "state": "ok", "pending_since": None, "fired_t": None, "value": None,
            }
            value = state.get("value")
            entry = {
                "name": rule.name,
                "state": state["state"],
                "condition": rule.condition(),
                "metric": rule.metric,
                "stat": rule.stat,
                "op": rule.op,
                "threshold": rule.threshold,
                "for_s": rule.for_s,
                "value": None if value is None else round(float(value), 6),
                "since_s": (
                    round(now - state["fired_t"], 3)
                    if state.get("fired_t") is not None
                    else None
                ),
            }
            if rule.description:
                entry["description"] = rule.description
            out.append(entry)
        return out

    def firing(self) -> list:
        return [entry for entry in self.status() if entry["state"] == "firing"]
