"""Trace aggregation: merge per-process trace files, compute the campaign view.

The read side of :mod:`repro.obs`:

* :func:`trace_files` / :func:`load_events` — resolve a trace *source* (a
  trace directory or one trace file) to its event stream, merged across all
  per-process files **in timestamp order** (events carry wall-clock ``t``
  precisely so multi-process traces interleave correctly);
* :func:`build_report` — the aggregates ``obs report`` prints: per-phase
  time breakdown with wall-time coverage, cache-hit ratio, slowest-N
  scenarios, per-worker utilisation, queue-wait statistics, counter totals;
* :func:`format_report` / :func:`format_event` — terminal rendering, shared
  with ``obs tail``;
* :func:`follow_trace` — incremental event iteration for a live tail:
  remembers per-file offsets and picks up files that appear mid-campaign
  (a shard worker starting late creates its trace file on first event).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Iterator, Mapping, Optional, Sequence

from ..analysis.reporting import format_kv, format_table
from .timeseries import Histogram, exact_quantile

__all__ = [
    "trace_files",
    "load_events",
    "build_report",
    "format_report",
    "format_event",
    "follow_trace",
    "TracePoller",
    "metric_sidecar_files",
    "merged_sidecar_histograms",
]

#: The per-scenario phases a scenario span carries (worker + runner timings).
SCENARIO_PHASES = ("queue_wait_s", "build_s", "simulate_s", "record_write_s")


def trace_files(source: "str | Path") -> list[Path]:
    """The trace file(s) behind a source path (directory or single file)."""
    path = Path(source)
    if path.is_dir():
        found = sorted(path.glob("trace-*.jsonl")) or sorted(path.glob("*.jsonl"))
        if not found:
            raise FileNotFoundError(f"no trace-*.jsonl files in {path}")
        return found
    if not path.exists():
        raise FileNotFoundError(f"no trace at {path}")
    return [path]


def _parse_line(line: str) -> Optional[dict]:
    line = line.strip()
    if not line:
        return None
    try:
        event = json.loads(line)
    except json.JSONDecodeError:
        return None  # torn write: a tracer died mid-line
    if not isinstance(event, dict) or "t" not in event:
        return None
    return event


def load_events(source: "str | Path") -> list[dict]:
    """All events of a trace, merged across files in timestamp order."""
    events: list[dict] = []
    for file in trace_files(source):
        with file.open("r", encoding="utf-8") as fh:
            for line in fh:
                event = _parse_line(line)
                if event is not None:
                    events.append(event)
    events.sort(key=lambda e: float(e.get("t", 0.0)))
    return events


class TracePoller:
    """Incremental, non-blocking trace reading: the engine of a live tail.

    Each :meth:`poll` returns the events appended since the previous poll
    (timestamp-sorted across files), remembering per-file offsets so nothing
    is re-read.  Only complete lines advance an offset — a half-written tail
    is retried on the next poll — and ``trace-*.jsonl`` files appearing in
    the directory later (a shard worker starting late, a campaign's trace
    dir created after submission) are picked up as they materialise.

    :func:`follow_trace` wraps one of these in a sleep loop for ``obs
    tail``; the campaign service's SSE endpoint drives one directly from
    the event loop, where blocking sleeps are not an option.
    """

    def __init__(self, source: "str | Path"):
        self.source = Path(source)
        self._offsets: dict[Path, int] = {}

    def poll(self) -> list[dict]:
        """The complete events appended since the last call (may be empty)."""
        fresh: list[dict] = []
        try:
            files = trace_files(self.source)
        except FileNotFoundError:
            return fresh
        for file in files:
            try:
                # readline(), not iteration: tell() is forbidden while a text
                # file is being iterated, and the offset after every complete
                # line is exactly what resuming the next poll needs.
                with file.open("r", encoding="utf-8") as fh:
                    fh.seek(self._offsets.get(file, 0))
                    while True:
                        line = fh.readline()
                        if not line or not line.endswith("\n"):
                            break  # EOF or half-written tail: retry next poll
                        self._offsets[file] = fh.tell()
                        event = _parse_line(line)
                        if event is not None:
                            fresh.append(event)
            except OSError:
                continue
        fresh.sort(key=lambda e: float(e.get("t", 0.0)))
        return fresh


def follow_trace(
    source: "str | Path", poll_s: float = 0.5, max_polls: Optional[int] = None
) -> Iterator[dict]:
    """Yield events live: replay what exists, then poll for appended lines.

    New ``trace-*.jsonl`` files appearing in a trace directory are picked up
    on the next poll.  Iteration ends after ``max_polls`` empty polls
    (``None`` = poll until the consumer stops, e.g. by Ctrl-C).
    """
    poller = TracePoller(source)
    empty_polls = 0
    while True:
        fresh = poller.poll()
        if fresh:
            empty_polls = 0
            yield from fresh
        else:
            empty_polls += 1
            if max_polls is not None and empty_polls >= max_polls:
                return
            time.sleep(poll_s)


# ----------------------------------------------------------------------
# Metrics sidecars (one per process, mirrored into the trace directory)
# ----------------------------------------------------------------------
def metric_sidecar_files(source: "str | Path") -> list[Path]:
    """The per-process ``metrics-<worker>-<pid>.json`` mirrors of a trace dir."""
    path = Path(source)
    if not path.is_dir():
        return []
    return sorted(path.glob("metrics-*.json"))


def _sidecar_worker_label(path: Path) -> str:
    """``metrics-shard-0-12345.json`` → ``shard-0`` (strip prefix and pid)."""
    parts = path.stem.split("-")[1:]
    if parts and parts[-1].isdigit():
        parts = parts[:-1]
    return "-".join(parts) or "?"


def merged_sidecar_histograms(
    source: "str | Path",
) -> "tuple[dict[str, Histogram], list[str], int]":
    """Every worker's histogram series, merged bucket-wise per series key.

    Returns ``(merged, workers, files)``: the union of histogram series
    across all metrics sidecars in the trace directory (same series from
    different workers folded via :meth:`Histogram.merge`), the sorted labels
    of the workers whose sidecars contributed at least one histogram, and
    the number of sidecar files read.  This is what makes ``obs report``
    quantiles cover a sharded campaign instead of one process.
    """
    merged: dict[str, Histogram] = {}
    workers: set[str] = set()
    files = 0
    for file in metric_sidecar_files(source):
        try:
            doc = json.loads(file.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue  # torn or vanished sidecar: skip, never fail the report
        histograms = doc.get("histograms") if isinstance(doc, dict) else None
        if not isinstance(histograms, dict):
            continue
        files += 1
        contributed = False
        for key, data in histograms.items():
            try:
                histogram = Histogram.from_dict(data)
            except (KeyError, TypeError, ValueError):
                continue
            contributed = True
            if key in merged:
                try:
                    merged[key].merge(histogram)
                except ValueError:
                    pass  # boundary drift across versions: keep the first
            else:
                merged[key] = histogram
        if contributed:
            workers.add(_sidecar_worker_label(file))
    return merged, sorted(workers), files


def _latency_section(source: "str | Path") -> dict:
    """Merged-worker scenario-latency quantiles for ``obs report``.

    Folds every sidecar's ``scenario_duration_seconds`` series (any labels)
    into one histogram and reports its quantiles, plus which workers
    contributed — the cross-worker view a per-process registry cannot give.
    """
    from .metrics import split_series_key

    merged, workers, files = merged_sidecar_histograms(source)
    combined: Optional[Histogram] = None
    for key, histogram in merged.items():
        name, _labels = split_series_key(key)
        if name != "scenario_duration_seconds":
            continue
        if combined is None:
            combined = Histogram(boundaries=histogram.boundaries)
        try:
            combined.merge(histogram)
        except ValueError:
            continue
    if combined is None or not combined.count:
        return {}
    doc = combined.to_dict()
    scenario = {
        "count": doc["count"],
        "mean_s": doc["mean"],
        "max_s": doc["max"],
    }
    for q, value in (doc.get("quantiles") or {}).items():
        scenario[f"{q}_s"] = value
    return {"scenario": scenario, "workers": workers, "sidecars": files}


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def _scenario_spans(events: Sequence[dict]) -> list[dict]:
    return [e for e in events if e.get("kind") == "span" and e.get("name") == "scenario"]


def build_report(
    events: Sequence[dict], slowest: int = 10, source: "str | Path | None" = None
) -> dict:
    """Aggregate a merged event stream into the ``obs report`` document.

    Keys: ``events``, ``span`` (trace wall span), ``runs``, ``phases`` (the
    per-phase breakdown with each phase's share of run time), ``coverage``
    (phase time / run-span time — the "where did the wall clock go"
    completeness check), ``scenarios`` / ``executed`` / ``cached`` /
    ``cache_hit_ratio``, ``queue_wait``, ``slowest``, ``workers`` (per
    worker label: events, busy seconds, wall seconds, utilisation),
    ``counters`` and ``rounds`` (boundary searches).

    When ``source`` names the trace *directory*, the per-process metrics
    sidecars mirrored there are folded in as a ``latency`` section: the
    ``scenario_duration_seconds`` histograms of **every** worker merged
    bucket-wise into one quantile view, labelled with the contributing
    workers.
    """
    report: dict = {"events": len(events)}
    if source is not None:
        latency = _latency_section(source)
        if latency:
            report["latency"] = latency
    if not events:
        report.update(
            {
                "runs": 0,
                "phases": {},
                "coverage": None,
                "scenarios": 0,
                "executed": 0,
                "cached": 0,
                "cache_hit_ratio": None,
                "slowest": [],
                "workers": {},
                "counters": {},
                "rounds": 0,
            }
        )
        return report

    times = [float(e["t"]) for e in events]
    report["span"] = {"start": min(times), "end": max(times), "wall_s": max(times) - min(times)}

    # --- top-level run spans and their phase partitions -----------------
    run_names = ("campaign.run", "dist.run")
    phase_names = ("campaign.phase", "dist.phase")
    run_spans = [e for e in events if e.get("kind") == "span" and e.get("name") in run_names]
    phase_spans = [e for e in events if e.get("kind") == "span" and e.get("name") in phase_names]
    run_s = sum(float(e.get("dur_s", 0.0)) for e in run_spans)
    phases: dict[str, float] = {}
    for span in phase_spans:
        phase = str(span.get("attrs", {}).get("phase", "?"))
        phases[phase] = phases.get(phase, 0.0) + float(span.get("dur_s", 0.0))
    phase_s = sum(phases.values())
    report["runs"] = len(run_spans)
    report["phases"] = {
        name: {
            "total_s": round(total, 6),
            "share": round(total / phase_s, 4) if phase_s > 0 else None,
        }
        for name, total in sorted(phases.items(), key=lambda kv: -kv[1])
    }
    report["coverage"] = round(min(1.0, phase_s / run_s), 4) if run_s > 0 else None

    # --- scenarios ------------------------------------------------------
    scenarios = _scenario_spans(events)
    cached = [s for s in scenarios if s.get("attrs", {}).get("cached")]
    executed = [s for s in scenarios if not s.get("attrs", {}).get("cached")]
    report["scenarios"] = len(scenarios)
    report["cached"] = len(cached)
    report["executed"] = len(executed)
    report["cache_hit_ratio"] = (
        round(len(cached) / len(scenarios), 4) if scenarios else None
    )

    # Per-scenario phase totals (worker-side build/simulate, runner-side
    # queue-wait/record-write) folded into the breakdown as sub-phases.
    scenario_phases: dict[str, float] = {}
    for span in executed:
        attrs = span.get("attrs", {})
        for key in SCENARIO_PHASES:
            value = attrs.get(key)
            if value is not None:
                scenario_phases[key] = scenario_phases.get(key, 0.0) + float(value)
    report["scenario_phases"] = {
        name: round(total, 6)
        for name, total in sorted(scenario_phases.items(), key=lambda kv: -kv[1])
    }
    waits = [
        float(s.get("attrs", {}).get("queue_wait_s"))
        for s in executed
        if s.get("attrs", {}).get("queue_wait_s") is not None
    ]
    report["queue_wait"] = {
        "mean_s": round(sum(waits) / len(waits), 6) if waits else None,
        "max_s": round(max(waits), 6) if waits else None,
    }

    report["slowest"] = [
        {
            "scenario_id": str(s.get("attrs", {}).get("scenario_id", "?"))[:12],
            "dur_s": round(float(s.get("dur_s", 0.0)), 4),
            "status": s.get("attrs", {}).get("status"),
            "worker": s.get("worker"),
        }
        for s in sorted(executed, key=lambda s: -float(s.get("dur_s", 0.0)))[:slowest]
    ]

    # --- per-worker utilisation ----------------------------------------
    workers: dict[str, dict] = {}
    for event in events:
        label = str(event.get("worker", "?"))
        entry = workers.setdefault(
            label, {"events": 0, "busy_s": 0.0, "first": float(event["t"]), "last": float(event["t"])}
        )
        entry["events"] += 1
        entry["first"] = min(entry["first"], float(event["t"]))
        entry["last"] = max(entry["last"], float(event["t"]))
        if (
            event.get("kind") == "span"
            and event.get("name") == "scenario"
            and not event.get("attrs", {}).get("cached")
        ):
            entry["busy_s"] += float(event.get("dur_s", 0.0))
    report["workers"] = {
        label: {
            "events": entry["events"],
            "busy_s": round(entry["busy_s"], 4),
            "wall_s": round(entry["last"] - entry["first"], 4),
            "utilisation": (
                round(min(1.0, entry["busy_s"] / (entry["last"] - entry["first"])), 4)
                if entry["last"] > entry["first"]
                else None
            ),
        }
        for label, entry in sorted(workers.items())
    }

    # --- counters and boundary rounds ----------------------------------
    counters: dict[str, float] = {}
    for event in events:
        if event.get("kind") == "counter":
            name = str(event.get("name", "?"))
            counters[name] = counters.get(name, 0) + float(event.get("value", 1))
    report["counters"] = {k: counters[k] for k in sorted(counters)}
    report["rounds"] = sum(
        1 for e in events if e.get("kind") == "span" and e.get("name") == "boundary.round"
    )

    # --- service requests and process resources (present when traced) ---
    http = _http_section(events)
    if http:
        report["http"] = http
    resources = _resource_section(events)
    if resources:
        report["resource"] = resources
    fault_section = _faults_section(report["counters"], events)
    if fault_section:
        report["faults"] = fault_section
    return report


#: Counter prefixes belonging to the fault-injection / self-healing stack.
_FAULT_COUNTER_PREFIXES = ("faults.", "retry.", "dist.respawn", "dist.worker_deaths", "scheduler.")


def _faults_section(counters: Mapping, events: Sequence[dict]) -> dict:
    """Chaos observability: injected faults, retries, respawns, restarts.

    Present only when a run actually injected/retried/respawned something —
    a clean run's report is unchanged.  ``retry.exhausted`` is always
    stamped (zero included) once the section exists, because "no retries
    ran out" is the assertion chaos gates make.
    """
    section = {
        name: value
        for name, value in counters.items()
        if str(name).startswith(_FAULT_COUNTER_PREFIXES)
    }
    if not section:
        return {}
    section.setdefault("faults.injected", 0)
    section.setdefault("retry.attempt", 0)
    section.setdefault("retry.exhausted", 0)
    respawns = [
        event
        for event in events
        if event.get("kind") == "event" and event.get("name") == "worker.respawn"
    ]
    if respawns:
        section["respawned_scenarios"] = sum(
            int((event.get("attrs") or {}).get("scenarios", 0)) for event in respawns
        )
    return {k: section[k] for k in sorted(section)}


def _http_section(events: Sequence[dict]) -> dict:
    """Per-route request-latency quantiles from ``http.request`` spans."""
    by_route: dict[str, dict] = {}
    for event in events:
        if event.get("kind") != "span" or event.get("name") != "http.request":
            continue
        attrs = event.get("attrs", {})
        route = str(attrs.get("route", "?"))
        entry = by_route.setdefault(route, {"durations": [], "statuses": {}})
        entry["durations"].append(float(event.get("dur_s", 0.0)))
        status = str(attrs.get("status", "?"))
        entry["statuses"][status] = entry["statuses"].get(status, 0) + 1
    section: dict = {}
    for route, entry in sorted(by_route.items()):
        durations = entry["durations"]
        section[route] = {
            "requests": len(durations),
            "mean_s": round(sum(durations) / len(durations), 6),
            "p50_s": round(exact_quantile(durations, 0.50), 6),
            "p95_s": round(exact_quantile(durations, 0.95), 6),
            "p99_s": round(exact_quantile(durations, 0.99), 6),
            "max_s": round(max(durations), 6),
            "statuses": {k: entry["statuses"][k] for k in sorted(entry["statuses"])},
        }
    return section


#: The sampler gauges the resource section aggregates, with their units.
_RESOURCE_GAUGES = (
    ("process.rss_bytes", "rss_bytes"),
    ("process.cpu_percent", "cpu_percent"),
    ("process.open_fds", "open_fds"),
    ("process.threads", "threads"),
)


def _resource_section(events: Sequence[dict]) -> dict:
    """Peak/mean/last of each ``process.*`` gauge the resource sampler wrote."""
    series: dict[str, list] = {}
    for event in events:
        if event.get("kind") != "gauge":
            continue
        name = str(event.get("name", ""))
        if name.startswith("process."):
            series.setdefault(name, []).append(float(event.get("value", 0.0)))
    if not series:
        return {}
    section: dict = {}
    for gauge, key in _RESOURCE_GAUGES:
        values = series.get(gauge)
        if values:
            section[key] = {
                "peak": round(max(values), 6),
                "mean": round(sum(values) / len(values), 6),
                "last": round(values[-1], 6),
            }
    cpu_seconds = series.get("process.cpu_seconds")
    if cpu_seconds:
        section["cpu_seconds"] = round(cpu_seconds[-1], 6)
    section["samples"] = max(len(v) for v in series.values())
    return section


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def format_event(event: dict, t0: Optional[float] = None) -> str:
    """One trace event as a terminal line (shared by ``obs tail``)."""
    offset = float(event.get("t", 0.0)) - (t0 if t0 is not None else float(event.get("t", 0.0)))
    kind = event.get("kind", "?")
    name = event.get("name", "?")
    worker = event.get("worker", "?")
    parts = [f"+{offset:9.3f}s", f"[{worker}]", f"{kind:7s}", str(name)]
    if kind == "span":
        parts.append(f"dur={float(event.get('dur_s', 0.0)):.4f}s")
    elif kind in ("counter", "gauge"):
        parts.append(f"value={event.get('value')}")
    attrs = event.get("attrs") or {}
    detail = " ".join(
        f"{key}={value}" for key, value in attrs.items() if value is not None
    )
    if detail:
        parts.append(detail)
    return " ".join(parts)


def format_report(report: dict, title: str = "Campaign telemetry") -> str:
    """The full ``obs report`` terminal rendering."""
    overview = {
        "events": report.get("events", 0),
        "runs": report.get("runs", 0),
        "trace_wall_s": round(report.get("span", {}).get("wall_s", 0.0), 4)
        if report.get("span")
        else None,
        "scenarios": report.get("scenarios", 0),
        "executed": report.get("executed", 0),
        "cached": report.get("cached", 0),
        "cache_hit_ratio": report.get("cache_hit_ratio"),
        "coverage": report.get("coverage"),
        "boundary_rounds": report.get("rounds", 0),
    }
    blocks = [format_kv(overview, title=title)]

    phases = report.get("phases") or {}
    if phases:
        rows = [
            {"phase": name, "total_s": entry["total_s"], "share": entry["share"]}
            for name, entry in phases.items()
        ]
        blocks.append(format_table(rows, title="Per-phase breakdown (runner wall time)"))
    scenario_phases = report.get("scenario_phases") or {}
    if scenario_phases:
        blocks.append(
            format_kv(scenario_phases, title="Per-scenario phase totals (busy seconds)")
        )

    workers = report.get("workers") or {}
    if workers:
        rows = [{"worker": label, **entry} for label, entry in workers.items()]
        blocks.append(format_table(rows, title="Worker utilisation"))

    slowest = report.get("slowest") or []
    if slowest:
        blocks.append(format_table(slowest, title=f"Slowest {len(slowest)} scenario(s)"))

    http = report.get("http") or {}
    if http:
        rows = [
            {
                "route": route,
                "requests": entry["requests"],
                "p50_s": entry["p50_s"],
                "p95_s": entry["p95_s"],
                "p99_s": entry["p99_s"],
                "max_s": entry["max_s"],
            }
            for route, entry in http.items()
        ]
        blocks.append(format_table(rows, title="HTTP requests (latency per route)"))

    resources = report.get("resource") or {}
    if resources:
        flat: dict = {}
        for key, value in resources.items():
            if isinstance(value, dict):
                rounded = {
                    k: round(v / 2**20, 1) if key == "rss_bytes" else v
                    for k, v in value.items()
                }
                unit = "rss_mib" if key == "rss_bytes" else key
                flat[unit] = (
                    f"peak {rounded['peak']}  mean {rounded['mean']}  last {rounded['last']}"
                )
            else:
                flat[key] = value
        blocks.append(format_kv(flat, title="Resource usage (sampler)"))

    latency = report.get("latency") or {}
    if latency:
        flat = dict(latency.get("scenario") or {})
        workers = latency.get("workers") or []
        flat["workers"] = ", ".join(workers) if workers else "?"
        flat["sidecars"] = latency.get("sidecars")
        blocks.append(
            format_kv(flat, title="Scenario latency (merged worker histograms)")
        )

    fault_section = report.get("faults") or {}
    if fault_section:
        blocks.append(format_kv(fault_section, title="Fault injection & recovery"))

    counters = report.get("counters") or {}
    if counters:
        blocks.append(format_kv(counters, title="Counters"))
    return "\n\n".join(blocks)
