"""Energy-harvesting substrate: PV cells/arrays, irradiance synthesis, storage.

This subpackage models everything on the *supply* side of the paper's system
(Fig. 2 and Fig. 8): the single-diode solar-cell model of eq. 4, calibrated PV
arrays, synthetic irradiance traces with micro/macro variability, trace
containers with CSV persistence, and the small buffer capacitor.
"""

from .solar_cell import MPPResult, SolarCell, SolarCellParameters, thermal_voltage
from .pv_array import PVArray, fig1_small_cell, paper_pv_array
from .irradiance import (
    ClearSkyModel,
    CloudModel,
    IrradianceGenerator,
    ShadowingEvent,
    WeatherCondition,
    constant_irradiance,
    sinusoidal_irradiance,
    step_irradiance,
)
from .profiles import (
    PAPER_TEST_START_S,
    PV_TARGET_VOLTAGE,
    constant_power_profile,
    fig11_supply_profile,
    solar_irradiance_trace,
)
from .traces import IrradianceTrace, PowerTrace, Trace, trace_from_function
from .supercapacitor import (
    PAPER_BUFFER_CAPACITANCE_F,
    PAPER_MINIMUM_CAPACITANCE_F,
    Supercapacitor,
)

__all__ = [
    "MPPResult",
    "SolarCell",
    "SolarCellParameters",
    "thermal_voltage",
    "PVArray",
    "paper_pv_array",
    "fig1_small_cell",
    "ClearSkyModel",
    "CloudModel",
    "IrradianceGenerator",
    "ShadowingEvent",
    "WeatherCondition",
    "constant_irradiance",
    "sinusoidal_irradiance",
    "step_irradiance",
    "IrradianceTrace",
    "PowerTrace",
    "Trace",
    "trace_from_function",
    "PV_TARGET_VOLTAGE",
    "PAPER_TEST_START_S",
    "solar_irradiance_trace",
    "fig11_supply_profile",
    "constant_power_profile",
    "Supercapacitor",
    "PAPER_BUFFER_CAPACITANCE_F",
    "PAPER_MINIMUM_CAPACITANCE_F",
]
