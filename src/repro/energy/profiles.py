"""Canonical supply profiles used across the paper's evaluation rigs.

These are the pure trace/constant builders behind the experiment setups:

* :func:`solar_irradiance_trace` — the synthetic outdoor irradiance of
  Sections V-B/C/D, phased to the paper's 10:30 test window;
* :func:`fig11_supply_profile` — the controlled variable-voltage profile of
  Section V-A / Fig. 11;
* :data:`PV_TARGET_VOLTAGE` — the calibrated maximum-power-point voltage used
  as V_target.

They live in :mod:`repro.energy` (rather than the experiments layer) so that
the scenario-component registries in :mod:`repro.sweep.components` can build
supplies from plain data without importing experiment harnesses.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .irradiance import (
    ClearSkyModel,
    IrradianceGenerator,
    ShadowingEvent,
    WeatherCondition,
)
from .traces import IrradianceTrace, Trace

__all__ = [
    "PV_TARGET_VOLTAGE",
    "PAPER_TEST_START_S",
    "solar_irradiance_trace",
    "fig11_supply_profile",
    "constant_power_profile",
]

#: The calibrated maximum-power-point voltage used as V_target (Section V-B).
PV_TARGET_VOLTAGE = 5.3

#: The wall-clock start of the paper's outdoor runs (10:30 local time).
PAPER_TEST_START_S = 10.5 * 3600.0


def solar_irradiance_trace(
    duration_s: float,
    weather: WeatherCondition = WeatherCondition.FULL_SUN,
    start_time_of_day_s: float = PAPER_TEST_START_S,
    dt: float = 1.0,
    seed: int = 7,
    shadowing_events: Sequence[ShadowingEvent] = (),
) -> IrradianceTrace:
    """A synthetic outdoor irradiance trace aligned with the paper's test window.

    Times in the returned trace start at 0 (the start of the experiment); the
    diurnal envelope is phased so that t=0 corresponds to
    ``start_time_of_day_s`` seconds after local midnight (10:30 by default,
    matching Fig. 12/14's x-axes).
    """
    generator = IrradianceGenerator(ClearSkyModel(), seed=seed)
    trace = generator.generate(
        t_start=start_time_of_day_s,
        duration=duration_s,
        dt=dt,
        weather=weather,
        shadowing_events=shadowing_events,
    )
    return IrradianceTrace(trace.times - start_time_of_day_s, trace.values, name="irradiance")


def fig11_supply_profile(duration_s: float = 170.0, dt: float = 0.05) -> Trace:
    """The controlled variable-voltage profile used in Section V-A / Fig. 11.

    A slowly wandering supply voltage between roughly 4.4 V and 5.6 V with a
    small ripple ("A") and one sudden deep drop ("B"), matching the character
    of the published trace.
    """
    times = np.arange(0.0, duration_s + 0.5 * dt, dt)
    base = 5.1 + 0.45 * np.sin(2.0 * np.pi * times / 90.0)
    ripple = 0.08 * np.sin(2.0 * np.pi * times / 7.0)
    voltage = base + ripple
    # Sudden reduction at t ~= 100 s (point 'B' in Fig. 11), recovering at 120 s.
    drop = (times >= 100.0) & (times < 120.0)
    voltage = np.where(drop, voltage - 0.9, voltage)
    voltage = np.clip(voltage, 4.25, 5.65)
    return Trace(times=times, values=voltage, name="controlled_supply", units="V")


def constant_power_profile(duration_s: float, power_w: float) -> Trace:
    """A flat prescribed-power profile (the idealised Fig. 3 style source)."""
    if power_w < 0:
        raise ValueError("power_w must be non-negative")
    return Trace(
        times=np.array([0.0, max(duration_s, 1e-9)]),
        values=np.array([power_w, power_w]),
        name="constant_power",
        units="W",
    )
