"""Single-diode photovoltaic cell model.

The paper models its PV energy-harvesting source with the classic
single-diode equivalent circuit (paper eq. 4):

    I = I_l - I_0 * (exp((V + Rs*I) / (N * Vt)) - 1) - (V + Rs*I) / Rp

where

* ``I_l``  -- light-generated (photo) current, proportional to irradiance,
* ``I_0``  -- diode reverse-saturation current,
* ``Rs``   -- lumped series resistance,
* ``Rp``   -- lumped parallel (shunt) resistance,
* ``N``    -- diode ideality (quality) factor,
* ``Vt``   -- thermal voltage (kT/q, about 25.85 mV at 300 K).

The equation is implicit in ``I``.  This module solves it exactly using the
Lambert-W function (the standard closed-form rearrangement), with a robust
bisection fallback for extreme parameter values.

Only the cell-level model lives here; series/parallel composition into an
array (and the calibrated arrays used by the paper) live in
:mod:`repro.energy.pv_array`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np
from scipy.special import lambertw

__all__ = [
    "BOLTZMANN_CONSTANT",
    "ELEMENTARY_CHARGE",
    "thermal_voltage",
    "SolarCellParameters",
    "SolarCell",
    "MPPResult",
]

#: Boltzmann constant in J/K.
BOLTZMANN_CONSTANT = 1.380649e-23
#: Elementary charge in C.
ELEMENTARY_CHARGE = 1.602176634e-19

#: Standard test-condition irradiance in W/m^2.
STC_IRRADIANCE = 1000.0


def thermal_voltage(temperature_k: float = 300.0) -> float:
    """Return the thermal voltage ``kT/q`` in volts for a temperature in K."""
    if temperature_k <= 0:
        raise ValueError(f"temperature must be positive, got {temperature_k}")
    return BOLTZMANN_CONSTANT * temperature_k / ELEMENTARY_CHARGE


@dataclass(frozen=True)
class SolarCellParameters:
    """Parameters of the single-diode cell model.

    Attributes
    ----------
    photo_current_stc:
        Light-generated current ``I_l`` at standard test conditions
        (1000 W/m^2), in amperes.  The photo current scales linearly with
        irradiance.
    saturation_current:
        Diode reverse-saturation current ``I_0`` in amperes.
    series_resistance:
        Series resistance ``Rs`` in ohms.
    shunt_resistance:
        Parallel (shunt) resistance ``Rp`` in ohms.
    ideality_factor:
        Diode ideality factor ``N`` (dimensionless, typically 1-2).
    temperature_k:
        Cell temperature in kelvin (sets the thermal voltage).
    area_cm2:
        Active cell area in cm^2 (metadata; used for irradiance-to-power
        book-keeping and reporting, not by the electrical model itself).
    """

    photo_current_stc: float
    saturation_current: float = 1e-9
    series_resistance: float = 0.02
    shunt_resistance: float = 50.0
    ideality_factor: float = 1.3
    temperature_k: float = 300.0
    area_cm2: float = 25.0

    def __post_init__(self) -> None:
        if self.photo_current_stc <= 0:
            raise ValueError("photo_current_stc must be positive")
        if self.saturation_current <= 0:
            raise ValueError("saturation_current must be positive")
        if self.series_resistance < 0:
            raise ValueError("series_resistance must be non-negative")
        if self.shunt_resistance <= 0:
            raise ValueError("shunt_resistance must be positive")
        if self.ideality_factor <= 0:
            raise ValueError("ideality_factor must be positive")
        if self.temperature_k <= 0:
            raise ValueError("temperature_k must be positive")
        if self.area_cm2 <= 0:
            raise ValueError("area_cm2 must be positive")

    @property
    def thermal_voltage(self) -> float:
        """Thermal voltage ``Vt`` in volts at the configured temperature."""
        return thermal_voltage(self.temperature_k)

    @property
    def modified_thermal_voltage(self) -> float:
        """``N * Vt`` -- the denominator of the diode exponential."""
        return self.ideality_factor * self.thermal_voltage

    def with_temperature(self, temperature_k: float) -> "SolarCellParameters":
        """Return a copy of the parameters at a different temperature."""
        return replace(self, temperature_k=temperature_k)


@dataclass(frozen=True)
class MPPResult:
    """Maximum-power-point of an I-V curve."""

    voltage: float
    current: float
    power: float


class SolarCell:
    """Single-diode PV cell solved with the Lambert-W function.

    Parameters
    ----------
    parameters:
        Electrical parameters of the cell.

    Notes
    -----
    The model is purely static: given a terminal voltage and an irradiance it
    returns the terminal current.  Dynamic behaviour (capacitance, the node
    equation) is handled by :mod:`repro.sim.circuit`.
    """

    def __init__(self, parameters: SolarCellParameters):
        self.parameters = parameters

    # ------------------------------------------------------------------
    # Photo current
    # ------------------------------------------------------------------
    def photo_current(self, irradiance_w_m2: float) -> float:
        """Light-generated current for a given irradiance (clipped at 0)."""
        if irradiance_w_m2 <= 0:
            return 0.0
        return self.parameters.photo_current_stc * irradiance_w_m2 / STC_IRRADIANCE

    # ------------------------------------------------------------------
    # I-V relationship
    # ------------------------------------------------------------------
    def current(self, voltage: float, irradiance_w_m2: float = STC_IRRADIANCE) -> float:
        """Terminal current (A) at a terminal voltage (V) and irradiance.

        Uses the explicit Lambert-W solution of the implicit single-diode
        equation.  The returned current is clipped below at zero: the
        harvesting node cannot sink current back into the array (the paper's
        circuit has no path for reverse current into the PV source while the
        load is a CPU).
        """
        i = self._current_unclipped(voltage, irradiance_w_m2)
        return max(i, 0.0)

    def current_array(
        self, voltages: np.ndarray, irradiance_w_m2: float = STC_IRRADIANCE
    ) -> np.ndarray:
        """Vectorised :meth:`current` over an array of voltages.

        One Lambert-W evaluation over the whole array instead of a Python
        loop of scalar solves; used by :meth:`iv_curve`,
        :meth:`maximum_power_point` and the I-V surface tabulation of
        :class:`repro.sim.supplies.PVArraySupply`.
        """
        voltages = np.asarray(voltages, dtype=float)
        return self._current_clipped_vec(voltages, float(irradiance_w_m2))

    def current_surface(
        self, voltages: np.ndarray, irradiances: np.ndarray
    ) -> np.ndarray:
        """Clipped terminal currents on a (voltage x irradiance) outer grid.

        Returns an array of shape ``(len(voltages), len(irradiances))`` with
        ``out[i, j] = current(voltages[i], irradiances[j])``, computed with a
        single vectorised Lambert-W evaluation.
        """
        voltages = np.asarray(voltages, dtype=float)
        irradiances = np.asarray(irradiances, dtype=float)
        return self._current_clipped_vec(voltages[:, None], irradiances[None, :])

    def _current_clipped_vec(self, voltages, irradiances) -> np.ndarray:
        """Vectorised clipped current with the scalar path's special cases."""
        out = self._current_unclipped_vec(voltages, irradiances)
        # Mirror the scalar shortcut: a dark cell at non-positive voltage
        # sources no current (the formula would report the shunt path).
        dark = (np.asarray(irradiances) <= 0.0) & (np.asarray(voltages) <= 0.0)
        if np.any(dark):
            out = np.where(np.broadcast_to(dark, out.shape), 0.0, out)
        return np.maximum(out, 0.0)

    def _current_unclipped_vec(self, voltages, irradiances) -> np.ndarray:
        """Vectorised :meth:`_current_unclipped` (broadcasting inputs)."""
        p = self.parameters
        v = np.asarray(voltages, dtype=float)
        g = np.asarray(irradiances, dtype=float)
        i_l = p.photo_current_stc * np.clip(g, 0.0, None) / STC_IRRADIANCE
        rs = p.series_resistance
        rp = p.shunt_resistance
        i0 = p.saturation_current
        nvt = p.modified_thermal_voltage

        if rs == 0.0:
            with np.errstate(over="ignore"):
                exp_term = np.exp(np.minimum(v / nvt, 700.0))
            return i_l - i0 * (exp_term - 1.0) - v / rp

        denom = nvt * (rs + rp)
        exponent = rp * (rs * i_l + rs * i0 + v) / denom
        safe = exponent <= 690.0
        x = (rs * rp * i0) / denom * np.exp(np.where(safe, exponent, 0.0))
        w = lambertw(x).real
        out = np.asarray((rp * (i_l + i0) - v) / (rs + rp) - (nvt / rs) * w, dtype=float)

        if not np.all(safe):
            # exp() would overflow double precision for these elements; fall
            # back to the numerically-safe scalar bisection, as current() does.
            out = np.array(out, dtype=float)  # ensure writable, broadcast-free
            v_b = np.broadcast_to(v, out.shape)
            i_l_b = np.broadcast_to(i_l, out.shape)
            for idx in np.argwhere(~np.broadcast_to(safe, out.shape)):
                key = tuple(idx)
                out[key] = self._current_bisection(float(v_b[key]), float(i_l_b[key]))
        return out

    def open_circuit_voltage_array(self, irradiances: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`open_circuit_voltage` over an irradiance array.

        Runs the same bracket-expansion + bisection as the scalar method, but
        on all irradiances at once (one Lambert-W array evaluation per
        bisection iteration instead of one scalar solve).
        """
        g = np.asarray(irradiances, dtype=float)
        positive = g > 0.0
        hi = np.ones_like(g)
        for _ in range(20):
            growing = positive & (self._current_unclipped_vec(hi, g) > 0.0) & (hi < 1e4)
            if not np.any(growing):
                break
            hi = np.where(growing, hi * 2.0, hi)
        lo = np.zeros_like(g)
        for _ in range(100):
            mid = 0.5 * (lo + hi)
            above = self._current_unclipped_vec(mid, g) > 0.0
            lo = np.where(above, mid, lo)
            hi = np.where(above, hi, mid)
        out = 0.5 * (lo + hi)
        return np.where(positive, out, 0.0)

    def _current_unclipped(self, voltage: float, irradiance_w_m2: float) -> float:
        p = self.parameters
        i_l = self.photo_current(irradiance_w_m2)
        rs = p.series_resistance
        rp = p.shunt_resistance
        i0 = p.saturation_current
        nvt = p.modified_thermal_voltage

        if i_l == 0.0 and voltage <= 0.0:
            return 0.0

        if rs == 0.0:
            # Explicit when there is no series resistance.
            return i_l - i0 * (math.exp(voltage / nvt) - 1.0) - voltage / rp

        # Lambert-W closed form.  Writing the implicit equation as
        #   I = I_l - I_0 (exp((V + Rs I)/(N Vt)) - 1) - (V + Rs I)/Rp
        # the solution is
        #   I = (Rp (I_l + I_0) - V) / (Rs + Rp)
        #       - (N Vt / Rs) * W( x )
        # with
        #   x = (Rs Rp I_0)/(N Vt (Rs + Rp))
        #       * exp( Rp (Rs I_l + Rs I_0 + V) / (N Vt (Rs + Rp)) ).
        try:
            exponent = rp * (rs * i_l + rs * i0 + voltage) / (nvt * (rs + rp))
            if exponent > 690.0:
                # exp() would overflow double precision; fall back to a
                # numerically-safe bisection on the implicit equation.
                return self._current_bisection(voltage, i_l)
            x = (rs * rp * i0) / (nvt * (rs + rp)) * math.exp(exponent)
            w = float(lambertw(x).real)
            return (rp * (i_l + i0) - voltage) / (rs + rp) - (nvt / rs) * w
        except (OverflowError, FloatingPointError):
            return self._current_bisection(voltage, i_l)

    def _current_bisection(self, voltage: float, i_l: float) -> float:
        """Bisection fallback for the implicit diode equation."""
        p = self.parameters
        nvt = p.modified_thermal_voltage

        def residual(i: float) -> float:
            vd = voltage + p.series_resistance * i
            # Guard the exponential so the bracket search itself cannot
            # overflow; residual sign is all bisection needs.
            arg = min(vd / nvt, 700.0)
            return i_l - p.saturation_current * (math.exp(arg) - 1.0) - vd / p.shunt_resistance - i

        lo, hi = -1.0, i_l + 1.0
        r_lo, r_hi = residual(lo), residual(hi)
        if r_lo * r_hi > 0:
            # No sign change in the expected bracket -- the cell is far into
            # reverse breakdown territory; report zero current.
            return 0.0
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            r_mid = residual(mid)
            if abs(r_mid) < 1e-12:
                return mid
            if r_lo * r_mid <= 0:
                hi, r_hi = mid, r_mid
            else:
                lo, r_lo = mid, r_mid
        return 0.5 * (lo + hi)

    def power(self, voltage: float, irradiance_w_m2: float = STC_IRRADIANCE) -> float:
        """Electrical output power (W) at a terminal voltage."""
        return voltage * self.current(voltage, irradiance_w_m2)

    # ------------------------------------------------------------------
    # Characteristic points
    # ------------------------------------------------------------------
    def short_circuit_current(self, irradiance_w_m2: float = STC_IRRADIANCE) -> float:
        """Short-circuit current ``I_sc`` at a given irradiance."""
        return self.current(0.0, irradiance_w_m2)

    def open_circuit_voltage(self, irradiance_w_m2: float = STC_IRRADIANCE) -> float:
        """Open-circuit voltage ``V_oc`` found by bisection on I(V) = 0."""
        if irradiance_w_m2 <= 0:
            return 0.0
        lo = 0.0
        hi = 1.0
        # Expand the bracket until the current goes negative (unclipped).
        while self._current_unclipped(hi, irradiance_w_m2) > 0 and hi < 1e4:
            hi *= 2.0
        for _ in range(100):
            mid = 0.5 * (lo + hi)
            if self._current_unclipped(mid, irradiance_w_m2) > 0:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def iv_curve(
        self,
        irradiance_w_m2: float = STC_IRRADIANCE,
        points: int = 200,
        v_max: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(voltages, currents)`` sampling the I-V curve.

        ``v_max`` defaults to the open-circuit voltage at the requested
        irradiance.
        """
        if points < 2:
            raise ValueError("points must be at least 2")
        if v_max is None:
            v_max = self.open_circuit_voltage(irradiance_w_m2)
        voltages = np.linspace(0.0, max(v_max, 1e-9), points)
        currents = self.current_array(voltages, irradiance_w_m2)
        return voltages, currents

    def maximum_power_point(
        self, irradiance_w_m2: float = STC_IRRADIANCE, points: int = 400
    ) -> MPPResult:
        """Locate the maximum power point by golden-section refinement.

        A coarse scan over the I-V curve locates the neighbourhood of the
        maximum; a golden-section search then refines it.
        """
        if irradiance_w_m2 <= 0:
            return MPPResult(0.0, 0.0, 0.0)
        voc = self.open_circuit_voltage(irradiance_w_m2)
        voltages = np.linspace(0.0, voc, points)
        powers = voltages * self.current_array(voltages, irradiance_w_m2)
        k = int(np.argmax(powers))
        lo = voltages[max(k - 1, 0)]
        hi = voltages[min(k + 1, points - 1)]

        phi = (math.sqrt(5.0) - 1.0) / 2.0
        a, b = lo, hi
        c = b - phi * (b - a)
        d = a + phi * (b - a)
        for _ in range(80):
            if self.power(c, irradiance_w_m2) > self.power(d, irradiance_w_m2):
                b = d
            else:
                a = c
            c = b - phi * (b - a)
            d = a + phi * (b - a)
            if abs(b - a) < 1e-9:
                break
        v_mpp = 0.5 * (a + b)
        i_mpp = self.current(v_mpp, irradiance_w_m2)
        return MPPResult(voltage=v_mpp, current=i_mpp, power=v_mpp * i_mpp)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        p = self.parameters
        return (
            f"SolarCell(I_l={p.photo_current_stc:.3f}A, I_0={p.saturation_current:.2e}A, "
            f"Rs={p.series_resistance:.3f}Ω, Rp={p.shunt_resistance:.1f}Ω, N={p.ideality_factor:.2f})"
        )
