"""Photovoltaic arrays: series/parallel compositions of single-diode cells.

The paper uses two PV artefacts:

* a **250 cm² monocrystalline cell** whose daily power output (about 1 W peak)
  is shown in Fig. 1 to motivate micro/macro variability, and
* a **1340 cm² monocrystalline array** used for the experimental validation,
  with a calibrated maximum power point of about 5.3 V and a peak power of
  roughly 5-6 W (Fig. 13).

Both are modelled here as a number of identical single-diode cells in series
(and optionally parallel strings).  Factory helpers return arrays calibrated
to the paper's I-V envelope.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .solar_cell import MPPResult, STC_IRRADIANCE, SolarCell, SolarCellParameters

__all__ = [
    "PVArray",
    "paper_pv_array",
    "fig1_small_cell",
    "PAPER_ARRAY_AREA_CM2",
    "FIG1_CELL_AREA_CM2",
]

#: Area of the experimental-validation array (Section V-B).
PAPER_ARRAY_AREA_CM2 = 1340.0
#: Area of the cell whose day-long output is shown in Fig. 1.
FIG1_CELL_AREA_CM2 = 250.0


@dataclass(frozen=True)
class _ArrayTopology:
    """Series/parallel arrangement of identical cells."""

    cells_in_series: int
    strings_in_parallel: int

    def __post_init__(self) -> None:
        if self.cells_in_series < 1:
            raise ValueError("cells_in_series must be >= 1")
        if self.strings_in_parallel < 1:
            raise ValueError("strings_in_parallel must be >= 1")


class PVArray:
    """A PV array built from identical single-diode cells.

    Terminal voltage divides equally over the series cells of a string and
    string currents add; because all cells are identical this reduces to a
    simple voltage/current scaling of the underlying cell model.  (Partial
    shading of individual cells is represented at the irradiance level -- the
    whole array sees one irradiance value per time step, which is how the
    paper's traces are recorded.)

    Parameters
    ----------
    cell_parameters:
        Parameters of one constituent cell.
    cells_in_series:
        Number of cells per series string.
    strings_in_parallel:
        Number of parallel strings.
    name:
        Human-readable identifier used in reports.
    """

    def __init__(
        self,
        cell_parameters: SolarCellParameters,
        cells_in_series: int = 1,
        strings_in_parallel: int = 1,
        name: str = "pv-array",
    ):
        self.cell = SolarCell(cell_parameters)
        self.topology = _ArrayTopology(cells_in_series, strings_in_parallel)
        self.name = name

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def cells_in_series(self) -> int:
        return self.topology.cells_in_series

    @property
    def strings_in_parallel(self) -> int:
        return self.topology.strings_in_parallel

    @property
    def area_cm2(self) -> float:
        """Total active area of the array."""
        n_cells = self.cells_in_series * self.strings_in_parallel
        return n_cells * self.cell.parameters.area_cm2

    # ------------------------------------------------------------------
    # Electrical model
    # ------------------------------------------------------------------
    def current(self, voltage: float, irradiance_w_m2: float = STC_IRRADIANCE) -> float:
        """Array terminal current (A) at a terminal voltage (V)."""
        cell_voltage = voltage / self.cells_in_series
        cell_current = self.cell.current(cell_voltage, irradiance_w_m2)
        return cell_current * self.strings_in_parallel

    def current_array(
        self, voltages: np.ndarray, irradiance_w_m2: float = STC_IRRADIANCE
    ) -> np.ndarray:
        """Vectorised :meth:`current`."""
        voltages = np.asarray(voltages, dtype=float)
        cell_voltages = voltages / self.cells_in_series
        return self.cell.current_array(cell_voltages, irradiance_w_m2) * self.strings_in_parallel

    def current_surface(self, voltages: np.ndarray, irradiances: np.ndarray) -> np.ndarray:
        """Array currents on a (voltage x irradiance) outer grid.

        Shape ``(len(voltages), len(irradiances))``; one vectorised Lambert-W
        evaluation for the whole surface.  This is what the fast-path I-V
        tabulation of :class:`repro.sim.supplies.PVArraySupply` samples.
        """
        voltages = np.asarray(voltages, dtype=float)
        cell_voltages = voltages / self.cells_in_series
        return self.cell.current_surface(cell_voltages, irradiances) * self.strings_in_parallel

    def open_circuit_voltage_array(self, irradiances: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`open_circuit_voltage`."""
        return self.cell.open_circuit_voltage_array(irradiances) * self.cells_in_series

    def mpp_power_array(self, irradiances: np.ndarray, voltage_points: int = 512) -> np.ndarray:
        """Maximum extractable power per irradiance, by dense surface scan.

        A vectorised stand-in for calling :meth:`power_at_mpp` per irradiance:
        the power surface is sampled on ``voltage_points`` voltages up to the
        largest open-circuit voltage and maximised per column.  With the
        default grid the scan sits well inside the interpolation tolerance of
        the supply-level MPP cache that consumes it.
        """
        if voltage_points < 2:
            raise ValueError("voltage_points must be at least 2")
        g = np.asarray(irradiances, dtype=float)
        voc = self.open_circuit_voltage_array(g)
        v_max = float(np.max(voc)) if len(voc) else 0.0
        if v_max <= 0.0:
            return np.zeros_like(g)
        voltages = np.linspace(0.0, v_max, voltage_points)
        powers = voltages[:, None] * self.current_surface(voltages, g)
        return np.max(powers, axis=0)

    def power(self, voltage: float, irradiance_w_m2: float = STC_IRRADIANCE) -> float:
        """Array output power (W) at a terminal voltage."""
        return voltage * self.current(voltage, irradiance_w_m2)

    def short_circuit_current(self, irradiance_w_m2: float = STC_IRRADIANCE) -> float:
        return self.cell.short_circuit_current(irradiance_w_m2) * self.strings_in_parallel

    def open_circuit_voltage(self, irradiance_w_m2: float = STC_IRRADIANCE) -> float:
        return self.cell.open_circuit_voltage(irradiance_w_m2) * self.cells_in_series

    def iv_curve(
        self,
        irradiance_w_m2: float = STC_IRRADIANCE,
        points: int = 200,
        v_max: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(voltages, currents)`` for the full array."""
        if v_max is None:
            v_max = self.open_circuit_voltage(irradiance_w_m2)
        voltages = np.linspace(0.0, max(v_max, 1e-9), points)
        return voltages, self.current_array(voltages, irradiance_w_m2)

    def maximum_power_point(self, irradiance_w_m2: float = STC_IRRADIANCE) -> MPPResult:
        """Maximum power point of the whole array."""
        cell_mpp = self.cell.maximum_power_point(irradiance_w_m2)
        return MPPResult(
            voltage=cell_mpp.voltage * self.cells_in_series,
            current=cell_mpp.current * self.strings_in_parallel,
            power=cell_mpp.power * self.cells_in_series * self.strings_in_parallel,
        )

    def power_at_mpp(self, irradiance_w_m2: float = STC_IRRADIANCE) -> float:
        """Maximum extractable power at the given irradiance."""
        return self.maximum_power_point(irradiance_w_m2).power

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PVArray(name={self.name!r}, series={self.cells_in_series}, "
            f"parallel={self.strings_in_parallel}, area={self.area_cm2:.0f}cm2)"
        )


# ----------------------------------------------------------------------
# Calibrated arrays from the paper
# ----------------------------------------------------------------------
def paper_pv_array(temperature_k: float = 300.0) -> PVArray:
    """The 1340 cm² monocrystalline array used for experimental validation.

    Calibration targets (paper Fig. 13 and Section V-B):

    * open-circuit voltage just under 7 V (x-axis of Fig. 13 ends near 7 V),
    * short-circuit current about 1.2 A at full sun,
    * maximum power point near 5.3 V (the calibrated V_target) with a peak
      power of roughly 5.5-6 W.

    Ten series cells of ~0.68 V V_oc each give V_oc ≈ 6.8 V, I_sc ≈ 1.24 A and
    an MPP of ≈ 5.2 V / ≈ 5.7 W with the chosen ideality factor and
    resistances (fitted numerically against those anchors).
    """
    cells_in_series = 10
    cell = SolarCellParameters(
        photo_current_stc=1.25,
        saturation_current=2.0e-9,
        series_resistance=0.06,
        shunt_resistance=8.0,
        ideality_factor=1.30,
        temperature_k=temperature_k,
        area_cm2=PAPER_ARRAY_AREA_CM2 / cells_in_series,
    )
    return PVArray(
        cell,
        cells_in_series=cells_in_series,
        strings_in_parallel=1,
        name="paper-1340cm2-monocrystalline",
    )


def fig1_small_cell(temperature_k: float = 300.0) -> PVArray:
    """The 250 cm² cell whose daily power output is shown in Fig. 1.

    Calibrated to peak at roughly 1 W under full sun (Fig. 1's y-axis tops out
    at 1.0 W), with the same per-area characteristics as the large array.
    """
    cells_in_series = 4
    cell = SolarCellParameters(
        photo_current_stc=0.55,
        saturation_current=2.0e-9,
        series_resistance=0.10,
        shunt_resistance=10.0,
        ideality_factor=1.30,
        temperature_k=temperature_k,
        area_cm2=FIG1_CELL_AREA_CM2 / cells_in_series,
    )
    return PVArray(
        cell,
        cells_in_series=cells_in_series,
        strings_in_parallel=1,
        name="fig1-250cm2-cell",
    )
