"""Synthetic solar-irradiance generation.

The paper drives its Simulink model and hardware experiments with recorded
solar data (DOI:10.5258/SOTON/403155) exhibiting

* **macro variability** -- the slow diurnal bell curve, and
* **micro variability** -- rapid dips caused by shadowing and passing clouds.

That dataset is not redistributable here, so this module synthesises
statistically similar irradiance traces: a clear-sky diurnal envelope
modulated by a two-state (clear/occluded) cloud process plus short shadowing
events, with presets for the weather conditions the paper tested under
(full sun, partial sun, cloud, hail).  All generation is seedable and
deterministic, so tests and benchmarks are reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Sequence

import numpy as np

from .traces import IrradianceTrace

__all__ = [
    "WeatherCondition",
    "ClearSkyModel",
    "CloudModel",
    "ShadowingEvent",
    "IrradianceGenerator",
    "constant_irradiance",
    "step_irradiance",
    "ramped_shadow_irradiance",
    "sinusoidal_irradiance",
]

#: Seconds in one day.
SECONDS_PER_DAY = 86_400.0


class WeatherCondition(str, Enum):
    """Weather presets matching the conditions tested in Section V-B."""

    FULL_SUN = "full_sun"
    PARTIAL_SUN = "partial_sun"
    CLOUD = "cloud"
    HAIL = "hail"


@dataclass(frozen=True)
class ClearSkyModel:
    """Clear-sky diurnal irradiance envelope.

    A raised-cosine (solar-elevation-like) profile between sunrise and sunset:

        G(t) = G_peak * max(0, sin(pi * (t - sunrise) / (sunset - sunrise)))^p

    Attributes
    ----------
    peak_irradiance_w_m2:
        Irradiance at solar noon under a clear sky.
    sunrise_s / sunset_s:
        Sunrise and sunset instants as seconds since local midnight.
    shape_exponent:
        Sharpens (>1) or flattens (<1) the bell.
    """

    peak_irradiance_w_m2: float = 1000.0
    sunrise_s: float = 6.0 * 3600.0
    sunset_s: float = 20.0 * 3600.0
    shape_exponent: float = 1.2

    def __post_init__(self) -> None:
        if self.peak_irradiance_w_m2 <= 0:
            raise ValueError("peak_irradiance_w_m2 must be positive")
        if not 0.0 <= self.sunrise_s < self.sunset_s <= SECONDS_PER_DAY:
            raise ValueError("require 0 <= sunrise < sunset <= 86400")
        if self.shape_exponent <= 0:
            raise ValueError("shape_exponent must be positive")

    def irradiance(self, time_of_day_s: float) -> float:
        """Clear-sky irradiance at a time of day (seconds since midnight)."""
        t = time_of_day_s % SECONDS_PER_DAY
        if t <= self.sunrise_s or t >= self.sunset_s:
            return 0.0
        phase = (t - self.sunrise_s) / (self.sunset_s - self.sunrise_s)
        return self.peak_irradiance_w_m2 * math.sin(math.pi * phase) ** self.shape_exponent

    def irradiance_array(self, times_of_day_s: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`irradiance`."""
        t = np.asarray(times_of_day_s, dtype=float) % SECONDS_PER_DAY
        phase = (t - self.sunrise_s) / (self.sunset_s - self.sunrise_s)
        envelope = np.where(
            (t > self.sunrise_s) & (t < self.sunset_s),
            np.sin(np.pi * np.clip(phase, 0.0, 1.0)) ** self.shape_exponent,
            0.0,
        )
        return self.peak_irradiance_w_m2 * envelope


@dataclass(frozen=True)
class CloudModel:
    """Two-state Markov cloud-occlusion process ("micro" variability).

    The sky alternates between *clear* and *occluded*.  Sojourn times are
    exponentially distributed with the configured means; while occluded the
    irradiance is multiplied by an attenuation drawn uniformly from
    ``[attenuation_min, attenuation_max]``.  Transitions are smoothed with a
    first-order lag so cloud edges take a few seconds, as in real traces.
    """

    mean_clear_duration_s: float = 600.0
    mean_occluded_duration_s: float = 120.0
    attenuation_min: float = 0.15
    attenuation_max: float = 0.55
    edge_time_constant_s: float = 4.0

    def __post_init__(self) -> None:
        if self.mean_clear_duration_s <= 0 or self.mean_occluded_duration_s <= 0:
            raise ValueError("mean durations must be positive")
        if not 0.0 <= self.attenuation_min <= self.attenuation_max <= 1.0:
            raise ValueError("require 0 <= attenuation_min <= attenuation_max <= 1")
        if self.edge_time_constant_s <= 0:
            raise ValueError("edge_time_constant_s must be positive")

    def attenuation_profile(
        self, times: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Multiplicative attenuation factor (1 = clear) for each sample time."""
        times = np.asarray(times, dtype=float)
        if len(times) == 0:
            return np.ones(0)
        duration = float(times[-1] - times[0])
        # Generate the piecewise-constant target attenuation.
        t = float(times[0])
        segments: list[tuple[float, float]] = []  # (start_time, attenuation)
        clear = True
        while t <= times[-1]:
            if clear:
                segments.append((t, 1.0))
                t += rng.exponential(self.mean_clear_duration_s)
            else:
                factor = rng.uniform(self.attenuation_min, self.attenuation_max)
                segments.append((t, factor))
                t += rng.exponential(self.mean_occluded_duration_s)
            clear = not clear
        seg_times = np.array([s[0] for s in segments])
        seg_values = np.array([s[1] for s in segments])
        idx = np.searchsorted(seg_times, times, side="right") - 1
        target = seg_values[np.clip(idx, 0, len(seg_values) - 1)]
        # First-order smoothing of the edges.
        out = np.empty_like(target)
        out[0] = target[0]
        for i in range(1, len(target)):
            dt = times[i] - times[i - 1]
            a = 1.0 - math.exp(-dt / self.edge_time_constant_s)
            out[i] = out[i - 1] + a * (target[i] - out[i - 1])
        return out


@dataclass(frozen=True)
class ShadowingEvent:
    """A deterministic shadowing episode (e.g. a person walking past the array).

    The irradiance is multiplied by ``attenuation`` between ``start_s`` and
    ``start_s + duration_s`` with linear ramps of ``ramp_s`` on either side.
    """

    start_s: float
    duration_s: float
    attenuation: float = 0.2
    ramp_s: float = 0.5

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not 0.0 <= self.attenuation <= 1.0:
            raise ValueError("attenuation must be in [0, 1]")
        if self.ramp_s < 0:
            raise ValueError("ramp_s must be non-negative")

    def factor(self, t: float) -> float:
        """Multiplicative factor applied to the irradiance at time ``t``."""
        end = self.start_s + self.duration_s
        if t <= self.start_s - self.ramp_s or t >= end + self.ramp_s:
            return 1.0
        if self.start_s <= t <= end:
            return self.attenuation
        if t < self.start_s:  # rising edge of the shadow
            frac = (self.start_s - t) / self.ramp_s if self.ramp_s > 0 else 0.0
            return self.attenuation + (1.0 - self.attenuation) * frac
        frac = (t - end) / self.ramp_s if self.ramp_s > 0 else 0.0
        return self.attenuation + (1.0 - self.attenuation) * frac


#: Per-weather tuning of the cloud process and overall attenuation.
_WEATHER_PRESETS: dict[WeatherCondition, dict] = {
    WeatherCondition.FULL_SUN: dict(
        sky_factor=1.0,
        cloud=CloudModel(
            mean_clear_duration_s=1800.0,
            mean_occluded_duration_s=45.0,
            attenuation_min=0.55,
            attenuation_max=0.85,
        ),
    ),
    WeatherCondition.PARTIAL_SUN: dict(
        sky_factor=0.85,
        cloud=CloudModel(
            mean_clear_duration_s=420.0,
            mean_occluded_duration_s=180.0,
            attenuation_min=0.3,
            attenuation_max=0.7,
        ),
    ),
    WeatherCondition.CLOUD: dict(
        sky_factor=0.45,
        cloud=CloudModel(
            mean_clear_duration_s=120.0,
            mean_occluded_duration_s=600.0,
            attenuation_min=0.25,
            attenuation_max=0.6,
        ),
    ),
    WeatherCondition.HAIL: dict(
        sky_factor=0.3,
        cloud=CloudModel(
            mean_clear_duration_s=60.0,
            mean_occluded_duration_s=600.0,
            attenuation_min=0.1,
            attenuation_max=0.4,
        ),
    ),
}


class IrradianceGenerator:
    """Seedable generator of synthetic irradiance traces.

    Parameters
    ----------
    clear_sky:
        Diurnal envelope model.
    seed:
        Seed for the internal random generator (cloud process).
    """

    def __init__(self, clear_sky: ClearSkyModel | None = None, seed: int = 0):
        self.clear_sky = clear_sky if clear_sky is not None else ClearSkyModel()
        self.seed = seed

    def _rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    def generate_day(
        self,
        weather: WeatherCondition = WeatherCondition.FULL_SUN,
        dt: float = 1.0,
        shadowing_events: Sequence[ShadowingEvent] = (),
    ) -> IrradianceTrace:
        """Generate a full 24-hour irradiance trace.

        Times run from 0 (midnight) to 86 400 s with step ``dt``.
        """
        return self.generate(
            t_start=0.0,
            duration=SECONDS_PER_DAY,
            dt=dt,
            weather=weather,
            shadowing_events=shadowing_events,
        )

    def generate(
        self,
        t_start: float,
        duration: float,
        dt: float = 1.0,
        weather: WeatherCondition = WeatherCondition.FULL_SUN,
        shadowing_events: Sequence[ShadowingEvent] = (),
    ) -> IrradianceTrace:
        """Generate a trace over ``[t_start, t_start + duration]``.

        ``t_start`` is interpreted as seconds since local midnight so the
        diurnal envelope lines up with wall-clock times like the paper's
        10:30-16:30 test window.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        if dt <= 0:
            raise ValueError("dt must be positive")
        preset = _WEATHER_PRESETS[WeatherCondition(weather)]
        rng = self._rng()
        times = t_start + np.arange(0.0, duration + 0.5 * dt, dt)
        envelope = self.clear_sky.irradiance_array(times) * preset["sky_factor"]
        attenuation = preset["cloud"].attenuation_profile(times, rng)
        values = envelope * attenuation
        for event in shadowing_events:
            factors = np.array([event.factor(float(t)) for t in times])
            values = values * factors
        return IrradianceTrace(times=times, values=np.clip(values, 0.0, None))


# ----------------------------------------------------------------------
# Simple deterministic profiles used by unit tests and the concept figures
# ----------------------------------------------------------------------
def constant_irradiance(level_w_m2: float, duration: float, dt: float = 0.1) -> IrradianceTrace:
    """A flat irradiance trace."""
    times = np.arange(0.0, duration + 0.5 * dt, dt)
    return IrradianceTrace(times=times, values=np.full_like(times, float(level_w_m2)))


def step_irradiance(
    high_w_m2: float,
    low_w_m2: float,
    step_time: float,
    duration: float,
    dt: float = 0.01,
    recover_time: float | None = None,
) -> IrradianceTrace:
    """A sudden-shadowing profile: high, drop to low at ``step_time``.

    If ``recover_time`` is given the irradiance returns to the high level at
    that instant, mimicking a passing shadow (the scenario of paper Fig. 6).
    """
    times = np.arange(0.0, duration + 0.5 * dt, dt)
    values = np.where(times < step_time, float(high_w_m2), float(low_w_m2))
    if recover_time is not None:
        values = np.where(times >= recover_time, float(high_w_m2), values)
    return IrradianceTrace(times=times, values=values)


def ramped_shadow_irradiance(
    high_w_m2: float,
    low_w_m2: float,
    shadow_start: float,
    shadow_end: float,
    duration: float,
    ramp_s: float = 0.5,
    dt: float = 0.01,
) -> IrradianceTrace:
    """A shadowing episode with finite-slope edges.

    Real shadows (clouds, passers-by) attenuate the irradiance over a fraction
    of a second rather than instantaneously; the ramp duration controls how
    fast the harvested power collapses and therefore how hard the scenario is
    on the controller (paper Fig. 6 shows exactly such a ramped dip).
    """
    if duration <= 0 or dt <= 0:
        raise ValueError("duration and dt must be positive")
    if ramp_s < 0:
        raise ValueError("ramp_s must be non-negative")
    if not 0.0 <= shadow_start < shadow_end <= duration:
        raise ValueError("require 0 <= shadow_start < shadow_end <= duration")
    times = np.arange(0.0, duration + 0.5 * dt, dt)
    knots_t = [0.0, shadow_start, shadow_start + ramp_s, shadow_end, shadow_end + ramp_s, duration + ramp_s]
    knots_v = [high_w_m2, high_w_m2, low_w_m2, low_w_m2, high_w_m2, high_w_m2]
    values = np.interp(times, knots_t, knots_v)
    return IrradianceTrace(times=times, values=np.clip(values, 0.0, None))


def sinusoidal_irradiance(
    mean_w_m2: float,
    amplitude_w_m2: float,
    period_s: float,
    duration: float,
    dt: float = 0.01,
) -> IrradianceTrace:
    """A sinusoidally varying irradiance (the transient input of paper Fig. 3)."""
    if period_s <= 0:
        raise ValueError("period_s must be positive")
    times = np.arange(0.0, duration + 0.5 * dt, dt)
    values = mean_w_m2 + amplitude_w_m2 * np.sin(2.0 * np.pi * times / period_s)
    return IrradianceTrace(times=times, values=np.clip(values, 0.0, None))
