"""Time-series containers used throughout the reproduction.

The paper's evaluation is trace driven: solar irradiance recorded over a day
drives the PV model, and the resulting voltage/power/performance time series
are what the figures plot.  This module provides a small, dependency-free
trace abstraction with CSV persistence, resampling and interpolation, used for

* irradiance traces (W/m^2 vs time),
* harvested-power traces (W vs time, e.g. Fig. 1 and Fig. 14),
* arbitrary recorded signals from the simulator.
"""

from __future__ import annotations

import csv
from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Trace", "IrradianceTrace", "PowerTrace", "TraceCursor", "trace_from_function"]


@dataclass
class Trace:
    """A sampled scalar signal: monotonically increasing times and values.

    Attributes
    ----------
    times:
        Sample instants in seconds (monotonically non-decreasing).
    values:
        Sample values, same length as ``times``.
    name:
        Signal name (used for CSV headers and reports).
    units:
        Unit string for documentation purposes.
    """

    times: np.ndarray
    values: np.ndarray
    name: str = "signal"
    units: str = ""

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        if self.times.ndim != 1 or self.values.ndim != 1:
            raise ValueError("times and values must be one-dimensional")
        if len(self.times) != len(self.values):
            raise ValueError(
                f"times ({len(self.times)}) and values ({len(self.values)}) "
                "must have the same length"
            )
        if len(self.times) == 0:
            raise ValueError("a trace must contain at least one sample")
        if np.any(np.diff(self.times) < 0):
            raise ValueError("times must be monotonically non-decreasing")

    # ------------------------------------------------------------------
    # Basic containers protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self.times.tolist(), self.values.tolist()))

    @property
    def duration(self) -> float:
        """Time spanned by the trace in seconds."""
        return float(self.times[-1] - self.times[0])

    @property
    def start_time(self) -> float:
        return float(self.times[0])

    @property
    def end_time(self) -> float:
        return float(self.times[-1])

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def value_at(self, t: float) -> float:
        """Linearly interpolated value at time ``t`` (clamped at the ends)."""
        return float(np.interp(t, self.times, self.values))

    def cursor(self) -> "TraceCursor":
        """A stateful O(1)-amortised sampler for mostly-forward access."""
        return TraceCursor(self)

    def values_at(self, ts: Sequence[float] | np.ndarray) -> np.ndarray:
        """Vectorised :meth:`value_at`."""
        return np.interp(np.asarray(ts, dtype=float), self.times, self.values)

    def resample(self, dt: float) -> "Trace":
        """Return a copy resampled on a uniform grid with step ``dt``."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        n = max(int(round(self.duration / dt)) + 1, 2)
        new_times = self.start_time + np.arange(n) * dt
        new_times = new_times[new_times <= self.end_time + 1e-12]
        return type(self)(
            times=new_times,
            values=self.values_at(new_times),
            name=self.name,
            units=self.units,
        )

    def slice(self, t_start: float, t_end: float) -> "Trace":
        """Return the sub-trace between two times (inclusive, interpolated ends)."""
        if t_end < t_start:
            raise ValueError("t_end must be >= t_start")
        mask = (self.times > t_start) & (self.times < t_end)
        times = np.concatenate(([t_start], self.times[mask], [t_end]))
        values = np.concatenate(
            ([self.value_at(t_start)], self.values[mask], [self.value_at(t_end)])
        )
        return type(self)(times=times, values=values, name=self.name, units=self.units)

    def shifted(self, offset: float) -> "Trace":
        """Return a copy with all times shifted by ``offset`` seconds."""
        return type(self)(
            times=self.times + offset, values=self.values.copy(), name=self.name, units=self.units
        )

    def scaled(self, factor: float) -> "Trace":
        """Return a copy with all values multiplied by ``factor``."""
        return type(self)(
            times=self.times.copy(), values=self.values * factor, name=self.name, units=self.units
        )

    def map(self, fn: Callable[[float], float], name: str | None = None, units: str | None = None) -> "Trace":
        """Return a new trace with ``fn`` applied to every value."""
        mapped = np.array([fn(float(v)) for v in self.values])
        return Trace(
            times=self.times.copy(),
            values=mapped,
            name=name if name is not None else self.name,
            units=units if units is not None else self.units,
        )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def mean(self) -> float:
        """Time-weighted mean value of the trace."""
        if len(self) == 1:
            return float(self.values[0])
        return float(np.trapezoid(self.values, self.times) / self.duration)

    def minimum(self) -> float:
        return float(np.min(self.values))

    def maximum(self) -> float:
        return float(np.max(self.values))

    def integral(self) -> float:
        """Trapezoidal integral of value over time (e.g. energy for a power trace)."""
        if len(self) == 1:
            return 0.0
        return float(np.trapezoid(self.values, self.times))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save_csv(self, path: str | Path) -> None:
        """Write the trace to a two-column CSV file with a header row."""
        path = Path(path)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["time_s", self.name or "value"])
            for t, v in zip(self.times, self.values):
                writer.writerow([f"{t:.6f}", f"{v:.9g}"])

    @classmethod
    def load_csv(cls, path: str | Path, units: str = "") -> "Trace":
        """Load a trace from a two-column CSV file written by :meth:`save_csv`."""
        path = Path(path)
        times: list[float] = []
        values: list[float] = []
        name = "signal"
        with path.open(newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader)
            if len(header) >= 2:
                name = header[1]
            for row in reader:
                if not row:
                    continue
                times.append(float(row[0]))
                values.append(float(row[1]))
        return cls(times=np.array(times), values=np.array(values), name=name, units=units)


class TraceCursor:
    """Sequential sampler over a :class:`Trace` with an O(1) hot path.

    ``np.interp`` re-runs a binary search (plus array plumbing) on every
    scalar lookup, which dominates the simulator's per-step supply
    evaluation.  A cursor remembers the segment of the previous lookup:
    simulation time is (almost) monotone, so the next sample is found by
    advancing at most a few segments of plain Python floats.  Backward jumps
    fall back to a bisection re-seek, so the cursor is correct — just not
    O(1) — for arbitrary access patterns.

    Values match :meth:`Trace.value_at` (linear interpolation, clamped at the
    trace ends) up to floating-point rounding.
    """

    __slots__ = ("_times", "_values", "_n", "_i")

    def __init__(self, trace: "Trace"):
        self._times = [float(x) for x in trace.times]
        self._values = [float(x) for x in trace.values]
        self._n = len(self._times)
        self._i = 0

    def value(self, t: float) -> float:
        times = self._times
        n = self._n
        i = self._i
        if t < times[i]:
            # Backward jump: re-seek (rare in simulation use).
            i = bisect_right(times, t) - 1
            if i < 0:
                self._i = 0
                return self._values[0]
        while i + 1 < n and t >= times[i + 1]:
            i += 1
        self._i = i
        if i + 1 >= n:
            return self._values[-1]
        t0 = times[i]
        v0 = self._values[i]
        return v0 + (self._values[i + 1] - v0) * (t - t0) / (times[i + 1] - t0)


class IrradianceTrace(Trace):
    """A trace of solar irradiance in W/m^2."""

    def __init__(self, times, values, name: str = "irradiance", units: str = "W/m^2"):
        super().__init__(times=np.asarray(times), values=np.asarray(values), name=name, units=units)

    def clipped(self) -> "IrradianceTrace":
        """Return a copy with negative irradiance values clipped to zero."""
        return IrradianceTrace(self.times.copy(), np.clip(self.values, 0.0, None), self.name, self.units)


class PowerTrace(Trace):
    """A trace of electrical power in watts."""

    def __init__(self, times, values, name: str = "power", units: str = "W"):
        super().__init__(times=np.asarray(times), values=np.asarray(values), name=name, units=units)

    def energy_joules(self) -> float:
        """Total energy represented by the trace."""
        return self.integral()


def trace_from_function(
    fn: Callable[[float], float],
    duration: float,
    dt: float,
    name: str = "signal",
    units: str = "",
    t_start: float = 0.0,
) -> Trace:
    """Sample a function of time onto a uniform grid and wrap it in a Trace."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    if dt <= 0:
        raise ValueError("dt must be positive")
    times = t_start + np.arange(0.0, duration + dt * 0.5, dt)
    values = np.array([fn(float(t)) for t in times])
    return Trace(times=times, values=values, name=name, units=units)
