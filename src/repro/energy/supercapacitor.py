"""Buffer capacitor / supercapacitor model.

Power-neutral operation removes the *large* energy buffer, but a small
capacitance remains to carry the SoC through DVFS / hot-plug transition
latency (the paper sizes 15.4 mF as the minimum and uses 47 mF).  This module
models that capacitor: ideal capacitance plus equivalent series resistance and
a parallel leakage path, following the modelling approach of Weddell et al.
(paper reference [5]).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Supercapacitor", "PAPER_BUFFER_CAPACITANCE_F", "PAPER_MINIMUM_CAPACITANCE_F"]

#: The 47 mF capacitor used for the paper's experiments.
PAPER_BUFFER_CAPACITANCE_F = 47e-3
#: The minimum capacitance computed in Table I (core-then-frequency scenario).
PAPER_MINIMUM_CAPACITANCE_F = 15.4e-3


@dataclass
class Supercapacitor:
    """A capacitor with ESR and leakage, integrated explicitly by the simulator.

    Attributes
    ----------
    capacitance_f:
        Capacitance in farads.
    esr_ohm:
        Equivalent series resistance in ohms (adds a voltage drop between the
        internal capacitor voltage and the terminal).
    leakage_conductance_s:
        Parallel leakage conductance in siemens (I_leak = G * V).
    voltage:
        Present capacitor voltage in volts (state variable).
    max_voltage:
        Rated voltage; charging above it is clipped (a real supercapacitor
        would be protected by a clamp).
    """

    capacitance_f: float
    esr_ohm: float = 0.02
    leakage_conductance_s: float = 1e-6
    voltage: float = 0.0
    max_voltage: float = 10.0

    def __post_init__(self) -> None:
        if self.capacitance_f <= 0:
            raise ValueError("capacitance_f must be positive")
        if self.esr_ohm < 0:
            raise ValueError("esr_ohm must be non-negative")
        if self.leakage_conductance_s < 0:
            raise ValueError("leakage_conductance_s must be non-negative")
        if self.max_voltage <= 0:
            raise ValueError("max_voltage must be positive")
        if not 0.0 <= self.voltage <= self.max_voltage:
            raise ValueError("initial voltage must lie in [0, max_voltage]")

    # ------------------------------------------------------------------
    # Energy book-keeping
    # ------------------------------------------------------------------
    @property
    def charge_coulombs(self) -> float:
        """Stored charge Q = C * V."""
        return self.capacitance_f * self.voltage

    @property
    def energy_joules(self) -> float:
        """Stored energy E = C * V^2 / 2."""
        return 0.5 * self.capacitance_f * self.voltage * self.voltage

    def leakage_current(self, voltage: float | None = None) -> float:
        """Leakage current at the given (or present) voltage."""
        v = self.voltage if voltage is None else voltage
        return self.leakage_conductance_s * v

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def derivative(self, net_current_a: float, voltage: float | None = None) -> float:
        """dV/dt for a given net charging current (source minus load).

        Leakage is subtracted internally, so callers pass only the external
        net current into the node.
        """
        v = self.voltage if voltage is None else voltage
        return (net_current_a - self.leakage_current(v)) / self.capacitance_f

    def step(self, net_current_a: float, dt: float) -> float:
        """Advance the capacitor voltage by ``dt`` seconds (explicit Euler).

        Returns the new voltage.  The system simulator uses its own
        integrator; this method exists for standalone capacitor experiments
        and unit tests.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.voltage += self.derivative(net_current_a) * dt
        self.voltage = min(max(self.voltage, 0.0), self.max_voltage)
        return self.voltage

    def terminal_voltage(self, load_current_a: float) -> float:
        """Terminal voltage seen by the load, accounting for the ESR drop."""
        return max(self.voltage - load_current_a * self.esr_ohm, 0.0)

    def reset(self, voltage: float) -> None:
        """Set the capacitor voltage (e.g. at the start of a simulation)."""
        if not 0.0 <= voltage <= self.max_voltage:
            raise ValueError("voltage must lie in [0, max_voltage]")
        self.voltage = voltage
