"""repro.sweep — parallel scenario campaigns with a persistent result store.

The paper's evaluation spans two rigs (the outdoor PV-array system and the
controlled laboratory supply) crossed with governors, parameters and
conditions; this subsystem runs such grids as *campaigns* over pluggable,
registry-backed scenario components:

* :mod:`repro.sweep.components` — the component registries: ``SUPPLIES``
  (pv-array / controlled-voltage / constant-power / trace-file),
  ``PLATFORMS``, ``CAPACITORS``, ``GOVERNORS`` and workloads, all open for
  extension via :class:`repro.registry.Registry`;
* :mod:`repro.sweep.spec`     — declarative grids (:class:`Axis` with dotted
  component paths, :class:`SweepSpec`) expanding into content-addressed
  :class:`ScenarioConfig` cells composed of five component specs;
* :mod:`repro.sweep.build`    — the one construction path resolving a config
  into a live :class:`~repro.sim.simulator.EnergyHarvestingSimulation`;
* :mod:`repro.sweep.scenario` — the per-cell simulation worker and flat
  governor/workload views;
* :mod:`repro.sweep.store`    — an append-only JSONL store keyed by config
  hash, giving cache hits, resume-after-interrupt and schema-version
  tolerance;
* :mod:`repro.sweep.sqlindex` — the read-optimised SQLite sidecar behind
  :meth:`ResultStore.query`: scenario ids, statuses and searchable axis
  columns mapped to JSONL byte offsets, so filtered/aggregate reads over
  100k+-record stores never replay the file;
* :mod:`repro.sweep.runner`   — serial or multiprocessing execution with
  per-scenario timeouts and progress reporting;
* :mod:`repro.sweep.aggregate`— per-axis mean/p50/p95 tables, Table II
  reconstruction and CSV export from stored records;
* :mod:`repro.sweep.adaptive` — survival-boundary search: bisection of any
  numeric config path (with bracket expansion and non-monotonicity
  detection) batched through the runner/store, one probe per outer cell per
  round;
* :mod:`repro.sweep.dist`     — sharded (multi-host) campaign execution:
  deterministic content-addressed partitioning (:class:`ShardPlan` + JSON
  shard manifests), store merging, and the :class:`DistRunner` local
  fan-out over shard worker processes;
* :mod:`repro.sweep.presets`  — ready-made campaigns (Table II outdoor grid,
  the Fig. 11 controlled-supply sweep, a constant-power survival survey) and
  boundary queries (``min-capacitance``, ``min-power``).

Quick start::

    from repro.sweep import Axis, ResultStore, SweepRunner, SweepSpec, axis_summary

    spec = SweepSpec.grid(
        governors=["power-neutral", "powersave", "ondemand"],
        weather=["full_sun", "cloud"],
        capacitances_f=[15.4e-3, 47e-3],
        duration_s=120.0,
    )
    store = ResultStore("campaign.jsonl")
    report = SweepRunner(store, workers=4).run(spec)
    print(axis_summary(report.ok_records(), "governor"))

Axes address *inside* components (``Axis("supply.weather", [...])``,
``Axis("capacitor.capacitance_f", [...])``, ``Axis("supply.power_w", [...])``
on a constant-power supply), and whole components swap with
``supply={"kind": "controlled-voltage"}``.  Re-running the same campaign (or
any campaign sharing cells) against the same store recomputes nothing.
"""

from ..registry import ComponentSpec, Registry, RegistryEntry
from .adaptive import (
    PREDICATES,
    BoundaryQuery,
    BoundaryReport,
    BoundarySearch,
    CellResult,
    find_boundary,
)
from .aggregate import (
    METRIC_FIELDS,
    axis_summary,
    campaign_overview,
    records_table,
    rows_to_csv,
    table2_rows,
)
from .build import (
    BuiltSystem,
    build_capacitor,
    build_governor,
    build_platform,
    build_supply,
    build_system,
    build_workload,
    run_system,
)
from .components import CAPACITORS, GOVERNORS, PLATFORMS, SUPPLIES, WORKLOADS_REGISTRY
from .dist import (
    MANIFEST_VERSION,
    DistRunner,
    ShardPlan,
    partition_scenarios,
    shard_index_of,
)
from .presets import (
    BOUNDARY_PRESETS,
    CAMPAIGN_PRESETS,
    boundary_preset_names,
    build_boundary_preset,
    build_preset,
    preset_names,
)
from .runner import CampaignRunner, SweepReport, SweepRunner, expand_unique
from .scenario import (
    GOVERNOR_SPECS,
    SHARD_INDEX_ENV,
    TABLE2_GOVERNOR_AXIS,
    WORKLOADS,
    GovernorSpec,
    governor_label,
    run_scenario,
    scenario_summary,
    worker_stamp,
)
from .spec import (
    AXIS_ALIASES,
    SCHEMA_VERSION,
    Axis,
    ScenarioConfig,
    ShadowSpec,
    SweepSpec,
    resolve_axis_path,
)
from .sqlindex import SQLITE_AVAILABLE, SqliteIndex, sqlite_index_path
from .store import (
    VOLATILE_RECORD_FIELDS,
    ResultStore,
    merge_stores,
    store_stats,
    strip_volatile,
)

__all__ = [
    "Axis",
    "AXIS_ALIASES",
    "SCHEMA_VERSION",
    "ScenarioConfig",
    "ShadowSpec",
    "SweepSpec",
    "resolve_axis_path",
    "ComponentSpec",
    "Registry",
    "RegistryEntry",
    "SUPPLIES",
    "PLATFORMS",
    "CAPACITORS",
    "GOVERNORS",
    "WORKLOADS_REGISTRY",
    "BuiltSystem",
    "build_system",
    "run_system",
    "build_supply",
    "build_platform",
    "build_capacitor",
    "build_governor",
    "build_workload",
    "CAMPAIGN_PRESETS",
    "build_preset",
    "preset_names",
    "BOUNDARY_PRESETS",
    "boundary_preset_names",
    "build_boundary_preset",
    "PREDICATES",
    "BoundaryQuery",
    "BoundaryReport",
    "BoundarySearch",
    "CellResult",
    "find_boundary",
    "ResultStore",
    "merge_stores",
    "store_stats",
    "SqliteIndex",
    "sqlite_index_path",
    "SQLITE_AVAILABLE",
    "VOLATILE_RECORD_FIELDS",
    "strip_volatile",
    "SweepReport",
    "SweepRunner",
    "CampaignRunner",
    "expand_unique",
    "MANIFEST_VERSION",
    "ShardPlan",
    "DistRunner",
    "shard_index_of",
    "partition_scenarios",
    "GovernorSpec",
    "GOVERNOR_SPECS",
    "TABLE2_GOVERNOR_AXIS",
    "WORKLOADS",
    "governor_label",
    "run_scenario",
    "scenario_summary",
    "worker_stamp",
    "SHARD_INDEX_ENV",
    "axis_summary",
    "campaign_overview",
    "records_table",
    "rows_to_csv",
    "table2_rows",
    "METRIC_FIELDS",
]
