"""repro.sweep — parallel scenario campaigns with a persistent result store.

The paper's evaluation is a grid of governor × supply-profile × parameter
combinations; this subsystem runs such grids as *campaigns*:

* :mod:`repro.sweep.spec`     — declarative grids (:class:`Axis`,
  :class:`SweepSpec`) expanding into content-addressed
  :class:`ScenarioConfig` cells;
* :mod:`repro.sweep.scenario` — the governor/workload registries and the
  per-cell simulation worker;
* :mod:`repro.sweep.store`    — an append-only JSONL store keyed by config
  hash, giving cache hits and resume-after-interrupt;
* :mod:`repro.sweep.runner`   — serial or multiprocessing execution with
  per-scenario timeouts and progress reporting;
* :mod:`repro.sweep.aggregate`— per-axis mean/p50/p95 tables and Table II
  reconstruction from stored records.

Quick start::

    from repro.sweep import ResultStore, SweepRunner, SweepSpec, axis_summary

    spec = SweepSpec.grid(
        governors=["power-neutral", "powersave", "ondemand"],
        weather=["full_sun", "cloud"],
        capacitances_f=[15.4e-3, 47e-3],
        duration_s=120.0,
    )
    store = ResultStore("campaign.jsonl")
    report = SweepRunner(store, workers=4).run(spec)
    print(axis_summary(report.ok_records(), "governor"))

Re-running the same campaign (or any campaign sharing cells) against the same
store recomputes nothing.
"""

from .aggregate import METRIC_FIELDS, axis_summary, campaign_overview, table2_rows
from .runner import SweepReport, SweepRunner
from .scenario import (
    GOVERNOR_SPECS,
    TABLE2_GOVERNOR_AXIS,
    WORKLOADS,
    GovernorSpec,
    build_governor,
    governor_label,
    run_scenario,
    scenario_summary,
)
from .spec import Axis, ScenarioConfig, ShadowSpec, SweepSpec
from .store import ResultStore

__all__ = [
    "Axis",
    "ScenarioConfig",
    "ShadowSpec",
    "SweepSpec",
    "ResultStore",
    "SweepReport",
    "SweepRunner",
    "GovernorSpec",
    "GOVERNOR_SPECS",
    "TABLE2_GOVERNOR_AXIS",
    "WORKLOADS",
    "build_governor",
    "governor_label",
    "run_scenario",
    "scenario_summary",
    "axis_summary",
    "campaign_overview",
    "table2_rows",
    "METRIC_FIELDS",
]
