"""Scenario execution: turn a :class:`ScenarioConfig` into metrics.

The component registries themselves live in :mod:`repro.sweep.components`
(supply / platform / capacitor / governor / workload) and the one-path system
assembly in :mod:`repro.sweep.build`; this module keeps the campaign-facing
surface:

* :data:`GOVERNOR_SPECS` / :data:`WORKLOADS` — dict views over the governor
  and workload registries, for CLI choice lists and compatibility with the
  PR-1 flat API;
* :func:`run_scenario` — the single worker entry point: it resolves the
  config through :func:`~repro.sweep.build.build_system`, runs the
  closed-loop simulation and returns a JSON-ready *record* holding the
  config (composed schema v2), the summary metrics, and (optionally)
  decimated time series.  It is a plain top-level function over plain-data
  arguments, so it pickles cleanly into ``multiprocessing`` workers.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable

from .. import __version__
from ..energy.profiles import PV_TARGET_VOLTAGE
from ..governors.base import Governor
from ..sim.result import SimulationResult
from ..workloads.workload import Workload
from .build import build_governor, build_system, build_workload
from .components import GOVERNORS, WORKLOADS_REGISTRY
from .spec import SCHEMA_VERSION, ScenarioConfig

__all__ = [
    "GovernorSpec",
    "GOVERNOR_SPECS",
    "TABLE2_GOVERNOR_AXIS",
    "WORKLOADS",
    "governor_label",
    "build_governor",
    "run_scenario",
    "scenario_summary",
    "worker_stamp",
]

#: Environment variable a shard worker sets so its (grand)child processes
#: stamp records with the shard they ran in (multiprocessing pool children
#: inherit the environment under both fork and spawn start methods).
SHARD_INDEX_ENV = "REPRO_SHARD_INDEX"


def worker_stamp() -> dict:
    """Who computed a record: pid, plus the shard index when sharded.

    Purely descriptive (a post-mortem/telemetry field): it is stamped into
    the record, never into the config, so it does not enter the scenario
    hash and stores stay cache-comparable across worker layouts.
    """
    stamp: dict = {"pid": os.getpid()}
    shard = os.environ.get(SHARD_INDEX_ENV)
    if shard is not None:
        try:
            stamp["shard"] = int(shard)
        except ValueError:
            pass
    return stamp


@dataclass(frozen=True)
class GovernorSpec:
    """A registered governor: config name, report label, factory (dict view).

    Kept as a stable, flat projection of the governor registry for callers
    that enumerate governors (CLI choices, docs, tests).  ``factory`` takes
    :class:`~repro.core.parameters.ControllerParameters` overrides as keyword
    arguments when the governor is ``tunable``.
    """

    name: str
    label: str
    factory: Callable[..., Governor]
    tunable: bool = False


def _governor_specs() -> dict[str, GovernorSpec]:
    return {
        name: GovernorSpec(
            name=name,
            label=GOVERNORS.get(name).label,
            factory=GOVERNORS.get(name).factory,
            tunable=bool(GOVERNORS.get(name).metadata.get("tunable", False)),
        )
        for name in GOVERNORS
    }


#: Every governor selectable in a sweep, keyed by its config name.  The labels
#: match the scheme names of the paper's Table II so aggregated rows read like
#: the published table.  (A live view would see late registrations; sweeps
#: should consult :data:`repro.sweep.components.GOVERNORS` directly for that.)
GOVERNOR_SPECS: dict[str, GovernorSpec] = _governor_specs()

#: The governor axis reproducing the paper's Table II, in the table's row
#: order.  Shared by the CLI, the shoot-out example and the Table II bench.
TABLE2_GOVERNOR_AXIS: tuple[str, ...] = (
    "performance",
    "ondemand",
    "interactive",
    "conservative",
    "powersave",
    "single-core-dfs",
    "solartune",
    "power-neutral",
)

#: Work-unit models referenced by name from scenario configs (dict view of
#: the workload registry's parameter-free instantiations).
WORKLOADS: dict[str, Workload] = {
    name: build_workload(name) for name in WORKLOADS_REGISTRY
}


def governor_label(name: str) -> str:
    """The report label for a registered governor name."""
    return GOVERNORS.get(name).label if name in GOVERNORS else name


def scenario_summary(result: SimulationResult, workload: Workload) -> dict:
    """The metrics a sweep record stores for one completed scenario."""
    summary = result.summary()
    summary.update(
        {
            "lifetime_s": result.lifetime_s,
            "survived": result.survived,
            "instructions_billions": result.total_instructions / 1e9,
            "renders_per_minute": result.renders_per_minute(workload.instructions_per_unit),
            "fraction_within_5pct": result.fraction_within(PV_TARGET_VOLTAGE),
            "harvest_utilisation": result.harvest_utilisation(),
        }
    )
    return summary


def run_scenario(
    config: ScenarioConfig,
    series_samples: int = 0,
    fast: bool = True,
) -> dict:
    """Run one scenario and return its store record.

    The record always contains ``scenario_id``, ``schema_version``,
    ``config`` (composed schema), ``status``, ``summary``, ``engine`` and
    ``elapsed_s``; when ``series_samples`` > 0 it also carries the full
    :meth:`SimulationResult.to_dict` payload decimated to that many samples
    under ``"series"``.  ``fast=False`` runs the exact reference engine
    (``build_system(fast=False)``); the choice is stamped into the record as
    ``"engine"`` for post-mortems but is *not* part of the scenario identity,
    so stores stay comparable across engines.

    Telemetry stamps (all additive, all outside the scenario hash):
    ``wall_time_s`` (Unix completion time), ``worker`` (pid, shard index
    when sharded), ``repro_version``, and ``timings`` splitting the elapsed
    wall time into the ``build_s`` and ``simulate_s`` phases (the runner
    adds ``queue_wait_s``; its own span adds ``record_write_s``).
    """
    started = time.perf_counter()
    built = build_system(config, fast=fast)
    build_s = time.perf_counter() - started
    result = built.run()
    simulate_s = time.perf_counter() - started - build_s
    record = {
        "scenario_id": built.config.scenario_id,
        "schema_version": SCHEMA_VERSION,
        "config": built.config.to_dict(),
        "status": "ok",
        "summary": scenario_summary(result, built.workload),
        "engine": "fast" if fast else "exact",
        "elapsed_s": time.perf_counter() - started,
        "wall_time_s": time.time(),
        "worker": worker_stamp(),
        "repro_version": __version__,
        "timings": {"build_s": round(build_s, 6), "simulate_s": round(simulate_s, 6)},
    }
    if series_samples > 0:
        record["series"] = result.to_dict(max_samples=series_samples)
    return record
