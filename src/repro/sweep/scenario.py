"""Scenario execution: turn a :class:`ScenarioConfig` into metrics.

This module owns the two registries that make scenario configs *plain data*:

* :data:`GOVERNOR_SPECS` — every governor in :mod:`repro.governors` plus the
  named :class:`~repro.core.governor.PowerNeutralGovernor` parameter variants
  (paper-tuned, Fig. 6, Fig. 11, DVFS-only, hot-plug-only);
* :data:`WORKLOADS` — the work-unit models used to report throughput.

:func:`run_scenario` is the single worker entry point: it rebuilds the
governor, synthesises the irradiance (weather + shadowing + seed), runs the
closed-loop simulation and returns a JSON-ready *record* holding the config,
the summary metrics, and (optionally) decimated time series.  It is a plain
top-level function over plain-data arguments, so it pickles cleanly into
``multiprocessing`` workers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from ..core.governor import PowerNeutralGovernor
from ..core.parameters import (
    ControllerParameters,
    FIG6_PARAMETERS,
    FIG11_PARAMETERS,
    PAPER_TUNED_PARAMETERS,
)
from ..energy.irradiance import WeatherCondition
from ..experiments.scenarios import (
    PV_TARGET_VOLTAGE,
    run_pv_experiment,
    solar_irradiance_trace,
)
from ..governors.base import Governor
from ..governors.linux import (
    ConservativeGovernor,
    InteractiveGovernor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)
from ..governors.single_core_dfs import SingleCoreDFSGovernor
from ..governors.solartune import SolarTuneGovernor
from ..sim.result import SimulationResult
from ..workloads.workload import FIG7_FRAME, TABLE2_RENDER, SyntheticWorkload, Workload
from .spec import ScenarioConfig

__all__ = [
    "GovernorSpec",
    "GOVERNOR_SPECS",
    "TABLE2_GOVERNOR_AXIS",
    "WORKLOADS",
    "governor_label",
    "build_governor",
    "run_scenario",
    "scenario_summary",
]


@dataclass(frozen=True)
class GovernorSpec:
    """A registered governor: CLI/config name, report label, factory."""

    name: str
    label: str
    factory: Callable[..., Governor]
    tunable: bool = False  # accepts ControllerParameters overrides


def _power_neutral_factory(
    base: ControllerParameters,
) -> Callable[..., Governor]:
    def build(overrides: Optional[Mapping] = None) -> Governor:
        params = base.with_overrides(**dict(overrides)) if overrides else base
        return PowerNeutralGovernor(params)

    return build


#: Every governor selectable in a sweep, keyed by its config name.  The labels
#: match the scheme names of the paper's Table II so aggregated rows read like
#: the published table.
GOVERNOR_SPECS: dict[str, GovernorSpec] = {
    spec.name: spec
    for spec in (
        GovernorSpec(
            "power-neutral",
            "Proposed Approach",
            _power_neutral_factory(PAPER_TUNED_PARAMETERS),
            tunable=True,
        ),
        GovernorSpec(
            "power-neutral-fig6",
            "Proposed (Fig. 6 params)",
            _power_neutral_factory(FIG6_PARAMETERS),
            tunable=True,
        ),
        GovernorSpec(
            "power-neutral-fig11",
            "Proposed (Fig. 11 params)",
            _power_neutral_factory(FIG11_PARAMETERS),
            tunable=True,
        ),
        GovernorSpec(
            "power-neutral-dvfs-only",
            "Proposed (DVFS only)",
            _power_neutral_factory(PAPER_TUNED_PARAMETERS.with_overrides(use_hotplug=False)),
            tunable=True,
        ),
        GovernorSpec(
            "power-neutral-hotplug-only",
            "Proposed (hot-plug only)",
            _power_neutral_factory(PAPER_TUNED_PARAMETERS.with_overrides(use_dvfs=False)),
            tunable=True,
        ),
        GovernorSpec("performance", "Linux Performance", PerformanceGovernor),
        GovernorSpec("powersave", "Linux Powersave", PowersaveGovernor),
        GovernorSpec("ondemand", "Linux Ondemand", OndemandGovernor),
        GovernorSpec("conservative", "Linux Conservative", ConservativeGovernor),
        GovernorSpec("interactive", "Linux Interactive", InteractiveGovernor),
        GovernorSpec("single-core-dfs", "Single-core DFS [11]", SingleCoreDFSGovernor),
        GovernorSpec("solartune", "SolarTune-style [9]", SolarTuneGovernor),
    )
}

#: The governor axis reproducing the paper's Table II, in the table's row
#: order.  Shared by the CLI, the shoot-out example and the Table II bench.
TABLE2_GOVERNOR_AXIS: tuple[str, ...] = (
    "performance",
    "ondemand",
    "interactive",
    "conservative",
    "powersave",
    "single-core-dfs",
    "solartune",
    "power-neutral",
)

#: Work-unit models referenced by name from scenario configs.
WORKLOADS: dict[str, Workload] = {
    "table2-render": TABLE2_RENDER,
    "fig7-frame": FIG7_FRAME,
    "synthetic": SyntheticWorkload(),
}


def governor_label(name: str) -> str:
    """The report label for a registered governor name."""
    return GOVERNOR_SPECS[name].label if name in GOVERNOR_SPECS else name


def build_governor(config: ScenarioConfig) -> Governor:
    """Instantiate the governor a scenario config names."""
    try:
        spec = GOVERNOR_SPECS[config.governor]
    except KeyError:
        raise ValueError(
            f"unknown governor {config.governor!r}; known: {', '.join(sorted(GOVERNOR_SPECS))}"
        ) from None
    overrides = config.overrides_dict()
    if overrides and not spec.tunable:
        raise ValueError(
            f"governor {config.governor!r} does not accept parameter overrides"
        )
    if spec.tunable:
        return spec.factory(overrides)
    return spec.factory()


def scenario_summary(result: SimulationResult, workload: Workload) -> dict:
    """The metrics a sweep record stores for one completed scenario."""
    summary = result.summary()
    summary.update(
        {
            "lifetime_s": result.lifetime_s,
            "survived": result.survived,
            "instructions_billions": result.total_instructions / 1e9,
            "renders_per_minute": result.renders_per_minute(workload.instructions_per_unit),
            "fraction_within_5pct": result.fraction_within(PV_TARGET_VOLTAGE),
            "harvest_utilisation": result.harvest_utilisation(),
        }
    )
    return summary


def run_scenario(
    config: ScenarioConfig,
    series_samples: int = 0,
) -> dict:
    """Run one scenario and return its store record.

    The record always contains ``scenario_id``, ``config``, ``status``,
    ``summary`` and ``elapsed_s``; when ``series_samples`` > 0 it also carries
    the full :meth:`SimulationResult.to_dict` payload decimated to that many
    samples under ``"series"``.
    """
    started = time.perf_counter()
    governor = build_governor(config)
    try:
        workload = WORKLOADS[config.workload]
    except KeyError:
        raise ValueError(
            f"unknown workload {config.workload!r}; known: {', '.join(sorted(WORKLOADS))}"
        ) from None
    irradiance = solar_irradiance_trace(
        config.duration_s,
        weather=WeatherCondition(config.weather),
        seed=config.seed,
        shadowing_events=[s.to_event() for s in config.shadowing],
    )
    result = run_pv_experiment(
        governor,
        duration_s=config.duration_s,
        weather=WeatherCondition(config.weather),
        seed=config.seed,
        capacitance_f=config.capacitance_f,
        irradiance=irradiance,
        monitor_quantised=config.monitor_quantised,
    )
    record = {
        "scenario_id": config.scenario_id,
        "config": config.to_dict(),
        "status": "ok",
        "summary": scenario_summary(result, workload),
        "elapsed_s": time.perf_counter() - started,
    }
    if series_samples > 0:
        record["series"] = result.to_dict(max_samples=series_samples)
    return record
