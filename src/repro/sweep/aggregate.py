"""Aggregation of campaign records into per-axis summary tables.

The store holds one summary dict per scenario; this module reduces those into
the tables a report prints:

* :func:`axis_summary` — group records by one config path (``"governor"``,
  ``"supply.weather"``, ``"capacitor.capacitance_f"``, or any dotted
  component path / flat alias) and report mean/p50/p95 of the headline
  metrics (on-time fraction, consumed energy, brown-outs, instruction
  throughput);
* :func:`table2_rows` — rebuild the paper's Table II rows (renders/min,
  lifetime, instructions, survival) from a governor-axis campaign;
* :func:`campaign_overview` — whole-campaign totals;
* :func:`records_table` — one flat row per successful record (scenario
  identity + headline metrics), the shape ``--export csv`` writes so
  aggregates can leave the JSONL store without custom scripts;
* :func:`rows_to_csv` — render any list of row dicts (axis summaries,
  Table II views, boundary reports) as CSV text.

Record configs are upgraded through
:meth:`~repro.sweep.spec.ScenarioConfig.from_dict` before grouping, so
campaigns mixing PR-1-era flat records (schema v1) and composed records
(schema v2) aggregate together.

Everything returns lists of plain row dicts compatible with
:func:`repro.analysis.reporting.format_table`, so the CLI, the examples and
the benchmarks all render the same way.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, Optional, Sequence

import numpy as np

from .scenario import governor_label
from .spec import _SCALAR_FIELDS, ScenarioConfig, component_label, resolve_axis_path

__all__ = [
    "axis_summary",
    "table2_rows",
    "campaign_overview",
    "records_table",
    "rows_to_csv",
    "METRIC_FIELDS",
]

#: metric name in the summary dict -> short column prefix in the axis tables.
METRIC_FIELDS: dict[str, str] = {
    "uptime_fraction": "on_time",
    "consumed_energy_j": "energy_j",
    "brownouts": "brownouts",
    "instructions_billions": "instr_b",
}


#: Parsed configs keyed by scenario_id (itself the config's content hash, so
#: a sound cache key).  Aggregation touches every record once per rendered
#: table; the cache keeps the registry canonicalisation (validation hooks
#: included) from running O(records x tables) times.
_CONFIG_CACHE: dict[str, ScenarioConfig] = {}
_CONFIG_CACHE_LIMIT = 8192


def _record_config(record: dict) -> ScenarioConfig:
    scenario_id = record.get("scenario_id")
    if scenario_id:
        cached = _CONFIG_CACHE.get(scenario_id)
        if cached is not None:
            return cached
    config = ScenarioConfig.from_dict(record.get("config", {}))
    if scenario_id:
        if len(_CONFIG_CACHE) >= _CONFIG_CACHE_LIMIT:
            _CONFIG_CACHE.clear()
        _CONFIG_CACHE[scenario_id] = config
    return config


def _hashable(value):
    """Coerce a raw config value into something usable as a group key."""
    if isinstance(value, dict):
        return value.get("kind", json.dumps(value, sort_keys=True))
    if isinstance(value, list):
        return json.dumps(value, sort_keys=True)
    return value


def _axis_value(record: dict, axis: str):
    """The (formatted) value one record takes on a swept axis."""
    config_data = record.get("config", {})
    try:
        config = _record_config(record)
    except (KeyError, ValueError, TypeError):
        # Unloadable config (e.g. a kind no longer registered): fall back to
        # the raw dict so the record still lands in *some* group.
        raw = config_data.get(axis.split(".", 1)[0], "?") if isinstance(config_data, dict) else "?"
        return _hashable(raw)
    path = resolve_axis_path(axis)
    if path == "governor":
        # Pretty Table II scheme name, but parameter variants of one scheme
        # stay distinct groups (e.g. two v_q settings of the proposed
        # governor must not be averaged together).
        variant = component_label(config.governor, "governor")
        label = governor_label(config.governor.kind)
        if "(" in variant:
            return f"{label} {variant[variant.index('('):]}"
        return label
    if "." not in path and path not in _SCALAR_FIELDS:
        # Whole-component axis: label must distinguish parameter variants,
        # not just the kind (two constant-power supplies at different power_w
        # are different groups).
        return component_label(getattr(config, path), path)
    value = config.get(path)
    if path == "capacitor.capacitance_f" and value is not None:
        return f"{1e3 * float(value):g} mF"
    if path == "supply.shadowing" and isinstance(value, list):
        return f"{len(value)} events"
    if path == "governor.params" and isinstance(value, dict):
        return "+".join(f"{k}={v}" for k, v in sorted(value.items())) or "(none)"
    return value


def axis_summary(
    records: Iterable[dict],
    axis: str,
    metrics: Optional[Sequence[str]] = None,
) -> list[dict]:
    """Mean/p50/p95 of each metric, grouped by one swept config path.

    Only ``status == "ok"`` records contribute.  Rows keep first-seen group
    order (i.e. the sweep's axis order).
    """
    metric_names = list(metrics) if metrics is not None else list(METRIC_FIELDS)
    groups: dict = {}
    for record in records:
        if record.get("status") != "ok":
            continue
        key = _axis_value(record, axis)
        groups.setdefault(key, []).append(record.get("summary", {}))
    rows = []
    for key, summaries in groups.items():
        row: dict = {axis: key, "n": len(summaries)}
        for metric in metric_names:
            prefix = METRIC_FIELDS.get(metric, metric)
            values = np.asarray(
                [float(s.get(metric, 0.0)) for s in summaries], dtype=float
            )
            row[f"{prefix}_mean"] = float(np.mean(values))
            row[f"{prefix}_p50"] = float(np.percentile(values, 50))
            row[f"{prefix}_p95"] = float(np.percentile(values, 95))
        rows.append(row)
    return rows


def table2_rows(records: Iterable[dict]) -> list[dict]:
    """Rebuild Table II rows from a governor campaign's records.

    When a governor appears in several cells (multiple seeds/conditions) its
    row averages the per-cell throughput metrics; lifetime reports the worst
    cell and ``survived`` requires surviving every cell, which is the
    conservative reading of the paper's table.
    """
    groups: dict[str, list[dict]] = {}
    for record in records:
        if record.get("status") != "ok":
            continue
        label = _axis_value(record, "governor")
        groups.setdefault(label, []).append(record.get("summary", {}))
    rows = []
    for label, summaries in groups.items():
        lifetime = min(float(s.get("lifetime_s", 0.0)) for s in summaries)
        minutes, seconds = divmod(int(round(lifetime)), 60)
        rows.append(
            {
                "scheme": label,
                "avg_performance_render_per_min": float(
                    np.mean([s.get("renders_per_minute", 0.0) for s in summaries])
                ),
                "lifetime_mm_ss": f"{minutes:02d}:{seconds:02d}",
                "instructions_billions": float(
                    np.mean([s.get("instructions_billions", 0.0) for s in summaries])
                ),
                "survived": all(bool(s.get("survived")) for s in summaries),
            }
        )
    return rows


#: Summary metrics carried into the flat per-record export rows.
_EXPORT_METRICS: tuple[str, ...] = (
    "survived",
    "lifetime_s",
    "uptime_fraction",
    "brownouts",
    "consumed_energy_j",
    "instructions_billions",
    "renders_per_minute",
)


def records_table(records: Iterable[dict]) -> list[dict]:
    """One flat row per successful record: scenario identity + metrics.

    This is the denormalised view ``--export csv`` writes — every row names
    its cell (governor / supply / weather / seed / capacitance / workload /
    duration) so the CSV stands alone outside the JSONL store.
    """
    rows = []
    for record in records:
        if record.get("status") != "ok":
            continue
        summary = record.get("summary", {})
        row: dict = {"scenario_id": record.get("scenario_id")}
        try:
            config = _record_config(record)
        except (KeyError, ValueError, TypeError):
            row["governor"] = "?"
        else:
            row.update(
                {
                    "governor": component_label(config.governor, "governor"),
                    "supply": component_label(config.supply, "supply"),
                    "weather": config.weather,
                    "seed": config.seed,
                    "capacitance_mf": 1e3 * config.capacitance_f,
                    "workload": config.workload.kind,
                    "duration_s": config.duration_s,
                }
            )
        row.update({metric: summary.get(metric) for metric in _EXPORT_METRICS})
        rows.append(row)
    return rows


def rows_to_csv(rows: Sequence[dict]) -> str:
    """Render row dicts as CSV text (column order: first appearance)."""
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=columns, restval="", extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return out.getvalue()


def campaign_overview(records: Iterable[dict]) -> dict:
    """Whole-campaign totals across the successful records."""
    records = list(records)
    ok = [r for r in records if r.get("status") == "ok"]
    summaries = [r.get("summary", {}) for r in ok]
    simulated = sum(float(s.get("duration_s", 0.0)) for s in summaries)
    cpu = sum(float(r.get("elapsed_s", 0.0)) for r in ok)
    return {
        "scenarios": len(records),
        "ok": len(ok),
        "failed": len(records) - len(ok),
        "simulated_s": simulated,
        "worker_cpu_s": cpu,
        "survival_rate": (
            float(np.mean([bool(s.get("survived")) for s in summaries])) if summaries else 0.0
        ),
        "total_instructions_billions": sum(
            float(s.get("instructions_billions", 0.0)) for s in summaries
        ),
        "total_consumed_energy_j": sum(
            float(s.get("consumed_energy_j", 0.0)) for s in summaries
        ),
    }
