"""Adaptive survival-boundary search: bisection campaigns over any numeric axis.

The paper's headline robustness results are *boundary* questions — the minimum
buffer capacitance that rides through shadowing (Table I) and the minimum
supply power at which each governor stays power-neutral (the Fig. 11 rig) —
but a grid sweep answers them by brute force, wasting most of its cells far
from the boundary.  This module searches instead:

* :class:`BoundaryQuery` — a declarative search: a base
  :class:`~repro.sweep.spec.ScenarioConfig`, one numeric dotted search path
  (``"capacitor.capacitance_f"``, ``"supply.power_w"``, ...), an initial
  bracket, a convergence tolerance and a predicate over completed records
  (default: ``"survived"``), plus *outer* axes — for every combination of the
  outer axes an independent bisection runs;
* :class:`BoundarySearch` — the frontier scheduler: each round it collects one
  probe per unconverged cell (two in the opening round, the bracket ends) and
  submits them as a single :meth:`~repro.sweep.runner.SweepRunner.run` batch,
  so all cells bisect in parallel across the worker pool and every probe lands
  in the content-addressed :class:`~repro.sweep.store.ResultStore`;
* :class:`BoundaryReport` / :class:`CellResult` — the per-cell outcome:
  critical value, final bracket, probe/cache counts, state.

Because probes are ordinary scenario configs executed through the store, a
finished query re-runs as 100 % cache hits and an interrupted search resumes
from wherever its probes got to — the bisection sequence is deterministic, so
the same query always regenerates the same scenario ids.

When the initial bracket misses the boundary (predicate agrees at both ends),
the bracket expands geometrically outward up to ``max_expansions`` times.
Non-monotone responses (a passing probe *below* a failing one, for an
increasing predicate) are detected and reported as a ``non-monotone`` cell
state instead of silently mis-bracketing.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence, Union

from ..obs.telemetry import DISABLED, Telemetry
from ..registry import jsonable_value, normalise_value
from .runner import CampaignRunner
from .spec import Axis, ScenarioConfig, resolve_axis_path

__all__ = [
    "PREDICATES",
    "BoundaryQuery",
    "BoundarySearch",
    "BoundaryReport",
    "CellResult",
    "find_boundary",
]

#: Named predicates evaluated on a completed store *record* (they usually only
#: consult ``record["summary"]``, so summaries-only stores satisfy them).
#: Open for extension: ``PREDICATES["my-criterion"] = lambda record: ...``.
PREDICATES: dict[str, Callable[[Mapping], bool]] = {
    "survived": lambda record: bool(record.get("summary", {}).get("survived")),
    "no-brownouts": lambda record: float(record.get("summary", {}).get("brownouts", 1)) == 0,
    "uptime-95": lambda record: float(record.get("summary", {}).get("uptime_fraction", 0.0))
    >= 0.95,
}

#: Cell states a search can end in.
_TERMINAL_STATES = ("converged", "non-monotone", "exhausted", "max-probes", "error")


def _resolve_predicate(predicate: Union[str, Callable]) -> tuple[str, Callable]:
    if callable(predicate):
        return getattr(predicate, "__name__", "custom"), predicate
    try:
        return str(predicate), PREDICATES[str(predicate)]
    except KeyError:
        raise ValueError(
            f"unknown predicate {predicate!r}; known: {', '.join(sorted(PREDICATES))} "
            "(or pass a callable taking a store record)"
        ) from None


@dataclass(frozen=True)
class BoundaryQuery:
    """One boundary search: where does ``predicate`` flip along ``path``?

    Attributes
    ----------
    base:
        The scenario every probe is derived from (outer-axis values and the
        probed value are applied on top via
        :meth:`~repro.sweep.spec.ScenarioConfig.with_value`).
    path:
        The numeric dotted config path being searched, e.g.
        ``"capacitor.capacitance_f"`` or ``"supply.power_w"``.
    lo / hi:
        The initial bracket.  It need not contain the boundary — the search
        expands geometrically outward when the predicate agrees at both ends.
    outer_axes:
        The remaining swept dimensions; each combination gets an independent
        bisection (weather presets, governors, ...).
    predicate:
        A name in :data:`PREDICATES` or a callable over the completed store
        record.  Default ``"survived"``.
    increasing:
        ``True`` (default) when the predicate fails below the boundary and
        passes above it (min-capacitance, min-power); ``False`` for the
        mirrored orientation (e.g. maximum tolerable leakage).
    rel_tol / abs_tol:
        Converged when the bracket width is ``<= max(abs_tol, rel_tol *
        max(|lo|, |hi|))``.
    scale:
        ``"linear"`` bisects arithmetically; ``"log"`` geometrically (for
        positive quantities spanning decades, like capacitance).
    expansion_factor / max_expansions:
        Bracket growth per miss and the number of growths allowed per side
        before the cell is reported ``exhausted``.
    max_probes:
        Per-cell probe budget; exceeded cells are reported ``max-probes``.
    """

    base: ScenarioConfig
    path: str
    lo: float
    hi: float
    outer_axes: tuple[Axis, ...] = ()
    predicate: Union[str, Callable] = "survived"
    increasing: bool = True
    rel_tol: float = 0.05
    abs_tol: float = 0.0
    scale: str = "linear"
    expansion_factor: float = 4.0
    max_expansions: int = 6
    max_probes: int = 48

    def __post_init__(self) -> None:
        object.__setattr__(self, "path", str(self.path))
        object.__setattr__(self, "lo", float(self.lo))
        object.__setattr__(self, "hi", float(self.hi))
        axes = tuple(a if isinstance(a, Axis) else Axis(*a) for a in self.outer_axes)
        object.__setattr__(self, "outer_axes", axes)
        if not self.lo < self.hi:
            raise ValueError(f"bracket must satisfy lo < hi (got [{self.lo}, {self.hi}])")
        if self.scale not in ("linear", "log"):
            raise ValueError(f"scale must be 'linear' or 'log' (got {self.scale!r})")
        if self.scale == "log" and self.lo <= 0:
            raise ValueError("log-scale search needs a strictly positive bracket")
        if self.rel_tol < 0 or self.abs_tol < 0 or (self.rel_tol == 0 and self.abs_tol == 0):
            raise ValueError("need a positive rel_tol and/or abs_tol")
        if self.expansion_factor <= 1:
            raise ValueError("expansion_factor must be > 1")
        if self.max_probes < 3:
            raise ValueError("max_probes must be at least 3 (two ends plus one bisection)")
        search_path = resolve_axis_path(self.path)
        for axis in axes:
            if resolve_axis_path(axis.name) == search_path:
                raise ValueError(f"search path {self.path!r} cannot also be an outer axis")
        _resolve_predicate(self.predicate)  # raises on unknown names
        # Fail fast on a path that does not accept numeric values.
        self.base.with_value(self.path, self.lo)

    @property
    def predicate_name(self) -> str:
        return _resolve_predicate(self.predicate)[0]

    # ------------------------------------------------------------------
    # Serialisation and identity
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready snapshot, the boundary twin of :meth:`SweepSpec.to_dict`.

        Only *named* predicates serialise — a bare callable has no portable
        spelling.  Register the callable in :data:`PREDICATES` and pass its
        name to make a query submittable (shard manifests, the campaign
        service).
        """
        if callable(self.predicate) and PREDICATES.get(self.predicate_name) is not self.predicate:
            raise ValueError(
                "callable predicates do not serialise; register the callable "
                "in PREDICATES and pass its name instead"
            )
        return {
            "base": self.base.to_dict(),
            "path": self.path,
            "lo": self.lo,
            "hi": self.hi,
            "outer_axes": [
                {
                    "name": axis.name,
                    "values": [jsonable_value(normalise_value(v)) for v in axis.values],
                }
                for axis in self.outer_axes
            ],
            "predicate": self.predicate_name,
            "increasing": self.increasing,
            "rel_tol": self.rel_tol,
            "abs_tol": self.abs_tol,
            "scale": self.scale,
            "expansion_factor": self.expansion_factor,
            "max_expansions": self.max_expansions,
            "max_probes": self.max_probes,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "BoundaryQuery":
        """Rebuild a query from :meth:`to_dict` output (validated as usual)."""
        return cls(
            base=ScenarioConfig.from_dict(data["base"]),
            path=str(data["path"]),
            lo=float(data["lo"]),
            hi=float(data["hi"]),
            outer_axes=tuple(
                Axis(str(axis["name"]), tuple(axis["values"]))
                for axis in data.get("outer_axes", ())
            ),
            predicate=str(data.get("predicate", "survived")),
            increasing=bool(data.get("increasing", True)),
            rel_tol=float(data.get("rel_tol", 0.05)),
            abs_tol=float(data.get("abs_tol", 0.0)),
            scale=str(data.get("scale", "linear")),
            expansion_factor=float(data.get("expansion_factor", 4.0)),
            max_expansions=int(data.get("max_expansions", 6)),
            max_probes=int(data.get("max_probes", 48)),
        )

    def query_hash(self) -> str:
        """Content hash of the search definition (the campaign id of a
        submitted boundary query).

        Unlike a sweep's :meth:`~repro.sweep.spec.SweepSpec.campaign_hash`
        the probe set is not enumerable up front, so the hash covers the
        canonical snapshot instead — two spellings that serialise identically
        are the same campaign; any change to bracket, tolerance, predicate or
        base scenario is a new one.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def cells(self) -> list[tuple[tuple[str, object], ...]]:
        """All outer-axis combinations, as ``((path, value), ...)`` tuples."""
        if not self.outer_axes:
            return [()]
        names = [a.name for a in self.outer_axes]
        return [
            tuple(zip(names, combo))
            for combo in itertools.product(*(a.values for a in self.outer_axes))
        ]

    def tolerance(self, lo: float, hi: float) -> float:
        return max(self.abs_tol, self.rel_tol * max(abs(lo), abs(hi)))

    def midpoint(self, lo: float, hi: float) -> float:
        if self.scale == "log" and lo > 0:
            return math.sqrt(lo * hi)
        return 0.5 * (lo + hi)


@dataclass
class CellResult:
    """Outcome of the bisection in one outer-axis cell."""

    outer: dict
    status: str
    critical: Optional[float]
    bracket: tuple[Optional[float], Optional[float]]
    probes: int
    cached: int
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "outer": dict(self.outer),
            "status": self.status,
            "critical": self.critical,
            "bracket": list(self.bracket),
            "probes": self.probes,
            "cached": self.cached,
            "detail": self.detail,
        }


@dataclass
class BoundaryReport:
    """Aggregated outcome of a boundary search across all outer cells."""

    path: str
    predicate: str
    cells: list[CellResult] = field(default_factory=list)
    rounds: int = 0
    executed: int = 0
    cached: int = 0
    elapsed_s: float = 0.0

    @property
    def converged(self) -> bool:
        return bool(self.cells) and all(c.status == "converged" for c in self.cells)

    def rows(self) -> list[dict]:
        """Per-cell table rows (format_table / CSV-export compatible)."""
        rows = []
        for cell in self.cells:
            row = dict(cell.outer)
            row.update(
                {
                    "status": cell.status,
                    f"critical_{self.path.rsplit('.', 1)[-1]}": cell.critical,
                    "bracket_lo": cell.bracket[0],
                    "bracket_hi": cell.bracket[1],
                    "probes": cell.probes,
                    "cached": cell.cached,
                }
            )
            if cell.detail:
                row["detail"] = cell.detail
            rows.append(row)
        return rows

    def summary(self) -> dict:
        return {
            "path": self.path,
            "predicate": self.predicate,
            "cells": len(self.cells),
            "converged": sum(c.status == "converged" for c in self.cells),
            "rounds": self.rounds,
            "executed": self.executed,
            "cached": self.cached,
            "elapsed_s": self.elapsed_s,
        }

    def to_dict(self) -> dict:
        return {**self.summary(), "results": [c.to_dict() for c in self.cells]}


class _CellSearch:
    """Bisection state for one outer cell.

    Internally the predicate is *oriented* so it always fails on the low side
    and passes on the high side (for ``increasing=False`` queries the raw
    outcome is inverted); ``critical`` maps back to the caller's orientation:
    the smallest passing value for increasing queries, the largest for
    decreasing ones.
    """

    def __init__(self, query: BoundaryQuery, outer: tuple[tuple[str, object], ...]):
        self.query = query
        self.outer = outer
        config = query.base
        for path, value in outer:
            config = config.with_value(path, value)
        self.base = config
        self.lo = query.lo
        self.hi = query.hi
        self.outcomes: dict[float, bool] = {}  # probed value -> oriented outcome
        self.expansions_low = 0
        self.expansions_high = 0
        self.probes = 0
        self.cached = 0
        self.status = "searching"
        self.detail = ""

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.status in _TERMINAL_STATES

    def config_for(self, value: float) -> ScenarioConfig:
        return self.base.with_value(self.query.path, value)

    def _finish(self, status: str, detail: str = "") -> None:
        self.status = status
        self.detail = detail

    def _fail_values(self) -> list[float]:
        return sorted(v for v, ok in self.outcomes.items() if not ok)

    def _pass_values(self) -> list[float]:
        return sorted(v for v, ok in self.outcomes.items() if ok)

    # ------------------------------------------------------------------
    def next_values(self) -> list[float]:
        """The value(s) to probe this round (empty when the cell is done)."""
        if self.done:
            return []
        proposed = [v for v in (self.lo, self.hi) if v not in self.outcomes]
        if not proposed:
            proposed = self._after_bracket()
        budget = self.query.max_probes - self.probes
        if len(proposed) > budget:
            self._finish(
                "max-probes",
                f"probe budget of {self.query.max_probes} exhausted "
                f"before the bracket narrowed to tolerance",
            )
            return []
        return proposed

    def _after_bracket(self) -> list[float]:
        """Next probe once both current bracket ends have outcomes."""
        fails, passes = self._fail_values(), self._pass_values()
        if not passes:
            return self._expand(high=True)
        if not fails:
            return self._expand(high=False)
        lo, hi = fails[-1], passes[0]
        # (Monotonicity violations were caught in observe(); here lo < hi.)
        if hi - lo <= self.query.tolerance(lo, hi):
            self._finish("converged")
            return []
        return [self.query.midpoint(lo, hi)]

    def _expand(self, high: bool) -> list[float]:
        """Grow the bracket geometrically on the side that has no flip yet.

        Downward linear expansion is clamped at zero — every searchable axis
        in this codebase is a non-negative physical quantity, so 0 is probed
        as the domain edge before the cell is declared boundary-free.
        """
        side = "above" if high else "below"
        used = self.expansions_high if high else self.expansions_low
        if used >= self.query.max_expansions:
            self._finish(
                "exhausted",
                f"no predicate flip within [{self.lo:g}, {self.hi:g}] after "
                f"{used} expansion(s) {side} the initial bracket",
            )
            return []
        factor = self.query.expansion_factor
        if high:
            self.hi = self.hi * factor if self.query.scale == "log" else (
                self.hi + (self.hi - self.lo) * factor
            )
            self.expansions_high += 1
            return [self.hi]
        if self.query.scale == "log":
            new_lo = self.lo / factor
        else:
            new_lo = self.lo - (self.hi - self.lo) * factor
            if self.lo >= 0 and new_lo < 0:
                new_lo = 0.0
        if not new_lo < self.lo:
            self._finish(
                "exhausted",
                f"predicate already holds at {self.query.path}={self.lo:g} "
                "and the bracket cannot extend below it",
            )
            return []
        self.lo = new_lo
        self.expansions_low += 1
        return [self.lo]

    # ------------------------------------------------------------------
    def observe(self, value: float, record: dict, cached: bool) -> None:
        if self.done:
            return
        self.probes += 1
        if cached:
            self.cached += 1
        if record.get("status") != "ok":
            self._finish(
                "error",
                f"probe at {self.query.path}={value:g} failed: "
                f"{record.get('error', record.get('status'))}",
            )
            return
        raw = bool(_resolve_predicate(self.query.predicate)[1](record))
        self.outcomes[value] = raw if self.query.increasing else not raw
        fails, passes = self._fail_values(), self._pass_values()
        if fails and passes and passes[0] < fails[-1]:
            word = "passes" if self.query.increasing else "fails"
            anti = "fails" if self.query.increasing else "passes"
            self._finish(
                "non-monotone",
                f"predicate {word} at {self.query.path}={passes[0]:g} but "
                f"{anti} at {fails[-1]:g} above it — "
                "the response is not monotone over this bracket",
            )

    def probe_error(self, value: float, message: str) -> None:
        self._finish("error", f"could not build probe at {self.query.path}={value:g}: {message}")

    # ------------------------------------------------------------------
    def result(self) -> CellResult:
        fails, passes = self._fail_values(), self._pass_values()
        bracket: tuple[Optional[float], Optional[float]] = (
            fails[-1] if fails else None,
            passes[0] if passes else None,
        )
        critical = None
        if self.status == "converged":
            critical = bracket[1] if self.query.increasing else bracket[0]
        return CellResult(
            outer=dict(self.outer),
            status=self.status,
            critical=critical,
            bracket=bracket,
            probes=self.probes,
            cached=self.cached,
            detail=self.detail,
        )


#: progress(round, message) — called once per scheduling round.
RoundCallback = Callable[[int, str], None]


class BoundarySearch:
    """Run a :class:`BoundaryQuery` against a runner's store.

    Each scheduling round gathers the next probe from every unconverged cell
    and executes the whole frontier as one batch, so the per-round wall clock
    is one simulation (not one per cell) whenever the runner has enough
    workers.  All probes flow through the runner's
    :class:`~repro.sweep.store.ResultStore`, giving cache hits on re-runs and
    resumption of interrupted searches.

    ``runner`` is anything satisfying the
    :class:`~repro.sweep.runner.CampaignRunner` protocol — a single-host
    :class:`~repro.sweep.runner.SweepRunner`, or a
    :class:`~repro.sweep.dist.DistRunner`, in which case every round's probe
    batch is partitioned across shard worker processes (content-addressed,
    so a probe always lands on the same shard and re-runs cache-hit its
    shard store) and the round's results arrive via store merge.

    With a :class:`~repro.obs.telemetry.Telemetry` bundle attached, every
    scheduling round becomes a ``boundary.round`` span (probes submitted,
    open cells, cache hits) wrapping the runner's own campaign spans, each
    open cell's bracket width is sampled as a ``boundary.bracket_width``
    gauge after the round's observations land, and probes / rounds roll up
    as metrics counters.
    """

    def __init__(
        self,
        query: BoundaryQuery,
        runner: CampaignRunner,
        progress: Optional[RoundCallback] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.query = query
        self.runner = runner
        self.progress = progress
        self.telemetry = telemetry if telemetry is not None else DISABLED

    def run(self) -> BoundaryReport:
        tracer, metrics = self.telemetry.tracer, self.telemetry.metrics
        started = time.perf_counter()
        cells = [_CellSearch(self.query, outer) for outer in self.query.cells()]
        report = BoundaryReport(path=self.query.path, predicate=self.query.predicate_name)
        while True:
            batch: list[ScenarioConfig] = []
            requests: dict[str, list[tuple[_CellSearch, float]]] = {}
            for cell in cells:
                for value in cell.next_values():
                    try:
                        config = cell.config_for(value)
                    except (ValueError, TypeError) as exc:
                        cell.probe_error(value, str(exc))
                        break
                    requests.setdefault(config.scenario_id, []).append((cell, value))
                    batch.append(config)
            if not batch:
                break
            report.rounds += 1
            open_cells = sum(1 for c in cells if not c.done)
            cached_ids = {c.scenario_id for c in batch if self.runner.store.is_complete(c)}
            if self.progress is not None:
                self.progress(
                    report.rounds,
                    f"round {report.rounds}: {len(batch)} probe(s) over "
                    f"{open_cells} open cell(s), {len(cached_ids)} cached",
                )
            with tracer.span(
                "boundary.round",
                round=report.rounds,
                probes=len(batch),
                open_cells=open_cells,
                cached=len(cached_ids),
            ):
                sweep_report = self.runner.run(batch)
                report.executed += sweep_report.executed
                report.cached += sweep_report.cached
                for record in sweep_report.records:
                    for cell, value in requests.get(record.get("scenario_id"), ()):
                        cell.observe(
                            value, record, cached=record["scenario_id"] in cached_ids
                        )
            metrics.counter("boundary.rounds")
            metrics.counter("boundary.probes", len(batch))
            tracer.counter("boundary.rounds")
            tracer.counter("boundary.probes", len(batch))
            # Bracket evolution: one gauge sample per still-open cell per
            # round, labelled by the cell's outer-axis values.
            for cell in cells:
                if not cell.done:
                    tracer.gauge(
                        "boundary.bracket_width",
                        cell.hi - cell.lo,
                        round=report.rounds,
                        lo=cell.lo,
                        hi=cell.hi,
                        **{path.rsplit(".", 1)[-1]: value for path, value in cell.outer},
                    )
        report.cells = [cell.result() for cell in cells]
        report.elapsed_s = time.perf_counter() - started
        for cell in report.cells:
            metrics.counter(f"boundary.cells_{cell.status}")
        return report


def find_boundary(
    query: BoundaryQuery,
    runner: CampaignRunner,
    progress: Optional[RoundCallback] = None,
) -> BoundaryReport:
    """Convenience wrapper: run a boundary query and return its report."""
    return BoundarySearch(query, runner, progress=progress).run()
