"""Declarative scenario grids: axes, sweep specs and concrete scenario configs.

The paper's evaluation is a grid — governors × supply profiles × parameters
(Table II, Figs. 12–15) — yet each cell is just one closed-loop simulation.
This module describes such grids declaratively:

* :class:`ScenarioConfig` — one fully specified simulation (governor, weather,
  shadowing, buffer size, workload, seed, ...), serialisable to canonical JSON
  and content-addressed by :attr:`~ScenarioConfig.scenario_id`;
* :class:`Axis` — one swept dimension (a ``ScenarioConfig`` field name plus
  the values it takes);
* :class:`SweepSpec` — a base config plus axes, expanded by
  :meth:`SweepSpec.scenarios` into the full cartesian product.

The content hash is what makes the result store (:mod:`repro.sweep.store`)
cache-correct: two configs with identical physics hash identically, so a
campaign can be interrupted, extended or re-run without recomputing cells.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Iterator, Mapping, Optional, Sequence

from ..energy.irradiance import ShadowingEvent, WeatherCondition
from ..energy.supercapacitor import PAPER_BUFFER_CAPACITANCE_F

__all__ = ["ShadowSpec", "ScenarioConfig", "Axis", "SweepSpec"]


@dataclass(frozen=True)
class ShadowSpec:
    """A deterministic shadowing episode, JSON-friendly.

    Mirrors :class:`repro.energy.irradiance.ShadowingEvent` but lives in the
    config layer so scenario configs stay plain data.
    """

    start_s: float
    duration_s: float
    attenuation: float = 0.2
    ramp_s: float = 0.5

    def __post_init__(self) -> None:
        # Normalise to float so int-vs-float spellings hash identically.
        for name in ("start_s", "duration_s", "attenuation", "ramp_s"):
            object.__setattr__(self, name, float(getattr(self, name)))
        # Delegate validation to the simulation-side event.
        self.to_event()

    def to_event(self) -> ShadowingEvent:
        return ShadowingEvent(
            start_s=self.start_s,
            duration_s=self.duration_s,
            attenuation=self.attenuation,
            ramp_s=self.ramp_s,
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "ShadowSpec":
        return cls(
            start_s=float(data["start_s"]),
            duration_s=float(data["duration_s"]),
            attenuation=float(data.get("attenuation", 0.2)),
            ramp_s=float(data.get("ramp_s", 0.5)),
        )


@dataclass(frozen=True)
class ScenarioConfig:
    """One concrete simulation scenario, fully specified by plain data.

    Attributes
    ----------
    governor:
        Name of a registered governor spec (see
        :data:`repro.sweep.scenario.GOVERNOR_SPECS`), e.g. ``"power-neutral"``
        or ``"ondemand"``.
    governor_overrides:
        Optional :class:`~repro.core.parameters.ControllerParameters` field
        overrides for the power-neutral governor family (``v_q``, ``alpha``,
        ``use_hotplug``, ...).  Must be empty for baseline governors.
    weather:
        A :class:`~repro.energy.irradiance.WeatherCondition` value string.
    shadowing:
        Deterministic shadowing episodes applied on top of the weather.
    duration_s / seed / capacitance_f / monitor_quantised:
        Passed straight to :func:`repro.experiments.scenarios.run_pv_experiment`.
    workload:
        Name of a registered workload (``"table2-render"``, ``"fig7-frame"``,
        ``"synthetic"``) used to convert instructions into work units.
    """

    governor: str
    weather: str = WeatherCondition.FULL_SUN.value
    duration_s: float = 60.0
    seed: int = 7
    capacitance_f: float = PAPER_BUFFER_CAPACITANCE_F
    workload: str = "table2-render"
    governor_overrides: tuple[tuple[str, object], ...] = ()
    shadowing: tuple[ShadowSpec, ...] = ()
    monitor_quantised: bool = True

    def __post_init__(self) -> None:
        if not self.governor:
            raise ValueError("governor must be a non-empty name")
        # Normalise numeric types so equivalent physics hashes identically
        # (duration_s=900 and duration_s=900.0 must share a scenario_id).
        object.__setattr__(self, "duration_s", float(self.duration_s))
        object.__setattr__(self, "capacitance_f", float(self.capacitance_f))
        object.__setattr__(self, "seed", int(self.seed))
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.capacitance_f <= 0:
            raise ValueError("capacitance_f must be positive")
        WeatherCondition(self.weather)  # raises on unknown preset
        if isinstance(self.governor_overrides, Mapping):
            object.__setattr__(
                self,
                "governor_overrides",
                tuple(sorted(self.governor_overrides.items())),
            )
        else:
            object.__setattr__(
                self, "governor_overrides", tuple(tuple(p) for p in self.governor_overrides)
            )
        shadows = tuple(
            s if isinstance(s, ShadowSpec) else ShadowSpec.from_dict(s) for s in self.shadowing
        )
        object.__setattr__(self, "shadowing", shadows)

    # ------------------------------------------------------------------
    # Serialisation and identity
    # ------------------------------------------------------------------
    def overrides_dict(self) -> dict:
        return dict(self.governor_overrides)

    def to_dict(self) -> dict:
        return {
            "governor": self.governor,
            "weather": self.weather,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "capacitance_f": self.capacitance_f,
            "workload": self.workload,
            "governor_overrides": self.overrides_dict(),
            "shadowing": [s.to_dict() for s in self.shadowing],
            "monitor_quantised": self.monitor_quantised,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioConfig":
        return cls(
            governor=str(data["governor"]),
            weather=str(data.get("weather", WeatherCondition.FULL_SUN.value)),
            duration_s=float(data.get("duration_s", 60.0)),
            seed=int(data.get("seed", 7)),
            capacitance_f=float(data.get("capacitance_f", PAPER_BUFFER_CAPACITANCE_F)),
            workload=str(data.get("workload", "table2-render")),
            governor_overrides=tuple(sorted(dict(data.get("governor_overrides", {})).items())),
            shadowing=tuple(ShadowSpec.from_dict(s) for s in data.get("shadowing", [])),
            monitor_quantised=bool(data.get("monitor_quantised", True)),
        )

    def canonical_json(self) -> str:
        """Canonical serialisation used for content addressing."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @property
    def scenario_id(self) -> str:
        """Content hash of the config — the key in the result store."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()[:16]

    def label(self) -> str:
        """A compact human-readable tag for progress lines and tables."""
        parts = [self.governor, self.weather, f"{1e3 * self.capacitance_f:g}mF", f"seed{self.seed}"]
        if self.governor_overrides:
            parts.append("+".join(f"{k}={v}" for k, v in self.governor_overrides))
        if self.shadowing:
            parts.append(f"{len(self.shadowing)}shadow")
        return "/".join(parts)


_CONFIG_FIELDS = {f.name for f in fields(ScenarioConfig)}


@dataclass(frozen=True)
class Axis:
    """One swept dimension: a :class:`ScenarioConfig` field and its values."""

    name: str
    values: tuple

    def __init__(self, name: str, values: Sequence):
        if name not in _CONFIG_FIELDS:
            raise ValueError(
                f"unknown axis {name!r}; must be a ScenarioConfig field "
                f"({', '.join(sorted(_CONFIG_FIELDS))})"
            )
        values = tuple(values)
        if not values:
            raise ValueError(f"axis {name!r} needs at least one value")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class SweepSpec:
    """A base scenario plus the axes to sweep — the declarative campaign.

    Expansion is the cartesian product of all axis values applied on top of
    ``base``.  Axis order determines iteration order (last axis varies
    fastest), which keeps progress output grouped by the first axis.
    """

    base: ScenarioConfig
    axes: tuple[Axis, ...] = ()

    def __post_init__(self) -> None:
        axes = tuple(a if isinstance(a, Axis) else Axis(*a) for a in self.axes)
        names = [a.name for a in axes]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(f"duplicate sweep axes: {sorted(duplicates)}")
        object.__setattr__(self, "axes", axes)

    def __len__(self) -> int:
        n = 1
        for axis in self.axes:
            n *= len(axis)
        return n

    def scenarios(self) -> list[ScenarioConfig]:
        """Expand the grid into concrete scenario configs."""
        return list(self.iter_scenarios())

    def iter_scenarios(self) -> Iterator[ScenarioConfig]:
        if not self.axes:
            yield self.base
            return
        names = [a.name for a in self.axes]
        for combo in itertools.product(*(a.values for a in self.axes)):
            yield replace(self.base, **dict(zip(names, combo)))

    # ------------------------------------------------------------------
    # Convenience constructor for the common governor × condition grids
    # ------------------------------------------------------------------
    @classmethod
    def grid(
        cls,
        governors: Sequence[str],
        weather: Sequence[str] = (WeatherCondition.FULL_SUN.value,),
        capacitances_f: Sequence[float] = (PAPER_BUFFER_CAPACITANCE_F,),
        seeds: Sequence[int] = (7,),
        duration_s: float = 60.0,
        workload: str = "table2-render",
        shadowing: Sequence[ShadowSpec] = (),
        monitor_quantised: bool = True,
        extra_axes: Sequence[Axis] = (),
    ) -> "SweepSpec":
        """Build the standard governor × weather × capacitance × seed grid.

        Single-valued dimensions are folded into the base config so the
        expansion (and per-axis summaries) only see genuinely swept axes.
        """
        base = ScenarioConfig(
            governor=str(governors[0]),
            weather=str(weather[0]),
            duration_s=duration_s,
            seed=int(seeds[0]),
            capacitance_f=float(capacitances_f[0]),
            workload=workload,
            shadowing=tuple(shadowing),
            monitor_quantised=monitor_quantised,
        )
        axes: list[Axis] = []
        for name, values in (
            ("governor", [str(g) for g in governors]),
            ("weather", [str(w) for w in weather]),
            ("capacitance_f", [float(c) for c in capacitances_f]),
            ("seed", [int(s) for s in seeds]),
        ):
            if len(values) > 1:
                axes.append(Axis(name, values))
        axes.extend(extra_axes)
        return cls(base=base, axes=tuple(axes))
