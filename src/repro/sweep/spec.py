"""Declarative scenario grids: component specs, axes and sweep expansion.

The paper's evaluation spans two rigs — the PV-array outdoor system of
Sections V-B/C/D and the controlled laboratory supply of Section V-A — and
each cell of its grids is one closed-loop simulation.  This module describes
such grids declaratively:

* :class:`ScenarioConfig` — one fully specified simulation, composed of five
  registry-backed :class:`~repro.registry.ComponentSpec`s (``supply``,
  ``platform``, ``capacitor``, ``governor``, ``workload``) plus the scalar
  run knobs (``duration_s``, ``monitor_quantised``); serialisable to
  canonical JSON (schema v2) and content-addressed by
  :attr:`~ScenarioConfig.scenario_id`;
* :class:`Axis` — one swept dimension, addressed by a dotted path *inside*
  the composition (``"supply.weather"``, ``"capacitor.capacitance_f"``,
  ``"governor.kind"``) or a PR-1-era flat alias (``"weather"``, ``"seed"``,
  ``"capacitance_f"``, ...);
* :class:`SweepSpec` — a base config plus axes, expanded by
  :meth:`SweepSpec.scenarios` into the full cartesian product.

The content hash is what makes the result store (:mod:`repro.sweep.store`)
cache-correct: registry defaults are folded into every spec and numeric
spellings are normalised, so two configs with identical physics hash
identically.  :meth:`ScenarioConfig.from_dict` also accepts PR-1-era flat
records (schema v1) and upgrades them to the composed form.
"""

from __future__ import annotations

import functools
import hashlib
import itertools
import json
from dataclasses import asdict, dataclass
from typing import Iterator, Mapping, Optional, Sequence

from ..energy.irradiance import ShadowingEvent, WeatherCondition
from ..energy.supercapacitor import PAPER_BUFFER_CAPACITANCE_F
from ..registry import ComponentSpec, Registry, jsonable_value, normalise_value
from .components import CAPACITORS, GOVERNORS, PLATFORMS, SUPPLIES, WORKLOADS_REGISTRY

__all__ = [
    "SCHEMA_VERSION",
    "AXIS_ALIASES",
    "ShadowSpec",
    "ScenarioConfig",
    "Axis",
    "SweepSpec",
    "campaign_hash_of",
    "expand_unique",
    "resolve_axis_path",
    "component_label",
]


def campaign_hash_of(scenario_ids) -> str:
    """Content hash of a campaign: its (sorted) scenario-id set.

    Shared by :meth:`SweepSpec.campaign_hash` and the dist layer's
    :class:`~repro.sweep.dist.ShardPlan`, which hashes an already-expanded
    scenario list instead of re-expanding the spec.
    """
    digest = hashlib.sha256()
    for scenario_id in sorted(scenario_ids):
        digest.update(scenario_id.encode())
    return digest.hexdigest()[:16]

#: Version stamped into serialised configs and store records.  v1 was the
#: PR-1 flat layout (governor/weather/capacitance_f/... as top-level keys).
SCHEMA_VERSION = 2


@dataclass(frozen=True)
class ShadowSpec:
    """A deterministic shadowing episode, JSON-friendly.

    Mirrors :class:`repro.energy.irradiance.ShadowingEvent` but lives in the
    config layer so scenario configs stay plain data.
    """

    start_s: float
    duration_s: float
    attenuation: float = 0.2
    ramp_s: float = 0.5

    def __post_init__(self) -> None:
        # Normalise to float so int-vs-float spellings hash identically.
        for name in ("start_s", "duration_s", "attenuation", "ramp_s"):
            object.__setattr__(self, name, float(getattr(self, name)))
        # Delegate validation to the simulation-side event.
        self.to_event()

    def to_event(self) -> ShadowingEvent:
        return ShadowingEvent(
            start_s=self.start_s,
            duration_s=self.duration_s,
            attenuation=self.attenuation,
            ramp_s=self.ramp_s,
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "ShadowSpec":
        return cls(
            start_s=float(data["start_s"]),
            duration_s=float(data["duration_s"]),
            attenuation=float(data.get("attenuation", 0.2)),
            ramp_s=float(data.get("ramp_s", 0.5)),
        )


#: The five component fields of a scenario, in serialisation order.
_COMPONENT_FIELDS: tuple[str, ...] = ("supply", "platform", "capacitor", "governor", "workload")

#: Registry backing each component field.
_COMPONENT_REGISTRIES: dict[str, Registry] = {
    "supply": SUPPLIES,
    "platform": PLATFORMS,
    "capacitor": CAPACITORS,
    "governor": GOVERNORS,
    "workload": WORKLOADS_REGISTRY,
}

_SCALAR_FIELDS: tuple[str, ...] = ("duration_s", "monitor_quantised")

#: PR-1 flat axis/field names mapped onto the composed schema.
AXIS_ALIASES: dict[str, str] = {
    "weather": "supply.weather",
    "seed": "supply.seed",
    "shadowing": "supply.shadowing",
    "capacitance_f": "capacitor.capacitance_f",
    "governor_overrides": "governor.params",
}


def resolve_axis_path(name: str) -> str:
    """Canonicalise an axis/field path, expanding PR-1 flat aliases.

    ``"<component>.kind"`` collapses to the bare component name (the two
    spellings are one dimension, so duplicate detection must see them as
    equal).  Raises ``ValueError`` when the path's head is neither a scalar
    field nor a component field.
    """
    path = AXIS_ALIASES.get(name, name)
    head, _, sub = path.partition(".")
    if head not in _SCALAR_FIELDS and head not in _COMPONENT_FIELDS:
        raise ValueError(
            f"unknown axis {name!r}; use a scalar field "
            f"({', '.join(_SCALAR_FIELDS)}), a component "
            f"({', '.join(_COMPONENT_FIELDS)}), a dotted component path like "
            f"'supply.weather', or a flat alias ({', '.join(sorted(AXIS_ALIASES))})"
        )
    if head in _COMPONENT_FIELDS and sub == "kind":
        return head
    return path


def _non_default_params(spec: ComponentSpec, registry: Registry) -> dict:
    """The parameters of a (canonical) spec that differ from the kind's defaults."""
    defaults = registry.get(spec.kind).defaults
    return {
        k: v
        for k, v in spec.params_dict().items()
        if k not in defaults or normalise_value(defaults[k]) != normalise_value(v)
    }


def _switch_kind(spec: ComponentSpec, new_kind: str, registry: Registry) -> ComponentSpec:
    """Change a spec's kind, keeping only the *portable* parameters.

    Default-valued parameters belong to the old kind's canonical folding and
    are dropped; explicitly-set parameters carry over only when the new kind
    also declares them (always, for open-parameter kinds like governors, so
    a governor axis sweeps overrides the way the flat schema did).  This
    lets a whole-component axis hop between kinds — e.g. a pinned pv-array
    ``weather`` does not poison the ``constant-power`` leg of a supply axis.
    """
    kept = _non_default_params(spec, registry)
    entry = registry.get(new_kind)
    if not entry.open_params:
        kept = {k: v for k, v in kept.items() if k in entry.defaults}
    return ComponentSpec(kind=new_kind, params=kept)


def component_label(spec: ComponentSpec, field: str) -> str:
    """A distinguishing report label for one component of a scenario.

    The kind name alone when the spec is all-defaults, otherwise the kind
    plus the differing parameters — so two ``constant-power`` supplies at
    different ``power_w`` never collapse into one aggregation group.
    """
    extras = _non_default_params(spec, _COMPONENT_REGISTRIES[field])
    if not extras:
        return spec.kind
    inner = ",".join(f"{k}={v}" for k, v in sorted(extras.items()))
    return f"{spec.kind}({inner})"


@dataclass(frozen=True, init=False)
class ScenarioConfig:
    """One concrete simulation scenario, fully specified by plain data.

    A scenario is the composition of five registry-backed component specs
    plus two scalar knobs:

    Attributes
    ----------
    governor:
        ``{"kind": <registered governor>, **ControllerParameters overrides}``.
        Overrides are only meaningful for the tunable power-neutral family.
    supply:
        ``{"kind": "pv-array" | "controlled-voltage" | "constant-power" |
        "trace-file", **params}`` — see :mod:`repro.sweep.components`.
    platform:
        ``{"kind": "exynos5422", **electrical-envelope overrides}``.
    capacitor:
        ``{"kind": "supercapacitor", "capacitance_f": ..., "esr_ohm": ...,
        "leakage_conductance_s": ..., "max_voltage": ...,
        "initial_voltage": V | null | "open-circuit"}``.
    workload:
        ``{"kind": "table2-render" | "fig7-frame" | "synthetic", **params}``.
    duration_s / monitor_quantised:
        Simulation length and monitor-quantisation flag.

    PR-1-era flat keyword arguments (``weather``, ``seed``, ``capacitance_f``,
    ``governor_overrides``, ``shadowing``) are still accepted and fold into
    the corresponding component spec, so existing call sites keep working.
    Registry defaults are folded into every spec on construction, making the
    canonical JSON — and therefore :attr:`scenario_id` — independent of how
    sparsely the config was spelled.
    """

    governor: ComponentSpec
    supply: ComponentSpec
    platform: ComponentSpec
    capacitor: ComponentSpec
    workload: ComponentSpec
    duration_s: float
    monitor_quantised: bool

    def __init__(
        self,
        governor: ComponentSpec | Mapping | str,
        supply: ComponentSpec | Mapping | str | None = None,
        platform: ComponentSpec | Mapping | str | None = None,
        capacitor: ComponentSpec | Mapping | str | None = None,
        workload: ComponentSpec | Mapping | str | None = None,
        duration_s: float = 60.0,
        monitor_quantised: bool = True,
        *,
        weather: "WeatherCondition | str | None" = None,
        seed: Optional[int] = None,
        capacitance_f: Optional[float] = None,
        governor_overrides: Optional[Mapping | Sequence] = None,
        shadowing: Optional[Sequence] = None,
    ):
        if not governor:
            raise ValueError("governor must be a non-empty name or component spec")
        governor_spec = ComponentSpec.coerce(governor)
        if governor_overrides:
            governor_spec = governor_spec.with_params(**dict(governor_overrides))

        supply_spec = ComponentSpec.coerce(supply) if supply is not None else ComponentSpec("pv-array")
        legacy_supply: dict = {}
        if weather is not None:
            legacy_supply["weather"] = weather.value if isinstance(weather, WeatherCondition) else str(weather)
        if seed is not None:
            legacy_supply["seed"] = int(seed)
        if shadowing is not None and len(tuple(shadowing)) > 0:
            legacy_supply["shadowing"] = tuple(shadowing)
        if legacy_supply:
            if supply_spec.kind != "pv-array":
                raise ValueError(
                    "weather/seed/shadowing are pv-array parameters; set them on the "
                    f"supply spec instead (supply kind is {supply_spec.kind!r})"
                )
            supply_spec = supply_spec.with_params(**legacy_supply)

        platform_spec = (
            ComponentSpec.coerce(platform) if platform is not None else ComponentSpec("exynos5422")
        )
        capacitor_spec = (
            ComponentSpec.coerce(capacitor)
            if capacitor is not None
            else ComponentSpec("supercapacitor")
        )
        if capacitance_f is not None:
            capacitor_spec = capacitor_spec.with_params(capacitance_f=float(capacitance_f))
        workload_spec = (
            ComponentSpec.coerce(workload) if workload is not None else ComponentSpec("table2-render")
        )

        # Canonicalise: validate kinds/params and fold registry defaults in,
        # so equivalent sparse and explicit spellings share one scenario_id.
        object.__setattr__(self, "governor", GOVERNORS.canonical(governor_spec))
        object.__setattr__(self, "supply", SUPPLIES.canonical(supply_spec))
        object.__setattr__(self, "platform", PLATFORMS.canonical(platform_spec))
        object.__setattr__(self, "capacitor", CAPACITORS.canonical(capacitor_spec))
        object.__setattr__(self, "workload", WORKLOADS_REGISTRY.canonical(workload_spec))

        duration_s = float(duration_s)
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        object.__setattr__(self, "duration_s", duration_s)
        object.__setattr__(self, "monitor_quantised", bool(monitor_quantised))

        cap = self.capacitor.get("capacitance_f")
        if cap is None or float(cap) <= 0:
            raise ValueError("capacitance_f must be positive")

    # ------------------------------------------------------------------
    # Flat-schema compatibility accessors
    # ------------------------------------------------------------------
    @property
    def weather(self) -> Optional[str]:
        """The pv-array weather preset (None for other supply kinds)."""
        return self.supply.get("weather")

    @property
    def seed(self) -> Optional[int]:
        """The pv-array irradiance seed (None for other supply kinds)."""
        value = self.supply.get("seed")
        return None if value is None else int(value)

    @property
    def capacitance_f(self) -> float:
        return float(self.capacitor.get("capacitance_f", PAPER_BUFFER_CAPACITANCE_F))

    @property
    def governor_overrides(self) -> tuple[tuple[str, object], ...]:
        return self.governor.params

    @property
    def shadowing(self) -> tuple[ShadowSpec, ...]:
        return tuple(ShadowSpec.from_dict(s) for s in self.supply.get("shadowing") or ())

    def overrides_dict(self) -> dict:
        return self.governor.params_dict()

    # ------------------------------------------------------------------
    # Dotted-path access (shared by Axis expansion and aggregation)
    # ------------------------------------------------------------------
    def get(self, path: str):
        """Read a value by dotted path (``"supply.weather"``) or alias."""
        path = resolve_axis_path(path)
        head, _, sub = path.partition(".")
        if head in _SCALAR_FIELDS:
            return getattr(self, head)
        spec: ComponentSpec = getattr(self, head)
        if not sub or sub == "kind":
            return spec.kind
        if sub == "params":
            return spec.params_dict()
        return spec.get(sub)

    def with_value(self, path: str, value) -> "ScenarioConfig":
        """A copy with one dotted path (or alias) replaced.

        * ``"duration_s"`` — scalar replacement;
        * ``"supply"`` with a mapping/spec — whole-component replacement;
        * ``"governor"`` / ``"governor.kind"`` with a string — kind switch
          keeping explicitly-set (non-default) parameters;
        * ``"governor.params"`` — wholesale parameter replacement;
        * ``"capacitor.capacitance_f"`` — single parameter set/override.
        """
        path = resolve_axis_path(path)
        head, _, sub = path.partition(".")
        kwargs = {
            "governor": self.governor,
            "supply": self.supply,
            "platform": self.platform,
            "capacitor": self.capacitor,
            "workload": self.workload,
            "duration_s": self.duration_s,
            "monitor_quantised": self.monitor_quantised,
        }
        if head in _SCALAR_FIELDS:
            kwargs[head] = value
        else:
            spec: ComponentSpec = kwargs[head]
            registry = _COMPONENT_REGISTRIES[head]
            if not sub:  # bare component, or "<comp>.kind" (canonicalised away)
                if isinstance(value, str):
                    kwargs[head] = _switch_kind(spec, value, registry)
                else:
                    kwargs[head] = ComponentSpec.coerce(value)
            elif sub == "params":
                kwargs[head] = ComponentSpec(kind=spec.kind, params=dict(value or {}))
            else:
                kwargs[head] = spec.with_params(**{sub: value})
        return ScenarioConfig(**kwargs)

    # ------------------------------------------------------------------
    # Serialisation and identity
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        duration = self.duration_s
        return {
            "schema": SCHEMA_VERSION,
            "governor": self.governor.to_dict(),
            "supply": self.supply.to_dict(),
            "platform": self.platform.to_dict(),
            "capacitor": self.capacitor.to_dict(),
            "workload": self.workload.to_dict(),
            "duration_s": int(duration) if duration.is_integer() else duration,
            "monitor_quantised": self.monitor_quantised,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioConfig":
        """Load a config dict — composed (schema v2) or PR-1-era flat (v1).

        A schema-less dict is treated as v1 only when *no* component field is
        spelled in the composed ``{"kind": ...}`` form; hand-written dicts
        mixing a string governor with composed components parse as composed
        (any flat pv-array keys riding along still fold in).
        """
        schema = data.get("schema")
        composed = any(
            isinstance(data.get(name), (Mapping, ComponentSpec))
            for name in ("governor", *_COMPONENT_FIELDS)
        )
        if schema is None and not composed:
            return cls._from_v1_dict(data)
        if schema is not None and int(schema) > SCHEMA_VERSION:
            raise ValueError(
                f"scenario schema v{schema} is newer than this build understands "
                f"(up to v{SCHEMA_VERSION})"
            )
        flat_extras: dict = {}
        for key in ("weather", "seed", "capacitance_f", "governor_overrides", "shadowing"):
            if data.get(key) is not None:
                flat_extras[key] = data[key]
        return cls(
            governor=ComponentSpec.coerce(data["governor"]),
            supply=ComponentSpec.coerce(data.get("supply", "pv-array")),
            platform=ComponentSpec.coerce(data.get("platform", "exynos5422")),
            capacitor=ComponentSpec.coerce(data.get("capacitor", "supercapacitor")),
            workload=ComponentSpec.coerce(data.get("workload", "table2-render")),
            duration_s=float(data.get("duration_s", 60.0)),
            monitor_quantised=bool(data.get("monitor_quantised", True)),
            **flat_extras,
        )

    @classmethod
    def _from_v1_dict(cls, data: Mapping) -> "ScenarioConfig":
        """Upgrade a PR-1 flat record to the composed schema."""
        return cls(
            governor=str(data["governor"]),
            weather=str(data.get("weather", WeatherCondition.FULL_SUN.value)),
            duration_s=float(data.get("duration_s", 60.0)),
            seed=int(data.get("seed", 7)),
            capacitance_f=float(data.get("capacitance_f", PAPER_BUFFER_CAPACITANCE_F)),
            workload=str(data.get("workload", "table2-render")),
            governor_overrides=dict(data.get("governor_overrides", {})),
            shadowing=tuple(ShadowSpec.from_dict(s) for s in data.get("shadowing", [])),
            monitor_quantised=bool(data.get("monitor_quantised", True)),
        )

    def canonical_json(self) -> str:
        """Canonical serialisation used for content addressing."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @functools.cached_property
    def scenario_id(self) -> str:
        """Content hash of the config — the key in the result store.

        Computed once per instance (the config is frozen, so the hash cannot
        change): store lookups, runner dedup and shard partitioning all read
        the same id repeatedly.
        """
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()[:16]

    def label(self) -> str:
        """A compact human-readable tag for progress lines and tables."""
        parts = [self.governor.kind]
        if self.supply.kind == "pv-array":
            parts.append(str(self.weather))
            parts.append(f"{1e3 * self.capacitance_f:g}mF")
            parts.append(f"seed{self.seed}")
        else:
            parts.append(self.supply.kind)
            power = self.supply.get("power_w")
            if power is not None:
                parts.append(f"{power:g}W")
            parts.append(f"{1e3 * self.capacitance_f:g}mF")
        if self.governor.params:
            parts.append("+".join(f"{k}={v}" for k, v in self.governor.params))
        if self.shadowing:
            parts.append(f"{len(self.shadowing)}shadow")
        return "/".join(parts)


def expand_unique(campaign) -> "list[ScenarioConfig]":
    """Expand a campaign into de-duplicated configs in stable partition order.

    ``campaign`` is a :class:`SweepSpec` or any sequence of configs.  First
    occurrence wins and order follows the spec's deterministic axis product
    (or the given sequence) — the one expansion every consumer (runners,
    shard partitioning, campaign hashing) must agree on.
    """
    scenarios = campaign.scenarios() if isinstance(campaign, SweepSpec) else list(campaign)
    unique: dict[str, ScenarioConfig] = {}
    for config in scenarios:
        unique.setdefault(config.scenario_id, config)
    return list(unique.values())


@dataclass(frozen=True)
class Axis:
    """One swept dimension: a dotted config path and the values it takes.

    Paths address the composed schema (``"supply.weather"``,
    ``"capacitor.capacitance_f"``, ``"governor.kind"``, whole components like
    ``"supply"``, or scalars like ``"duration_s"``); PR-1 flat aliases
    (``"governor"``, ``"weather"``, ``"seed"``, ``"capacitance_f"``,
    ``"governor_overrides"``, ``"shadowing"``) keep working.
    """

    name: str
    values: tuple

    def __init__(self, name: str, values: Sequence):
        resolve_axis_path(name)  # raises on unknown heads
        values = tuple(values)
        if not values:
            raise ValueError(f"axis {name!r} needs at least one value")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class SweepSpec:
    """A base scenario plus the axes to sweep — the declarative campaign.

    Expansion is the cartesian product of all axis values applied on top of
    ``base`` via :meth:`ScenarioConfig.with_value`.  Axis order determines
    iteration order (last axis varies fastest), which keeps progress output
    grouped by the first axis.
    """

    base: ScenarioConfig
    axes: tuple[Axis, ...] = ()

    def __post_init__(self) -> None:
        axes = tuple(a if isinstance(a, Axis) else Axis(*a) for a in self.axes)
        names = [resolve_axis_path(a.name) for a in axes]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(f"duplicate sweep axes: {sorted(duplicates)}")
        object.__setattr__(self, "axes", axes)

    def __len__(self) -> int:
        n = 1
        for axis in self.axes:
            n *= len(axis)
        return n

    def scenarios(self) -> list[ScenarioConfig]:
        """Expand the grid into concrete scenario configs."""
        return list(self.iter_scenarios())

    def iter_scenarios(self) -> Iterator[ScenarioConfig]:
        if not self.axes:
            yield self.base
            return
        names = [a.name for a in self.axes]
        for combo in itertools.product(*(a.values for a in self.axes)):
            config = self.base
            for name, value in zip(names, combo):
                config = config.with_value(name, value)
            yield config

    # ------------------------------------------------------------------
    # Campaign identity and serialisation (the distributed-execution
    # contract: every shard worker must agree on what the campaign *is*)
    # ------------------------------------------------------------------
    def scenario_ids(self) -> list[str]:
        """De-duplicated scenario ids, in the spec's stable expansion order.

        This is the **partition order** shard execution relies on: axis
        expansion is a deterministic cartesian product and the dedup is the
        same :func:`expand_unique` every runner uses, so every process
        expanding the same spec sees the same ids in the same order.
        """
        return [config.scenario_id for config in expand_unique(self)]

    def campaign_hash(self) -> str:
        """Content hash of the campaign: the *set* of scenarios it expands to.

        Hashed over the sorted scenario ids, so two spellings of the same
        grid — reordered axes, aliased paths, sparse vs explicit component
        specs — hash identically, while any change to the physics (an extra
        seed, a different duration) produces a new campaign.  Execution
        details (engine choice, worker counts, sharding) are deliberately
        excluded, exactly as they are excluded from the scenario ids.
        """
        return campaign_hash_of(self.scenario_ids())

    def to_dict(self) -> dict:
        """JSON-ready snapshot (base config + axes) for shard manifests."""
        return {
            "schema": SCHEMA_VERSION,
            "base": self.base.to_dict(),
            "axes": [
                {
                    "name": axis.name,
                    "values": [jsonable_value(normalise_value(v)) for v in axis.values],
                }
                for axis in self.axes
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepSpec":
        """Rebuild a spec from :meth:`to_dict` output (e.g. a shard manifest).

        Axis values round-trip through the same normalise/jsonify pair the
        scenario configs use, so the rebuilt spec expands to the identical
        scenario ids — :meth:`campaign_hash` is stable across the trip.
        """
        base = ScenarioConfig.from_dict(data["base"])
        axes = tuple(
            Axis(str(axis["name"]), tuple(axis["values"])) for axis in data.get("axes", ())
        )
        return cls(base=base, axes=axes)

    # ------------------------------------------------------------------
    # Convenience constructor for the common governor × condition grids
    # ------------------------------------------------------------------
    @classmethod
    def grid(
        cls,
        governors: Sequence[str],
        weather: Optional[Sequence[str]] = None,
        capacitances_f: Optional[Sequence[float]] = None,
        seeds: Optional[Sequence[int]] = None,
        duration_s: float = 60.0,
        workload: str = "table2-render",
        shadowing: Sequence[ShadowSpec] = (),
        monitor_quantised: bool = True,
        extra_axes: Sequence[Axis] = (),
        supply: "ComponentSpec | Mapping | str | None" = None,
    ) -> "SweepSpec":
        """Build the standard governor × weather × capacitance × seed grid.

        ``supply`` selects the rig (default: the outdoor pv-array).  The
        weather / capacitance / seed dimensions default to ``None`` meaning
        "not swept": the supply/capacitor specs (and their registry defaults)
        stay authoritative, so ``supply={"kind": "pv-array", "weather":
        "cloud"}`` is not clobbered by a built-in default.  Weather, seed and
        shadowing only exist on the pv-array supply; passing them with
        another supply kind is rejected.  Single-valued dimensions fold into
        the base config so the expansion (and per-axis summaries) only see
        genuinely swept axes.
        """
        supply_spec = ComponentSpec.coerce(supply) if supply is not None else ComponentSpec("pv-array")
        pv = supply_spec.kind == "pv-array"
        if not pv and (weather is not None or seeds is not None or shadowing):
            raise ValueError(
                "weather/seed/shadowing dimensions only apply to the pv-array "
                f"supply (got supply kind {supply_spec.kind!r})"
            )
        base = ScenarioConfig(
            governor=str(governors[0]),
            supply=supply_spec,
            weather=str(weather[0]) if weather else None,
            duration_s=duration_s,
            seed=int(seeds[0]) if seeds else None,
            capacitance_f=float(capacitances_f[0]) if capacitances_f else None,
            workload=workload,
            shadowing=tuple(shadowing) if pv else None,
            monitor_quantised=monitor_quantised,
        )
        axes: list[Axis] = []
        for name, values in (
            ("governor", [str(g) for g in governors]),
            ("supply.weather", [str(w) for w in weather or ()]),
            ("capacitor.capacitance_f", [float(c) for c in capacitances_f or ()]),
            ("supply.seed", [int(s) for s in seeds or ()]),
        ):
            if len(values) > 1:
                axes.append(Axis(name, values))
        axes.extend(extra_axes)
        return cls(base=base, axes=tuple(axes))
