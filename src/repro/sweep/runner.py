"""Campaign execution: fan scenarios out over workers, feed the store.

The runner takes an expanded scenario list (or a :class:`SweepSpec`), skips
every cell the store already holds a successful record for, and executes the
remainder either inline (``workers <= 1``) or on a ``multiprocessing`` pool.
Each finished record is appended to the store *immediately*, so interrupting a
campaign (Ctrl-C, OOM kill, power loss) costs at most the scenarios in
flight — rerunning with the same store resumes where it stopped.

Worker failures are captured as ``status == "error"`` records and per-scenario
timeouts as ``status == "timeout"``; both are persisted for post-mortems and
retried on the next run.  A progress callback receives every completed cell
(cached or computed) for live reporting.
"""

from __future__ import annotations

import collections
import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, Sequence, Union

from .. import faults
from ..faults import DEFAULT_RETRY_POLICY, RetryPolicy, classify_error
from ..obs.telemetry import DISABLED, Telemetry
from ..obs.timeseries import DEFAULT_LATENCY_BOUNDARIES
from .scenario import run_scenario
from .spec import ScenarioConfig, SweepSpec, expand_unique
from .store import ResultStore

__all__ = ["CampaignRunner", "SweepReport", "SweepRunner", "expand_unique"]

#: progress(done, total, record, cached) — called after every completed cell.
ProgressCallback = Callable[[int, int, dict, bool], None]


class CampaignRunner(Protocol):
    """What campaign consumers (e.g. the boundary search) require of a runner.

    :class:`SweepRunner` is the single-host implementation;
    :class:`repro.sweep.dist.DistRunner` satisfies the same protocol by
    fanning each ``run`` batch out over shard worker processes, so any code
    written against this protocol distributes transparently.
    """

    store: ResultStore

    def run(self, campaign: Union[SweepSpec, Sequence[ScenarioConfig]]) -> "SweepReport":
        ...


@dataclass
class SweepReport:
    """Outcome of one campaign run."""

    total: int = 0
    executed: int = 0
    cached: int = 0
    failed: int = 0
    timed_out: int = 0
    retried: int = 0
    elapsed_s: float = 0.0
    records: list[dict] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return self.failed == 0 and self.timed_out == 0

    def ok_records(self) -> list[dict]:
        return [r for r in self.records if r.get("status") == "ok"]

    def summary(self) -> dict:
        return {
            "scenarios": self.total,
            "executed": self.executed,
            "cached": self.cached,
            "failed": self.failed,
            "timed_out": self.timed_out,
            "retried": self.retried,
            "elapsed_s": self.elapsed_s,
        }


def _execute_payload(payload: "tuple[dict, int, bool] | tuple") -> dict:
    """Top-level worker entry point (picklable for multiprocessing).

    The optional fourth element is the coordinator's wall-clock submission
    time; the gap to the worker actually starting is the scenario's
    **queue-wait** phase (same machine, same clock), folded into the
    record's ``timings``.  The optional fifth element is a serialised
    :class:`~repro.faults.RetryPolicy` governing in-worker retries.

    Transient failures (I/O, injected chaos — see
    :func:`~repro.faults.classify_error`) are retried here, inside the
    worker, with the policy's backoff; deterministic failures and exhausted
    retries return an ``error`` record stamped with ``error_kind`` and the
    attempt count.  Every record carries ``attempts`` (volatile, excluded
    from identity) so the coordinator can count ``retry.*`` without a
    second channel.
    """
    config_dict, series_samples, fast = payload[:3]
    queue_wait_s = (
        max(0.0, time.time() - payload[3])
        if len(payload) > 3 and payload[3] is not None
        else 0.0
    )
    retry = RetryPolicy.from_dict(payload[4]) if len(payload) > 4 else DEFAULT_RETRY_POLICY
    config = ScenarioConfig.from_dict(config_dict)
    injector = faults.active()
    attempt = 0
    injected = 0
    while True:
        attempt += 1
        try:
            if injector is not None:
                rule = injector.fire(
                    "worker.simulate", scenario_id=config.scenario_id, attempt=attempt
                )
                if rule is not None:
                    injected += 1
            record = run_scenario(config, series_samples=series_samples, fast=fast)
        except Exception as exc:  # noqa: BLE001 — workers must not crash the pool
            if getattr(exc, "site", None) is not None:
                injected += 1
            kind = classify_error(exc)
            if kind == "transient" and attempt < retry.max_attempts:
                time.sleep(retry.delay_s(attempt, key=config.scenario_id))
                continue
            record = {
                "scenario_id": config.scenario_id,
                "config": config.to_dict(),
                "status": "error",
                "error": f"{type(exc).__name__}: {exc}",
                "error_kind": kind,
                "traceback": traceback.format_exc(),
            }
        else:
            record.setdefault("timings", {})["queue_wait_s"] = round(queue_wait_s, 6)
        record["attempts"] = attempt
        if injected:
            record["faults_injected"] = injected
        return record


class SweepRunner:
    """Executes a scenario campaign against a persistent result store.

    Parameters
    ----------
    store:
        The :class:`~repro.sweep.store.ResultStore` holding completed cells.
    workers:
        Number of worker processes; ``<= 1`` runs inline in this process.
    timeout_s:
        Per-scenario wall-clock budget.  Setting it forces pool execution —
        a 1-slot pool when ``workers == 1`` — because an inline run cannot
        be interrupted without signals; leave it ``None`` for true inline
        execution.
    series_samples:
        When > 0, each record stores the simulation series decimated to this
        many samples.
    progress:
        Optional ``progress(done, total, record, cached)`` callback.
    fast:
        Engine choice threaded into every scenario: ``True`` (default) runs
        the fast simulation core, ``False`` the exact reference engine
        (``build_system(fast=False)``).  An execution detail only — it is
        not part of the scenario identity, so records computed under either
        engine share one store and cache-hit each other.
    telemetry:
        A :class:`~repro.obs.telemetry.Telemetry` bundle.  When given, the
        run emits a ``campaign.run`` span partitioned into
        ``campaign.phase`` spans (expand / cache-scan / execute), one
        ``scenario`` span per completed cell (with queue-wait / build /
        simulate / record-write phase timings), and cache-hit / timeout /
        failure counters.  Defaults to the disabled bundle, whose methods
        are no-ops and which never touches the filesystem.
    retry:
        A :class:`~repro.faults.RetryPolicy` for *transient* in-worker
        failures (I/O errors, injected chaos): the failing scenario is
        re-attempted inside its worker with backoff before an ``error``
        record is ever written, counted as ``retry.attempt`` /
        ``retry.exhausted``.  Deterministic failures (bad configs) and
        timeouts are never retried in-campaign.  Defaults to
        :data:`~repro.faults.DEFAULT_RETRY_POLICY` (3 attempts).
    """

    def __init__(
        self,
        store: ResultStore,
        workers: int = 1,
        timeout_s: Optional[float] = None,
        series_samples: int = 0,
        progress: Optional[ProgressCallback] = None,
        fast: bool = True,
        telemetry: Optional[Telemetry] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.store = store
        self.workers = max(1, int(workers))
        self.timeout_s = timeout_s
        self.series_samples = int(series_samples)
        self.progress = progress
        self.fast = bool(fast)
        self.telemetry = telemetry if telemetry is not None else DISABLED
        self.retry = retry if retry is not None else DEFAULT_RETRY_POLICY

    # ------------------------------------------------------------------
    def run(self, campaign: Union[SweepSpec, Sequence[ScenarioConfig]]) -> SweepReport:
        """Run every scenario not already completed in the store.

        Phase spans are measured with *shared* clock marks — each phase ends
        exactly where the next begins — so the ``campaign.phase`` spans tile
        the ``campaign.run`` span and a trace report's phase coverage is 1.0
        by construction, not modulo span-emission overhead.
        """
        tracer, metrics = self.telemetry.tracer, self.telemetry.metrics
        started = time.perf_counter()
        configs = self._expand(campaign)
        mark = time.perf_counter()
        tracer.span_event("campaign.phase", mark - started, phase="expand")
        report = SweepReport(total=len(configs))

        pending: list[ScenarioConfig] = []
        done = 0
        for config in configs:
            if self.store.is_complete(config):
                lookup_t0 = time.perf_counter()
                record = self.store.get(config)
                report.cached += 1
                report.records.append(record)
                done += 1
                metrics.counter("campaign.cache_hits")
                tracer.span_event(
                    "scenario",
                    time.perf_counter() - lookup_t0,
                    scenario_id=config.scenario_id,
                    status=record.get("status"),
                    cached=True,
                )
                self._notify(done, report.total, record, cached=True)
            else:
                pending.append(config)
        prev, mark = mark, time.perf_counter()
        tracer.span_event("campaign.phase", mark - prev, phase="cache-scan")

        if pending:
            # A timeout is a promise of enforcement: honour it even at
            # workers == 1 by running a 1-slot pool (the serial path cannot
            # interrupt a hung scenario).
            use_pool = self.workers > 1 or self.timeout_s is not None
            runner = self._run_pool if use_pool else self._run_serial
            for record in runner(pending):
                write_t0 = time.perf_counter()
                self.store.append(record)
                write_s = time.perf_counter() - write_t0
                report.records.append(record)
                report.executed += 1
                status = record.get("status")
                if status == "error":
                    report.failed += 1
                    metrics.counter("campaign.failed")
                    if record.get("error_kind") == "transient":
                        # In-worker retries ran out: the failure is persisted,
                        # but a resume (or a respawned worker) may still clear it.
                        metrics.counter("retry.exhausted")
                        tracer.counter(
                            "retry.exhausted", scenario_id=record.get("scenario_id")
                        )
                elif status == "timeout":
                    report.timed_out += 1
                    metrics.counter("campaign.timeouts")
                attempts = int(record.get("attempts") or 1)
                if attempts > 1:
                    report.retried += attempts - 1
                    metrics.counter("retry.attempt", attempts - 1)
                    tracer.counter(
                        "retry.attempt",
                        attempts - 1,
                        scenario_id=record.get("scenario_id"),
                    )
                injected = int(record.get("faults_injected") or 0)
                if injected:
                    # Worker-side injections, re-counted into the coordinator's
                    # registry (pool children have no telemetry of their own).
                    metrics.counter("faults.injected", injected)
                    tracer.counter("faults.injected", injected, site="worker.simulate")
                metrics.counter("campaign.executed")
                metrics.observe("campaign.scenario_s", record.get("elapsed_s", 0.0))
                # The mergeable shape of the same signal: every worker's
                # registry carries this series, so a sharded campaign's
                # sidecars fold into one cross-worker latency distribution.
                metrics.histogram(
                    "scenario_duration_seconds", boundaries=DEFAULT_LATENCY_BOUNDARIES
                ).observe(record.get("elapsed_s", 0.0))
                timings = record.get("timings") or {}
                tracer.span_event(
                    "scenario",
                    record.get("elapsed_s", 0.0),
                    scenario_id=record.get("scenario_id"),
                    status=status,
                    cached=False,
                    record_write_s=round(write_s, 6),
                    **{k: timings.get(k) for k in ("queue_wait_s", "build_s", "simulate_s")},
                )
                done += 1
                self._notify(done, report.total, record, cached=False)
            prev, mark = mark, time.perf_counter()
            tracer.span_event("campaign.phase", mark - prev, phase="execute")

        report.elapsed_s = mark - started
        tracer.span_event(
            "campaign.run", mark - started, workers=self.workers, **report.summary()
        )
        return report

    # ------------------------------------------------------------------
    def _expand(self, campaign) -> list[ScenarioConfig]:
        return expand_unique(campaign)

    def _notify(self, done: int, total: int, record: dict, cached: bool) -> None:
        if self.progress is not None:
            self.progress(done, total, record, cached)

    def _run_serial(self, pending: list[ScenarioConfig]):
        # Queue-wait is measured from when the batch was enqueued: a
        # scenario's wait is the time it spent behind earlier work.
        enqueued_wall = time.time()
        retry = self.retry.to_dict()
        for config in pending:
            yield _execute_payload(
                (config.to_dict(), self.series_samples, self.fast, enqueued_wall, retry)
            )

    def _run_pool(self, pending: list[ScenarioConfig]):
        """Yield records in completion order, with real per-scenario deadlines.

        Submission is slot-limited (at most ``workers`` tasks outstanding), so
        a task starts as soon as it is submitted and its deadline measures
        actual runtime — queued scenarios can never be falsely timed out
        behind a hung one.  Records are yielded (and therefore persisted by
        the caller) the moment they complete, not in submission order, so an
        interrupt loses at most the scenarios actually in flight.  A slot
        whose scenario overruns its deadline stays occupied by the hung
        worker; if every slot hangs the pool is recycled.
        """
        ctx = multiprocessing.get_context()
        n_slots = min(self.workers, len(pending))
        queue = collections.deque(pending)
        # Queue-wait baseline: every pending scenario is logically enqueued
        # now; a worker's measured wait is the time its cell spent queued
        # behind earlier cells (plus pool dispatch latency).
        enqueued_wall = time.time()
        pool = ctx.Pool(processes=n_slots)
        active: dict = {}  # async handle -> (config, deadline or None)
        hung = 0
        try:
            while queue or active:
                while queue and len(active) + hung < n_slots:
                    config = queue.popleft()
                    handle = pool.apply_async(
                        _execute_payload,
                        (
                            (
                                config.to_dict(),
                                self.series_samples,
                                self.fast,
                                enqueued_wall,
                                self.retry.to_dict(),
                            ),
                        ),
                    )
                    deadline = (
                        time.monotonic() + self.timeout_s if self.timeout_s is not None else None
                    )
                    active[handle] = (config, deadline)
                completed = [h for h in active if h.ready()]
                for handle in completed:
                    active.pop(handle)
                    yield handle.get()
                if completed:
                    continue
                now = time.monotonic()
                expired = [
                    h for h, (_, deadline) in active.items() if deadline is not None and now >= deadline
                ]
                for handle in expired:
                    config, _ = active.pop(handle)
                    hung += 1
                    yield {
                        "scenario_id": config.scenario_id,
                        "config": config.to_dict(),
                        "status": "timeout",
                        "error": f"scenario exceeded {self.timeout_s:.0f} s budget",
                    }
                if hung >= n_slots:
                    # Every worker is stuck on an overrunning scenario: kill
                    # the pool and start a fresh one for the remaining cells.
                    pool.terminate()
                    pool.join()
                    pool = ctx.Pool(processes=n_slots)
                    hung = 0
                elif not expired:
                    time.sleep(0.02)
        finally:
            pool.terminate()
            pool.join()
