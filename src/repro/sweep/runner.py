"""Campaign execution: fan scenarios out over workers, feed the store.

The runner takes an expanded scenario list (or a :class:`SweepSpec`), skips
every cell the store already holds a successful record for, and executes the
remainder either inline (``workers <= 1``) or on a ``multiprocessing`` pool.
Each finished record is appended to the store *immediately*, so interrupting a
campaign (Ctrl-C, OOM kill, power loss) costs at most the scenarios in
flight — rerunning with the same store resumes where it stopped.

Worker failures are captured as ``status == "error"`` records and per-scenario
timeouts as ``status == "timeout"``; both are persisted for post-mortems and
retried on the next run.  A progress callback receives every completed cell
(cached or computed) for live reporting.
"""

from __future__ import annotations

import collections
import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, Sequence, Union

from .scenario import run_scenario
from .spec import ScenarioConfig, SweepSpec, expand_unique
from .store import ResultStore

__all__ = ["CampaignRunner", "SweepReport", "SweepRunner", "expand_unique"]

#: progress(done, total, record, cached) — called after every completed cell.
ProgressCallback = Callable[[int, int, dict, bool], None]


class CampaignRunner(Protocol):
    """What campaign consumers (e.g. the boundary search) require of a runner.

    :class:`SweepRunner` is the single-host implementation;
    :class:`repro.sweep.dist.DistRunner` satisfies the same protocol by
    fanning each ``run`` batch out over shard worker processes, so any code
    written against this protocol distributes transparently.
    """

    store: ResultStore

    def run(self, campaign: Union[SweepSpec, Sequence[ScenarioConfig]]) -> "SweepReport":
        ...


@dataclass
class SweepReport:
    """Outcome of one campaign run."""

    total: int = 0
    executed: int = 0
    cached: int = 0
    failed: int = 0
    timed_out: int = 0
    elapsed_s: float = 0.0
    records: list[dict] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return self.failed == 0 and self.timed_out == 0

    def ok_records(self) -> list[dict]:
        return [r for r in self.records if r.get("status") == "ok"]

    def summary(self) -> dict:
        return {
            "scenarios": self.total,
            "executed": self.executed,
            "cached": self.cached,
            "failed": self.failed,
            "timed_out": self.timed_out,
            "elapsed_s": self.elapsed_s,
        }


def _execute_payload(payload: tuple[dict, int, bool]) -> dict:
    """Top-level worker entry point (picklable for multiprocessing)."""
    config_dict, series_samples, fast = payload
    config = ScenarioConfig.from_dict(config_dict)
    try:
        return run_scenario(config, series_samples=series_samples, fast=fast)
    except Exception as exc:  # noqa: BLE001 — workers must not crash the pool
        return {
            "scenario_id": config.scenario_id,
            "config": config.to_dict(),
            "status": "error",
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }


class SweepRunner:
    """Executes a scenario campaign against a persistent result store.

    Parameters
    ----------
    store:
        The :class:`~repro.sweep.store.ResultStore` holding completed cells.
    workers:
        Number of worker processes; ``<= 1`` runs inline in this process.
    timeout_s:
        Per-scenario wall-clock budget.  Setting it forces pool execution —
        a 1-slot pool when ``workers == 1`` — because an inline run cannot
        be interrupted without signals; leave it ``None`` for true inline
        execution.
    series_samples:
        When > 0, each record stores the simulation series decimated to this
        many samples.
    progress:
        Optional ``progress(done, total, record, cached)`` callback.
    fast:
        Engine choice threaded into every scenario: ``True`` (default) runs
        the fast simulation core, ``False`` the exact reference engine
        (``build_system(fast=False)``).  An execution detail only — it is
        not part of the scenario identity, so records computed under either
        engine share one store and cache-hit each other.
    """

    def __init__(
        self,
        store: ResultStore,
        workers: int = 1,
        timeout_s: Optional[float] = None,
        series_samples: int = 0,
        progress: Optional[ProgressCallback] = None,
        fast: bool = True,
    ):
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.store = store
        self.workers = max(1, int(workers))
        self.timeout_s = timeout_s
        self.series_samples = int(series_samples)
        self.progress = progress
        self.fast = bool(fast)

    # ------------------------------------------------------------------
    def run(self, campaign: Union[SweepSpec, Sequence[ScenarioConfig]]) -> SweepReport:
        """Run every scenario not already completed in the store."""
        configs = self._expand(campaign)
        report = SweepReport(total=len(configs))
        started = time.perf_counter()

        pending: list[ScenarioConfig] = []
        done = 0
        for config in configs:
            if self.store.is_complete(config):
                record = self.store.get(config)
                report.cached += 1
                report.records.append(record)
                done += 1
                self._notify(done, report.total, record, cached=True)
            else:
                pending.append(config)

        if pending:
            # A timeout is a promise of enforcement: honour it even at
            # workers == 1 by running a 1-slot pool (the serial path cannot
            # interrupt a hung scenario).
            use_pool = self.workers > 1 or self.timeout_s is not None
            runner = self._run_pool if use_pool else self._run_serial
            for record in runner(pending):
                self.store.append(record)
                report.records.append(record)
                report.executed += 1
                status = record.get("status")
                if status == "error":
                    report.failed += 1
                elif status == "timeout":
                    report.timed_out += 1
                done += 1
                self._notify(done, report.total, record, cached=False)

        report.elapsed_s = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------
    def _expand(self, campaign) -> list[ScenarioConfig]:
        return expand_unique(campaign)

    def _notify(self, done: int, total: int, record: dict, cached: bool) -> None:
        if self.progress is not None:
            self.progress(done, total, record, cached)

    def _run_serial(self, pending: list[ScenarioConfig]):
        for config in pending:
            yield _execute_payload((config.to_dict(), self.series_samples, self.fast))

    def _run_pool(self, pending: list[ScenarioConfig]):
        """Yield records in completion order, with real per-scenario deadlines.

        Submission is slot-limited (at most ``workers`` tasks outstanding), so
        a task starts as soon as it is submitted and its deadline measures
        actual runtime — queued scenarios can never be falsely timed out
        behind a hung one.  Records are yielded (and therefore persisted by
        the caller) the moment they complete, not in submission order, so an
        interrupt loses at most the scenarios actually in flight.  A slot
        whose scenario overruns its deadline stays occupied by the hung
        worker; if every slot hangs the pool is recycled.
        """
        ctx = multiprocessing.get_context()
        n_slots = min(self.workers, len(pending))
        queue = collections.deque(pending)
        pool = ctx.Pool(processes=n_slots)
        active: dict = {}  # async handle -> (config, deadline or None)
        hung = 0
        try:
            while queue or active:
                while queue and len(active) + hung < n_slots:
                    config = queue.popleft()
                    handle = pool.apply_async(
                        _execute_payload, ((config.to_dict(), self.series_samples, self.fast),)
                    )
                    deadline = (
                        time.monotonic() + self.timeout_s if self.timeout_s is not None else None
                    )
                    active[handle] = (config, deadline)
                completed = [h for h in active if h.ready()]
                for handle in completed:
                    active.pop(handle)
                    yield handle.get()
                if completed:
                    continue
                now = time.monotonic()
                expired = [
                    h for h, (_, deadline) in active.items() if deadline is not None and now >= deadline
                ]
                for handle in expired:
                    config, _ = active.pop(handle)
                    hung += 1
                    yield {
                        "scenario_id": config.scenario_id,
                        "config": config.to_dict(),
                        "status": "timeout",
                        "error": f"scenario exceeded {self.timeout_s:.0f} s budget",
                    }
                if hung >= n_slots:
                    # Every worker is stuck on an overrunning scenario: kill
                    # the pool and start a fresh one for the remaining cells.
                    pool.terminate()
                    pool.join()
                    pool = ctx.Pool(processes=n_slots)
                    hung = 0
                elif not expired:
                    time.sleep(0.02)
        finally:
            pool.terminate()
            pool.join()
