"""Persistent, resumable campaign results: a content-addressed JSONL store.

One line per completed scenario: ``{"scenario_id", "schema_version",
"config", "status", "summary", ...}``.  The scenario id is the content hash
of the config (:attr:`~repro.sweep.spec.ScenarioConfig.scenario_id`), so
lookups are purely structural — any campaign that regenerates the same config
gets a cache hit, whether it is a ``--resume`` after an interrupt or a
brand-new sweep sharing cells with an old one.

Records are appended and flushed one at a time, so a killed campaign loses at
most the scenario in flight; a trailing half-written line is detected and
ignored on load.  Only ``status == "ok"`` records count as cached — failures
and timeouts are kept for post-mortems but are retried on resume.

Every appended record is stamped with the current config
:data:`~repro.sweep.spec.SCHEMA_VERSION`.  Loading tolerates records written
by older versions (PR-1 records carry no stamp and count as v1): they are
kept, reported via :attr:`ResultStore.legacy_count` /
:meth:`ResultStore.version_counts`, and simply miss the cache for new-schema
configs instead of failing opaquely.

Large stores: :meth:`ResultStore.compact` rewrites the JSONL keeping only the
newest record per scenario id and persists a key→offset **index sidecar**
(``<store>.idx.json``).  A store with a valid sidecar opens in O(index) —
record payloads are seek-loaded lazily on first access, so cache-hit checks
over a 100k-cell store never parse a line.  Appending after a compaction
leaves the sidecar in place; the next open replays only the appended tail on
top of the indexed portion.  A sidecar that no longer matches its store (the
store was rewritten or truncated) is ignored and the store is fully parsed.

Sharded campaigns: :meth:`ResultStore.merge` / :func:`merge_stores` union the
shard stores a partitioned campaign produced (see :mod:`repro.sweep.dist`)
into one.  The idx sidecars make the union cheap — conflicts are adjudicated
from the O(index) key/status inventory and only winning records are read —
with **last-complete-record-wins** semantics: a successful record always
supersedes a failure/timeout, and among equals the later source wins.  Legacy
v1 records are upgraded (config re-composed, record re-keyed under the
current content hash) on the way through, and the merged store is compacted
so its own sidecar is rewritten.

Filtered reads: :meth:`ResultStore.query` answers "the ok records of these
scenario ids", "every timeout under the powersave governor" and similar
questions through a second, read-optimised sidecar — the SQLite index of
:mod:`repro.sweep.sqlindex` (``<store>.sqlite``), which maps scenario ids and
searchable axis columns to byte offsets so only the *matching* JSONL lines
are seek-loaded.  The sidecar is derived state, (re)built lazily on first
query and kept consistent with ``append``/``compact``/``merge`` through
mtime/length staleness checks; a query served through it counts a
``store.idx_hit`` metric, a fallback linear scan counts ``store.idx_miss``.
:func:`store_stats` serves store-level inventories (counts by status and
schema version, bytes appended since the last compact) from the sidecars
alone, without materialising a single record.
"""

from __future__ import annotations

import json
import os
import time
from collections import Counter
from pathlib import Path
from typing import Iterator, Mapping, Optional, Sequence, Union

from .. import faults
from ..obs.metrics import metrics_sidecar_path
from ..obs.telemetry import DISABLED, Telemetry
from ..sim.result import SimulationResult
from . import sqlindex
from .spec import SCHEMA_VERSION, ScenarioConfig

__all__ = [
    "ResultStore",
    "merge_stores",
    "store_stats",
    "VOLATILE_RECORD_FIELDS",
    "strip_volatile",
]

#: Index sidecar layout version.
_INDEX_VERSION = 1

#: Record fields that legitimately differ between two executions of the same
#: scenario (timing, worker identity, retry/chaos accounting): strip them
#: before comparing stores record-for-record (tests, the dist bench, CI's
#: shard-merge and chaos identity gates).
VOLATILE_RECORD_FIELDS = frozenset(
    {"elapsed_s", "wall_time_s", "worker", "timings", "attempts", "faults_injected"}
)


def strip_volatile(record: Mapping) -> dict:
    """A record without its run-specific fields, for cross-run comparison."""
    return {k: v for k, v in record.items() if k not in VOLATILE_RECORD_FIELDS}


def _upgrade_record(record: dict) -> tuple[str, dict, bool]:
    """Upgrade a legacy record to the current config schema, re-keying it.

    A v1 record's scenario id was computed under the flat PR-1 hashing
    scheme, so as stored it can never cache-hit a composed config.  Upgrading
    re-parses the config (which folds it into the composed schema), rewrites
    the record under the current :data:`~repro.sweep.spec.SCHEMA_VERSION` and
    re-keys it by the current content hash — after which the old result *is*
    a cache hit for the equivalent new-schema scenario.  Records that cannot
    be upgraded (no config payload, unparseable config) pass through
    unchanged.  Returns ``(key, record, upgraded)``.
    """
    version = int(record.get("schema_version", 1))
    if version >= SCHEMA_VERSION:
        return record["scenario_id"], record, False
    config_data = record.get("config")
    if not isinstance(config_data, Mapping):
        return record["scenario_id"], record, False
    try:
        config = ScenarioConfig.from_dict(config_data)
    except (ValueError, TypeError, KeyError):
        return record["scenario_id"], record, False
    upgraded = dict(record)
    upgraded["config"] = config.to_dict()
    upgraded["schema_version"] = SCHEMA_VERSION
    upgraded["scenario_id"] = config.scenario_id
    return config.scenario_id, upgraded, True


class _LazyRecord:
    """Placeholder for an indexed record not yet read from disk."""

    __slots__ = ("offset", "status", "schema_version")

    def __init__(self, offset: int, status: str, schema_version: int):
        self.offset = int(offset)
        self.status = str(status)
        self.schema_version = int(schema_version)


class ResultStore:
    """Append-only JSONL store of sweep records, indexed by scenario id.

    Later records for the same scenario id supersede earlier ones (so a
    retried failure overwrites the failure on load).
    """

    def __init__(self, path: str | os.PathLike, telemetry: Optional[Telemetry] = None):
        self.path = Path(path)
        self.telemetry = telemetry if telemetry is not None else DISABLED
        #: scenario_id -> record dict, or _LazyRecord for indexed-but-unread.
        self._entries: dict[str, Union[dict, _LazyRecord]] = {}
        self._skipped_lines = 0
        self._version_counts: Counter = Counter()
        self._sqlite: "Optional[sqlindex.SqliteIndex]" = None
        self._quarantined_bytes = 0
        if self.path.exists():
            self._repair_torn_tail()
            load_t0 = time.perf_counter()
            via_index = self._load()
            load_s = time.perf_counter() - load_t0
            self.telemetry.metrics.observe("store.load_s", load_s)
            self.telemetry.metrics.counter(
                "store.idx_hit" if via_index else "store.idx_miss"
            )
            self.telemetry.tracer.span_event(
                "store.load",
                load_s,
                store=str(self.path),
                records=len(self._entries),
                via_index=via_index,
            )
        elif self.index_path.exists():
            # The data file is gone (e.g. a fresh restart deleted it); the
            # sidecar indexes nothing and would poison a future reopen once
            # new records grow the file past its recorded size.
            self.index_path.unlink()

    @property
    def index_path(self) -> Path:
        """The sidecar written by :meth:`compact` (``<store>.idx.json``)."""
        return Path(str(self.path) + ".idx.json")

    @property
    def quarantine_path(self) -> Path:
        """Where torn final lines are salvaged to (``<store>.quarantine``)."""
        return Path(str(self.path) + ".quarantine")

    @property
    def quarantined_bytes(self) -> int:
        """Bytes moved to the quarantine file by this open (0 for a clean store)."""
        return self._quarantined_bytes

    def _repair_torn_tail(self) -> int:
        """Write-side repair of a torn final line (the read side only tolerates it).

        A writer killed mid-append — the process-level analogue of the power
        loss the paper studies — can leave the file ending in a partial line.
        If that tail is a *complete* record that merely lost its newline, the
        newline is restored in place.  Otherwise the torn bytes are salvaged
        into ``<store>.quarantine`` (appended, newline-terminated, for
        post-mortems) and the data file is truncated to the last clean line
        boundary, so the next :meth:`append` starts a fresh line and later
        readers never see the damage.  Returns the bytes quarantined.
        """
        try:
            size = self.path.stat().st_size
        except OSError:
            return 0
        if size == 0:
            return 0
        with self.path.open("rb+") as fh:
            fh.seek(-1, os.SEEK_END)
            if fh.read(1) == b"\n":
                return 0
            # Walk back in chunks to the last newline (0 if there is none:
            # the whole file is one torn line).
            boundary, pos = 0, size
            while pos > 0:
                start = max(0, pos - 65536)
                fh.seek(start)
                chunk = fh.read(pos - start)
                newline = chunk.rfind(b"\n")
                if newline != -1:
                    boundary = start + newline + 1
                    break
                pos = start
            fh.seek(boundary)
            torn = fh.read(size - boundary)
            try:
                record = json.loads(torn.decode("utf-8"))
                intact = isinstance(record, dict) and record.get("scenario_id")
            except (UnicodeDecodeError, json.JSONDecodeError):
                intact = False
            if intact:
                # A complete record that merely lost its newline: finish it.
                fh.seek(0, os.SEEK_END)
                fh.write(b"\n")
                os.fsync(fh.fileno())
                self.telemetry.metrics.counter("store.tail_healed")
                return 0
            with self.quarantine_path.open("ab") as quarantine:
                quarantine.write(torn + b"\n")
                quarantine.flush()
                os.fsync(quarantine.fileno())
            fh.truncate(boundary)
            os.fsync(fh.fileno())
        self._quarantined_bytes += len(torn)
        self.telemetry.metrics.counter("store.torn_tail_quarantined")
        self.telemetry.tracer.event(
            "store.repair",
            store=str(self.path),
            quarantined_bytes=len(torn),
            quarantine=str(self.quarantine_path),
        )
        return len(torn)

    @property
    def sqlite_path(self) -> Path:
        """The read-optimised SQLite sidecar (``<store>.sqlite``)."""
        return sqlindex.sqlite_index_path(self.path)

    def sqlite_index(self) -> "Optional[sqlindex.SqliteIndex]":
        """The lazily-created SQLite sidecar, or None without sqlite3.

        Creating the object is cheap; the database itself is only built (or
        refreshed) when a :meth:`query`/:meth:`count`/:meth:`stats` call
        first touches it.
        """
        if not sqlindex.SQLITE_AVAILABLE:
            return None
        if self._sqlite is None:
            self._sqlite = sqlindex.SqliteIndex(self.path, telemetry=self.telemetry)
        return self._sqlite

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def _load(self) -> bool:
        """Load the store; True when the idx sidecar served the open."""
        if self._load_from_index():
            return True
        self._scan_lines()
        return False

    def _scan_lines(self) -> None:
        """Parse every line of the data file, tolerating a torn tail.

        Read in binary and decode per line: a writer interrupted (or still
        in flight — concurrent read-while-append) can leave a trailing line
        truncated mid-way through a multi-byte UTF-8 sequence, which
        text-mode iteration would turn into a ``UnicodeDecodeError`` for the
        whole open.  Decoding with replacement confines the damage to that
        line, which then fails JSON parsing and is counted in
        :attr:`skipped_lines` — the same torn-tail tolerance the trace
        reader has.
        """
        with self.path.open("rb") as fh:
            for raw in fh:
                self._ingest_line(raw.decode("utf-8", errors="replace"))

    def _ingest_line(self, line: str) -> None:
        line = line.strip()
        if not line:
            return
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            # Interrupted mid-write: drop the partial line.
            self._skipped_lines += 1
            return
        scenario_id = record.get("scenario_id") if isinstance(record, dict) else None
        if not scenario_id:
            self._skipped_lines += 1
            return
        self._set_entry(scenario_id, record)

    def _set_entry(self, scenario_id: str, entry: Union[dict, _LazyRecord]) -> None:
        previous = self._entries.get(scenario_id)
        if previous is not None:
            self._version_counts[self._version_of(previous)] -= 1
        self._entries[scenario_id] = entry
        self._version_counts[self._version_of(entry)] += 1

    def _load_from_index(self) -> bool:
        """Open via the compaction sidecar, if present and still valid."""
        try:
            index = json.loads(self.index_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return False
        entries = index.get("entries")
        data_bytes = index.get("data_bytes")
        if (
            index.get("version") != _INDEX_VERSION
            or not isinstance(entries, dict)
            or not isinstance(data_bytes, int)
        ):
            return False
        size = self.path.stat().st_size
        if size < data_bytes:
            # The store shrank since the index was written: the offsets no
            # longer point at line starts.  Fall back to a full parse.
            return False
        for scenario_id, entry in entries.items():
            try:
                offset, status, version = entry
                self._set_entry(scenario_id, _LazyRecord(offset, status, version))
            except (TypeError, ValueError):
                return self._full_reload()
        if size > data_bytes:
            # Records appended after the compaction: replay just the tail.
            with self.path.open("rb") as fh:
                fh.seek(data_bytes)
                for raw in fh:
                    self._ingest_line(raw.decode("utf-8", errors="replace"))
        return True

    def _full_reload(self) -> bool:
        """Discard any index-derived state and parse the whole file."""
        self._entries.clear()
        self._version_counts.clear()
        self._skipped_lines = 0
        self._scan_lines()
        return True

    @staticmethod
    def _read_at(fh, scenario_id: str, offset: int) -> Optional[dict]:
        """Parse the record line at a byte offset; None if it doesn't match."""
        try:
            fh.seek(offset)
            record = json.loads(fh.readline().decode("utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(record, dict) or record.get("scenario_id") != scenario_id:
            return None
        return record

    def _materialise(self, scenario_id: str) -> Optional[dict]:
        """Turn a lazy index entry into the record dict, reading one line."""
        entry = self._entries.get(scenario_id)
        if not isinstance(entry, _LazyRecord):
            return entry
        record = None
        try:
            with self.path.open("rb") as fh:
                record = self._read_at(fh, scenario_id, entry.offset)
        except OSError:
            record = None
        if record is None:
            # Stale or corrupt index: recover by parsing the whole store.
            self._full_reload()
            entry = self._entries.get(scenario_id)
            return entry if isinstance(entry, dict) else None
        # Replace in place: the version count is unchanged by materialisation.
        self._entries[scenario_id] = record
        return record

    def _materialise_all(self) -> None:
        """Load every lazy entry in one sequential pass over the file."""
        lazy = sorted(
            (entry.offset, key)
            for key, entry in self._entries.items()
            if isinstance(entry, _LazyRecord)
        )
        if not lazy:
            return
        stale = False
        try:
            with self.path.open("rb") as fh:
                for offset, key in lazy:
                    record = self._read_at(fh, key, offset)
                    if record is None:
                        stale = True
                        break
                    self._entries[key] = record
        except OSError:
            stale = True
        if stale:
            self._full_reload()

    @staticmethod
    def _version_of(entry: Union[Mapping, _LazyRecord]) -> int:
        """The config schema version a record was written under (v1 if unstamped)."""
        if isinstance(entry, _LazyRecord):
            return entry.schema_version
        return int(entry.get("schema_version", 1))

    @property
    def skipped_lines(self) -> int:
        """Corrupt/partial lines ignored while loading (0 for a clean store)."""
        return self._skipped_lines

    @property
    def legacy_count(self) -> int:
        """Loaded records written under an older config schema version."""
        return sum(n for v, n in self._version_counts.items() if v < SCHEMA_VERSION and n > 0)

    def version_counts(self) -> dict[int, int]:
        """Record count per config schema version, for reporting."""
        return {v: n for v, n in sorted(self._version_counts.items()) if n > 0}

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, record: Mapping) -> None:
        """Append one record (stamped with the current schema version) and
        flush it to disk immediately."""
        append_t0 = time.perf_counter()
        record = dict(record)
        scenario_id = record.get("scenario_id")
        if not scenario_id:
            raise ValueError("record must carry a scenario_id")
        record.setdefault("schema_version", SCHEMA_VERSION)
        injector = faults.active()
        torn_rule = None
        if injector is not None:
            torn_rule = injector.fire(
                "store.append", telemetry=self.telemetry, scenario_id=scenario_id
            )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        # A previous torn write may have left the file without a trailing
        # newline; heal it so the new record starts on its own line.
        needs_newline = False
        if self.path.exists() and self.path.stat().st_size > 0:
            with self.path.open("rb") as fh:
                fh.seek(-1, os.SEEK_END)
                needs_newline = fh.read(1) != b"\n"
        with self.path.open("a", encoding="utf-8") as fh:
            if needs_newline:
                fh.write("\n")
            if torn_rule is not None and torn_rule.kind == "torn-write":
                # Simulated power loss mid-append: flush half the line to
                # disk, then die without cleanup.  The next open quarantines
                # the tail; the scenario re-runs (its record never landed).
                fh.write(line[: max(1, len(line) // 2)])
                fh.flush()
                os.fsync(fh.fileno())
                os._exit(torn_rule.exit_code)
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._set_entry(scenario_id, record)
        self.telemetry.metrics.observe("store.append_s", time.perf_counter() - append_t0)
        self.telemetry.metrics.counter("store.appends")

    def compact(self) -> dict:
        """Rewrite the store keeping only the newest record per scenario id,
        and persist the key→offset index sidecar.

        The rewrite is atomic (written beside the store, then renamed over
        it); the sidecar is written after the data file, so a crash between
        the two leaves a valid store with, at worst, a stale sidecar — which
        the next open detects and ignores.  Returns a stats dict
        (``records``, ``dropped_lines``, ``bytes_before``, ``bytes_after``,
        ``index_path``).
        """
        compact_t0 = time.perf_counter()
        lines_before = 0
        bytes_before = 0
        if self.path.exists():
            bytes_before = self.path.stat().st_size
            with self.path.open("rb") as fh:
                lines_before = sum(1 for _ in fh)
        self._materialise_all()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".compact.tmp")
        index_entries: dict[str, list] = {}
        offset = 0
        with tmp.open("wb") as fh:
            for scenario_id, record in self._entries.items():
                assert isinstance(record, dict)
                payload = (
                    json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
                ).encode("utf-8")
                index_entries[scenario_id] = [
                    offset,
                    record.get("status", "?"),
                    self._version_of(record),
                ]
                fh.write(payload)
                offset += len(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        index = {
            "version": _INDEX_VERSION,
            "data_bytes": offset,
            "records": len(index_entries),
            "entries": index_entries,
        }
        index_tmp = self.index_path.with_name(self.index_path.name + ".tmp")
        index_tmp.write_text(json.dumps(index, separators=(",", ":")), encoding="utf-8")
        os.replace(index_tmp, self.index_path)
        self._skipped_lines = 0
        stats = {
            "records": len(index_entries),
            "dropped_lines": max(0, lines_before - len(index_entries)),
            "bytes_before": bytes_before,
            "bytes_after": offset,
            "index_path": str(self.index_path),
        }
        compact_s = time.perf_counter() - compact_t0
        self.telemetry.metrics.observe("store.compact_s", compact_s)
        self.telemetry.tracer.span_event(
            "store.compact",
            compact_s,
            records=stats["records"],
            bytes_before=bytes_before,
            bytes_after=offset,
        )
        return stats

    # ------------------------------------------------------------------
    # Merging (distributed campaigns: union shard stores into one)
    # ------------------------------------------------------------------
    @staticmethod
    def _merge_wins(incoming_status: Optional[str], existing) -> bool:
        """Last-complete-record-wins: does an incoming record supersede?

        A complete (``status == "ok"``) incoming record always wins — later
        complete beats earlier complete, and complete beats any failure.  An
        incomplete incoming record only wins when the existing record is
        also incomplete (or absent): a shard's timeout must never clobber
        another shard's success.
        """
        if existing is None:
            return True
        if incoming_status == "ok":
            return True
        existing_status = (
            existing.status if isinstance(existing, _LazyRecord) else existing.get("status")
        )
        return existing_status != "ok"

    def merge(self, *sources, compact: bool = True) -> dict:
        """Union other stores' records into this one, newest-complete wins.

        ``sources`` are :class:`ResultStore` instances or paths, consumed in
        order (so on ties the *last* source wins).  Conflicts are decided
        from each source's O(index) key/status/version inventory where
        possible — a source record that loses to an existing complete record
        is skipped without ever being read from disk.  Legacy (v1) source
        records are upgraded and re-keyed on the way through (see
        :func:`_upgrade_record`).  By default the merged store is compacted
        afterwards, rewriting the data file and its idx sidecar; pass
        ``compact=False`` to keep accumulating in memory across several
        merge calls (the caller must then compact explicitly to persist).

        Returns a stats dict (``sources``, ``scanned``, ``merged``,
        ``skipped``, ``upgraded``, plus ``records``/``index_path`` when
        compacting).
        """
        merge_t0 = time.perf_counter()
        stats = {"sources": 0, "scanned": 0, "merged": 0, "skipped": 0, "upgraded": 0}
        own = self.path.resolve()
        for source in sources:
            src = source if isinstance(source, ResultStore) else ResultStore(source)
            if src.path.resolve() == own:
                raise ValueError(f"cannot merge store {self.path} into itself")
            stats["sources"] += 1
            for key in list(src._entries):
                stats["scanned"] += 1
                entry = src._entries.get(key)
                status = (
                    entry.status if isinstance(entry, _LazyRecord) else entry.get("status")
                )
                if self._version_of(entry) >= SCHEMA_VERSION and not self._merge_wins(
                    status, self._entries.get(key)
                ):
                    stats["skipped"] += 1
                    continue
                record = src.get(key)  # materialises lazy entries (one seek)
                if record is None:
                    stats["skipped"] += 1
                    continue
                new_key, record, upgraded = _upgrade_record(record)
                if upgraded:
                    stats["upgraded"] += 1
                if not self._merge_wins(record.get("status"), self._entries.get(new_key)):
                    stats["skipped"] += 1
                    continue
                self._set_entry(new_key, dict(record))
                stats["merged"] += 1
        if compact:
            compact_stats = self.compact()
            stats["records"] = compact_stats["records"]
            stats["index_path"] = compact_stats["index_path"]
        merge_s = time.perf_counter() - merge_t0
        self.telemetry.metrics.observe("store.merge_s", merge_s)
        self.telemetry.tracer.span_event(
            "store.merge",
            merge_s,
            sources=stats["sources"],
            merged=stats["merged"],
            skipped=stats["skipped"],
            upgraded=stats["upgraded"],
        )
        return stats

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return self._key(key) in self._entries

    def get(self, key) -> Optional[dict]:
        """The latest record for a scenario id / config, or None."""
        scenario_id = self._key(key)
        entry = self._entries.get(scenario_id)
        if isinstance(entry, _LazyRecord):
            return self._materialise(scenario_id)
        return entry

    def is_complete(self, key) -> bool:
        """Whether the scenario already has a successful (cached) record.

        O(1) even for index-backed entries — the sidecar carries each
        record's status, so no line is read to answer a cache-hit check.
        """
        entry = self._entries.get(self._key(key))
        if isinstance(entry, _LazyRecord):
            return entry.status == "ok"
        return entry is not None and entry.get("status") == "ok"

    def records(self) -> Iterator[dict]:
        """All loaded records (latest per scenario id), insertion-ordered."""
        self._materialise_all()
        return iter([e for e in self._entries.values() if isinstance(e, dict)])

    def ok_records(self) -> list[dict]:
        """Only the successful records — what aggregation consumes."""
        return [r for r in self.records() if r.get("status") == "ok"]

    # ------------------------------------------------------------------
    # Filtered reads (served by the SQLite sidecar; linear-scan fallback)
    # ------------------------------------------------------------------
    @staticmethod
    def _validate_filters(filters: Mapping) -> None:
        for column in filters:
            if column not in sqlindex.FILTER_COLUMNS:
                raise ValueError(
                    f"unknown store filter {column!r}; "
                    f"known: {', '.join(sqlindex.FILTER_COLUMNS)}"
                )

    def query(
        self,
        *,
        status: Optional[str] = None,
        scenario_ids: Optional[Sequence[str]] = None,
        limit: Optional[int] = None,
        offset: int = 0,
        **filters,
    ) -> list[dict]:
        """Matching records, seek-loaded via the SQLite sidecar.

        ``filters`` are equality (or, for sequence values, membership)
        constraints over :data:`~repro.sweep.sqlindex.FILTER_COLUMNS` — the
        axis columns plus ``status``/``schema_version``.  ``scenario_ids``
        restricts to an explicit id set; an *empty* sequence matches nothing
        while ``None`` leaves the id unconstrained.  Results come back in
        store (byte) order.

        Only the matching lines are read from the JSONL — a sidecar-served
        query never replays the store, and counts a ``store.idx_hit``
        metric (a fallback linear scan counts ``store.idx_miss``).  Every
        seek-loaded line's scenario id is verified; a mismatch rebuilds the
        sidecar once and retries, so a sidecar can be stale or even deleted
        but never wrong.
        """
        if status is not None:
            filters["status"] = status
        self._validate_filters(filters)
        index = self.sqlite_index()
        if index is not None:
            try:
                records = self._query_via_sqlite(index, filters, scenario_ids, limit, offset)
            except sqlindex.SIDECAR_ERRORS:
                records = None
            if records is not None:
                self.telemetry.metrics.counter("store.idx_hit")
                return records
        self.telemetry.metrics.counter("store.idx_miss")
        return self._query_linear(filters, scenario_ids, limit, offset)

    def _query_via_sqlite(
        self, index, filters, scenario_ids, limit, offset
    ) -> Optional[list[dict]]:
        """Seek-load the sidecar's matches; None when it cannot be trusted."""
        for attempt in range(2):
            rows = index.query(
                filters or None, scenario_ids=scenario_ids, limit=limit, offset=offset
            )
            if not rows:
                return []
            records: list[dict] = []
            stale = False
            try:
                with self.path.open("rb") as fh:
                    for scenario_id, byte_offset, _length in rows:
                        record = self._read_at(fh, scenario_id, byte_offset)
                        if record is None:
                            stale = True
                            break
                        records.append(record)
            except OSError:
                stale = True
            if not stale:
                return records
            if attempt == 0:
                index.rebuild()
        return None

    def _query_linear(self, filters, scenario_ids, limit, offset) -> list[dict]:
        """The no-sidecar path: materialise everything, filter in Python."""
        wanted = (
            {str(s) for s in scenario_ids} if scenario_ids is not None else None
        )
        out = []
        for record in self.records():
            if wanted is not None and record.get("scenario_id") not in wanted:
                continue
            if filters and not self._matches(record, filters):
                continue
            out.append(record)
        if offset:
            out = out[int(offset):]
        if limit is not None:
            out = out[: int(limit)]
        return out

    @staticmethod
    def _matches(record: Mapping, filters: Mapping) -> bool:
        columns = sqlindex._axis_columns(record)
        columns["status"] = record.get("status")
        columns["schema_version"] = int(record.get("schema_version", 1))
        for key, value in filters.items():
            have = columns.get(key)
            if isinstance(value, (list, tuple, set, frozenset)):
                if have not in value:
                    return False
            elif have != value:
                return False
        return True

    def count(
        self,
        *,
        status: Optional[str] = None,
        scenario_ids: Optional[Sequence[str]] = None,
        **filters,
    ) -> int:
        """Matching-record count — answered from the sidecar index alone."""
        if status is not None:
            filters["status"] = status
        self._validate_filters(filters)
        index = self.sqlite_index()
        if index is not None:
            try:
                n = index.count(filters or None, scenario_ids=scenario_ids)
            except sqlindex.SIDECAR_ERRORS:
                n = None
            if n is not None:
                self.telemetry.metrics.counter("store.idx_hit")
                return n
        self.telemetry.metrics.counter("store.idx_miss")
        return len(self._query_linear(filters, scenario_ids, None, 0))

    def stats(self) -> dict:
        """Store inventory (see :func:`store_stats`)."""
        return store_stats(self.path, index=self.sqlite_index(), telemetry=self.telemetry)

    def result_for(self, key) -> Optional[SimulationResult]:
        """Rebuild the stored (decimated) SimulationResult, if series were kept."""
        record = self.get(key)
        if record is None or "series" not in record:
            return None
        return SimulationResult.from_dict(record["series"])

    @staticmethod
    def _key(key) -> str:
        if isinstance(key, ScenarioConfig):
            return key.scenario_id
        return str(key)


def merge_stores(
    dest: "str | os.PathLike | ResultStore",
    sources: "Sequence[str | os.PathLike | ResultStore]",
) -> dict:
    """Assemble one store from shard stores: open ``dest``, stream ``sources``.

    The coordinator-side entry point behind ``python -m repro store merge``:
    sources are consumed one at a time (each is opened, unioned into ``dest``
    via :meth:`ResultStore.merge`, then released), so peak memory is the
    merged key inventory plus one source's, never the sum of all shards.
    Missing source paths are an error — a silently absent shard would
    produce a merged store that looks complete but is not.  Returns the
    merge stats with ``dest`` added.
    """
    store = dest if isinstance(dest, ResultStore) else ResultStore(dest)
    resolved: list[ResultStore] = []
    missing: list[str] = []
    for source in sources:
        if isinstance(source, ResultStore):
            resolved.append(source)
        elif Path(source).exists():
            resolved.append(source)
        else:
            missing.append(str(source))
    if missing:
        raise FileNotFoundError(f"missing source store(s): {', '.join(missing)}")
    stats: dict = {"sources": 0, "scanned": 0, "merged": 0, "skipped": 0, "upgraded": 0}
    for source in resolved:
        partial = store.merge(source, compact=False)
        for key in ("sources", "scanned", "merged", "skipped", "upgraded"):
            stats[key] += partial[key]
    compact_stats = store.compact()
    stats["records"] = compact_stats["records"]
    stats["index_path"] = compact_stats["index_path"]
    stats["dest"] = str(store.path)
    return stats


def store_stats(
    store_path: "str | os.PathLike",
    index: "Optional[sqlindex.SqliteIndex]" = None,
    telemetry: Optional[Telemetry] = None,
) -> dict:
    """A store's inventory, served from its sidecars without record reads.

    Behind ``python -m repro store stats``: counts by status and schema
    version come from the SQLite sidecar (built/refreshed on demand), the
    compaction baseline from the idx sidecar, and the cache-hit ratio from
    the ``<store>.metrics.json`` sidecar the last campaign run wrote —
    no JSONL record is materialised on this path.  Only when sqlite3 is
    unavailable does it fall back to opening the store (idx-sidecar-lazy,
    so a compacted store still answers from index metadata).
    """
    path = Path(store_path)
    telemetry = telemetry if telemetry is not None else DISABLED
    exists = path.exists()
    stats: dict = {
        "path": str(path),
        "exists": exists,
        "bytes": path.stat().st_size if exists else 0,
    }
    by_status: Optional[dict] = None
    by_version: Optional[dict] = None
    idx: "Optional[sqlindex.SqliteIndex]" = None
    if sqlindex.SQLITE_AVAILABLE:
        try:
            idx = index if index is not None else sqlindex.SqliteIndex(path, telemetry=telemetry)
            idx.ensure()
            by_status = idx.status_counts()
            by_version = idx.version_counts()
        except sqlindex.SIDECAR_ERRORS:
            idx = None
    if by_status is None:
        # No sqlite3 (or a broken sidecar): fall back to the store itself.
        store = ResultStore(path, telemetry=telemetry)
        counts: Counter = Counter()
        for entry in store._entries.values():
            status = entry.status if isinstance(entry, _LazyRecord) else entry.get("status")
            counts[status] += 1
        by_status = dict(sorted(counts.items(), key=lambda kv: str(kv[0])))
        by_version = store.version_counts()
    stats["records"] = sum(by_status.values())
    stats["by_status"] = by_status
    stats["by_schema_version"] = by_version
    # Compaction baseline: what the idx sidecar froze, vs what grew since.
    compacted_bytes: Optional[int] = None
    idx_json = Path(str(path) + ".idx.json")
    try:
        data = json.loads(idx_json.read_text(encoding="utf-8"))
        if data.get("version") == _INDEX_VERSION and isinstance(data.get("data_bytes"), int):
            compacted_bytes = data["data_bytes"]
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        pass
    if compacted_bytes is not None:
        stats["compacted_bytes"] = compacted_bytes
        stats["appended_bytes_since_compact"] = max(0, stats["bytes"] - compacted_bytes)
        if idx is not None:
            try:
                stats["appended_records_since_compact"] = idx.records_beyond(compacted_bytes)
            except sqlindex.SIDECAR_ERRORS:
                pass
    # Cache economics of the most recent campaign against this store, from
    # the metrics sidecar (cache_hits / executed counters).
    try:
        doc = json.loads(metrics_sidecar_path(path).read_text(encoding="utf-8"))
        counters = doc.get("counters", {}) if isinstance(doc, dict) else {}
        hits = int(counters.get("campaign.cache_hits", 0))
        executed = int(counters.get("campaign.executed", 0))
        if hits + executed > 0:
            stats["cache_hits"] = hits
            stats["executed"] = executed
            stats["cache_hit_ratio"] = round(hits / (hits + executed), 4)
    except (OSError, json.JSONDecodeError, ValueError, TypeError):
        pass
    return stats
