"""Persistent, resumable campaign results: a content-addressed JSONL store.

One line per completed scenario: ``{"scenario_id", "config", "status",
"summary", ...}``.  The scenario id is the content hash of the config
(:attr:`~repro.sweep.spec.ScenarioConfig.scenario_id`), so lookups are purely
structural — any campaign that regenerates the same config gets a cache hit,
whether it is a ``--resume`` after an interrupt or a brand-new sweep sharing
cells with an old one.

Records are appended and flushed one at a time, so a killed campaign loses at
most the scenario in flight; a trailing half-written line is detected and
ignored on load.  Only ``status == "ok"`` records count as cached — failures
and timeouts are kept for post-mortems but are retried on resume.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator, Mapping, Optional

from ..sim.result import SimulationResult
from .spec import ScenarioConfig

__all__ = ["ResultStore"]


class ResultStore:
    """Append-only JSONL store of sweep records, indexed by scenario id.

    Later records for the same scenario id supersede earlier ones (so a
    retried failure overwrites the failure on load).
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._records: dict[str, dict] = {}
        self._skipped_lines = 0
        if self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def _load(self) -> None:
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # Interrupted mid-write: drop the partial line.
                    self._skipped_lines += 1
                    continue
                scenario_id = record.get("scenario_id")
                if not scenario_id:
                    self._skipped_lines += 1
                    continue
                self._records[scenario_id] = record

    @property
    def skipped_lines(self) -> int:
        """Corrupt/partial lines ignored while loading (0 for a clean store)."""
        return self._skipped_lines

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, record: Mapping) -> None:
        """Append one record and flush it to disk immediately."""
        record = dict(record)
        scenario_id = record.get("scenario_id")
        if not scenario_id:
            raise ValueError("record must carry a scenario_id")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        # A previous torn write may have left the file without a trailing
        # newline; heal it so the new record starts on its own line.
        needs_newline = False
        if self.path.exists() and self.path.stat().st_size > 0:
            with self.path.open("rb") as fh:
                fh.seek(-1, os.SEEK_END)
                needs_newline = fh.read(1) != b"\n"
        with self.path.open("a", encoding="utf-8") as fh:
            if needs_newline:
                fh.write("\n")
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._records[scenario_id] = record

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key) -> bool:
        return self._key(key) in self._records

    def get(self, key) -> Optional[dict]:
        """The latest record for a scenario id / config, or None."""
        return self._records.get(self._key(key))

    def is_complete(self, key) -> bool:
        """Whether the scenario already has a successful (cached) record."""
        record = self.get(key)
        return record is not None and record.get("status") == "ok"

    def records(self) -> Iterator[dict]:
        """All loaded records (latest per scenario id), insertion-ordered."""
        return iter(list(self._records.values()))

    def ok_records(self) -> list[dict]:
        """Only the successful records — what aggregation consumes."""
        return [r for r in self._records.values() if r.get("status") == "ok"]

    def result_for(self, key) -> Optional[SimulationResult]:
        """Rebuild the stored (decimated) SimulationResult, if series were kept."""
        record = self.get(key)
        if record is None or "series" not in record:
            return None
        return SimulationResult.from_dict(record["series"])

    @staticmethod
    def _key(key) -> str:
        if isinstance(key, ScenarioConfig):
            return key.scenario_id
        return str(key)
