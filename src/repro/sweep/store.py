"""Persistent, resumable campaign results: a content-addressed JSONL store.

One line per completed scenario: ``{"scenario_id", "schema_version",
"config", "status", "summary", ...}``.  The scenario id is the content hash
of the config (:attr:`~repro.sweep.spec.ScenarioConfig.scenario_id`), so
lookups are purely structural — any campaign that regenerates the same config
gets a cache hit, whether it is a ``--resume`` after an interrupt or a
brand-new sweep sharing cells with an old one.

Records are appended and flushed one at a time, so a killed campaign loses at
most the scenario in flight; a trailing half-written line is detected and
ignored on load.  Only ``status == "ok"`` records count as cached — failures
and timeouts are kept for post-mortems but are retried on resume.

Every appended record is stamped with the current config
:data:`~repro.sweep.spec.SCHEMA_VERSION`.  Loading tolerates records written
by older versions (PR-1 records carry no stamp and count as v1): they are
kept, reported via :attr:`ResultStore.legacy_count` /
:meth:`ResultStore.version_counts`, and simply miss the cache for new-schema
configs instead of failing opaquely.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from pathlib import Path
from typing import Iterator, Mapping, Optional

from ..sim.result import SimulationResult
from .spec import SCHEMA_VERSION, ScenarioConfig

__all__ = ["ResultStore"]


class ResultStore:
    """Append-only JSONL store of sweep records, indexed by scenario id.

    Later records for the same scenario id supersede earlier ones (so a
    retried failure overwrites the failure on load).
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._records: dict[str, dict] = {}
        self._skipped_lines = 0
        self._version_counts: Counter = Counter()
        if self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def _load(self) -> None:
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # Interrupted mid-write: drop the partial line.
                    self._skipped_lines += 1
                    continue
                scenario_id = record.get("scenario_id")
                if not scenario_id:
                    self._skipped_lines += 1
                    continue
                previous = self._records.get(scenario_id)
                if previous is not None:
                    self._version_counts[self._version_of(previous)] -= 1
                self._records[scenario_id] = record
                self._version_counts[self._version_of(record)] += 1

    @staticmethod
    def _version_of(record: Mapping) -> int:
        """The config schema version a record was written under (v1 if unstamped)."""
        return int(record.get("schema_version", 1))

    @property
    def skipped_lines(self) -> int:
        """Corrupt/partial lines ignored while loading (0 for a clean store)."""
        return self._skipped_lines

    @property
    def legacy_count(self) -> int:
        """Loaded records written under an older config schema version."""
        return sum(n for v, n in self._version_counts.items() if v < SCHEMA_VERSION and n > 0)

    def version_counts(self) -> dict[int, int]:
        """Record count per config schema version, for reporting."""
        return {v: n for v, n in sorted(self._version_counts.items()) if n > 0}

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, record: Mapping) -> None:
        """Append one record (stamped with the current schema version) and
        flush it to disk immediately."""
        record = dict(record)
        scenario_id = record.get("scenario_id")
        if not scenario_id:
            raise ValueError("record must carry a scenario_id")
        record.setdefault("schema_version", SCHEMA_VERSION)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        # A previous torn write may have left the file without a trailing
        # newline; heal it so the new record starts on its own line.
        needs_newline = False
        if self.path.exists() and self.path.stat().st_size > 0:
            with self.path.open("rb") as fh:
                fh.seek(-1, os.SEEK_END)
                needs_newline = fh.read(1) != b"\n"
        with self.path.open("a", encoding="utf-8") as fh:
            if needs_newline:
                fh.write("\n")
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        previous = self._records.get(scenario_id)
        if previous is not None:
            self._version_counts[self._version_of(previous)] -= 1
        self._records[scenario_id] = record
        self._version_counts[self._version_of(record)] += 1

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key) -> bool:
        return self._key(key) in self._records

    def get(self, key) -> Optional[dict]:
        """The latest record for a scenario id / config, or None."""
        return self._records.get(self._key(key))

    def is_complete(self, key) -> bool:
        """Whether the scenario already has a successful (cached) record."""
        record = self.get(key)
        return record is not None and record.get("status") == "ok"

    def records(self) -> Iterator[dict]:
        """All loaded records (latest per scenario id), insertion-ordered."""
        return iter(list(self._records.values()))

    def ok_records(self) -> list[dict]:
        """Only the successful records — what aggregation consumes."""
        return [r for r in self._records.values() if r.get("status") == "ok"]

    def result_for(self, key) -> Optional[SimulationResult]:
        """Rebuild the stored (decimated) SimulationResult, if series were kept."""
        record = self.get(key)
        if record is None or "series" not in record:
            return None
        return SimulationResult.from_dict(record["series"])

    @staticmethod
    def _key(key) -> str:
        if isinstance(key, ScenarioConfig):
            return key.scenario_id
        return str(key)
