"""Built-in campaign presets: ready-made :class:`SweepSpec`s per paper rig.

Each preset is a function returning a fully-formed sweep; the CLI exposes
them as ``python -m repro sweep --preset <name>`` and scripts can import
them directly.  Presets accept ``duration_s``/``seeds`` overrides where that
makes sense but otherwise pin the rig the way the paper ran it:

* ``table2-pv`` — the PR-1 default outdoor grid (governors × weather ×
  buffer size) behind Table II / Figs. 12–14;
* ``fig11-governors`` — the Section V-A verification: the controlled
  variable-voltage profile of Fig. 11 driving the Fig. 11-tuned proposed
  governor against the Linux baselines;
* ``constant-power-survival`` — an idealised constant-power survey of the
  survival boundary: which governors stay up (and what they complete) as the
  prescribed harvest steps from starvation to surplus.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from .scenario import TABLE2_GOVERNOR_AXIS
from .spec import Axis, SweepSpec

__all__ = ["CAMPAIGN_PRESETS", "preset_names", "build_preset"]


def table2_pv_preset(
    duration_s: Optional[float] = None,
    seeds: Sequence[int] = (7,),
) -> SweepSpec:
    """The default outdoor campaign: governors × weather × buffer size."""
    return SweepSpec.grid(
        governors=["power-neutral", "powersave", "ondemand", "conservative"],
        weather=["full_sun", "partial_sun", "cloud"],
        capacitances_f=[15.4e-3, 47e-3],
        seeds=list(seeds),
        duration_s=duration_s if duration_s is not None else 60.0,
    )


def fig11_governors_preset(
    duration_s: Optional[float] = None,
    seeds: Sequence[int] = (),
) -> SweepSpec:
    """Section V-A / Fig. 11: governors on the controlled laboratory supply.

    The proposed governor runs with the Fig. 11 parameter set (as published);
    the supply follows the wandering 4.4–5.6 V profile with the deep drop at
    t ≈ 100 s, so the full published character needs ``duration_s >= 120``.
    """
    if seeds:
        raise ValueError("the fig11-governors preset is deterministic; seeds do not apply")
    return SweepSpec.grid(
        governors=[
            "power-neutral-fig11",
            "performance",
            "ondemand",
            "conservative",
            "powersave",
        ],
        supply={"kind": "controlled-voltage", "profile": "fig11"},
        duration_s=duration_s if duration_s is not None else 170.0,
    )


def constant_power_survival_preset(
    duration_s: Optional[float] = None,
    seeds: Sequence[int] = (),
    power_levels_w: Sequence[float] = (1.0, 1.8, 2.5, 3.5, 5.0, 7.0),
) -> SweepSpec:
    """Survival survey on the idealised constant-power source.

    Sweeps the prescribed harvest power across the platform's interesting
    range (the lowest OPP draws ~1.8 W, the highest ~7.3 W) for the proposed
    governor and three Linux baselines; aggregate by ``supply.power_w`` to
    read off each scheme's survival boundary.
    """
    if seeds:
        raise ValueError(
            "the constant-power-survival preset is deterministic; seeds do not apply"
        )
    return SweepSpec.grid(
        governors=["power-neutral", "performance", "ondemand", "powersave"],
        supply={"kind": "constant-power"},
        duration_s=duration_s if duration_s is not None else 60.0,
        extra_axes=(Axis("supply.power_w", [float(p) for p in power_levels_w]),),
    )


def table2_shootout_preset(
    duration_s: Optional[float] = None,
    seeds: Sequence[int] = (11,),
) -> SweepSpec:
    """The full eight-scheme Table II axis on the outdoor rig."""
    return SweepSpec.grid(
        governors=TABLE2_GOVERNOR_AXIS,
        seeds=list(seeds) or [11],
        duration_s=duration_s if duration_s is not None else 900.0,
    )


#: name -> preset factory (duration_s=None, seeds=...) -> SweepSpec
CAMPAIGN_PRESETS: dict[str, Callable[..., SweepSpec]] = {
    "table2-pv": table2_pv_preset,
    "table2-shootout": table2_shootout_preset,
    "fig11-governors": fig11_governors_preset,
    "constant-power-survival": constant_power_survival_preset,
}


def preset_names() -> list[str]:
    return sorted(CAMPAIGN_PRESETS)


def build_preset(
    name: str,
    duration_s: Optional[float] = None,
    seeds: Optional[Sequence[int]] = None,
) -> SweepSpec:
    """Instantiate a named preset, applying optional overrides."""
    try:
        factory = CAMPAIGN_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown campaign preset {name!r}; known: {', '.join(preset_names())}"
        ) from None
    kwargs: dict = {"duration_s": duration_s}
    if seeds is not None:
        kwargs["seeds"] = tuple(seeds)
    return factory(**kwargs)
