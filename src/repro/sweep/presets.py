"""Built-in campaign presets: ready-made :class:`SweepSpec`s per paper rig.

Each preset is a function returning a fully-formed sweep; the CLI exposes
them as ``python -m repro sweep --preset <name>`` and scripts can import
them directly.  Presets accept ``duration_s``/``seeds`` overrides where that
makes sense but otherwise pin the rig the way the paper ran it:

* ``table2-pv`` — the PR-1 default outdoor grid (governors × weather ×
  buffer size) behind Table II / Figs. 12–14;
* ``fig11-governors`` — the Section V-A verification: the controlled
  variable-voltage profile of Fig. 11 driving the Fig. 11-tuned proposed
  governor against the Linux baselines;
* ``constant-power-survival`` — an idealised constant-power survey of the
  survival boundary: which governors stay up (and what they complete) as the
  prescribed harvest steps from starvation to surplus;
* ``dist-smoke`` — a four-cell micro-grid for exercising the shard/merge
  distributed-execution flow (CI and local smoke tests).

Alongside the grid presets live the *boundary* presets — ready-made
:class:`~repro.sweep.adaptive.BoundaryQuery` searches behind
``python -m repro boundary --preset <name>``:

* ``min-capacitance`` — the smallest buffer that rides a train of sharp
  shadowing transients, per weather preset (the closed-loop counterpart of
  Table I's analytic minimum);
* ``min-power`` — the smallest constant harvest power at which each governor
  survives (the survival boundary the constant-power-survival grid brackets
  by brute force).
"""

from __future__ import annotations

import inspect
from typing import Callable, Optional, Sequence

from .adaptive import BoundaryQuery
from .scenario import TABLE2_GOVERNOR_AXIS
from .spec import Axis, ScenarioConfig, ShadowSpec, SweepSpec

__all__ = [
    "CAMPAIGN_PRESETS",
    "preset_names",
    "build_preset",
    "BOUNDARY_PRESETS",
    "boundary_preset_names",
    "build_boundary_preset",
]


def table2_pv_preset(
    duration_s: Optional[float] = None,
    seeds: Sequence[int] = (7,),
) -> SweepSpec:
    """The default outdoor campaign: governors × weather × buffer size."""
    return SweepSpec.grid(
        governors=["power-neutral", "powersave", "ondemand", "conservative"],
        weather=["full_sun", "partial_sun", "cloud"],
        capacitances_f=[15.4e-3, 47e-3],
        seeds=list(seeds),
        duration_s=duration_s if duration_s is not None else 60.0,
    )


def fig11_governors_preset(
    duration_s: Optional[float] = None,
    seeds: Sequence[int] = (),
) -> SweepSpec:
    """Section V-A / Fig. 11: governors on the controlled laboratory supply.

    The proposed governor runs with the Fig. 11 parameter set (as published);
    the supply follows the wandering 4.4–5.6 V profile with the deep drop at
    t ≈ 100 s, so the full published character needs ``duration_s >= 120``.
    """
    if seeds:
        raise ValueError("the fig11-governors preset is deterministic; seeds do not apply")
    return SweepSpec.grid(
        governors=[
            "power-neutral-fig11",
            "performance",
            "ondemand",
            "conservative",
            "powersave",
        ],
        supply={"kind": "controlled-voltage", "profile": "fig11"},
        duration_s=duration_s if duration_s is not None else 170.0,
    )


def constant_power_survival_preset(
    duration_s: Optional[float] = None,
    seeds: Sequence[int] = (),
    power_levels_w: Sequence[float] = (1.0, 1.8, 2.5, 3.5, 5.0, 7.0),
) -> SweepSpec:
    """Survival survey on the idealised constant-power source.

    Sweeps the prescribed harvest power across the platform's interesting
    range (the lowest OPP draws ~1.8 W, the highest ~7.3 W) for the proposed
    governor and three Linux baselines; aggregate by ``supply.power_w`` to
    read off each scheme's survival boundary.
    """
    if seeds:
        raise ValueError(
            "the constant-power-survival preset is deterministic; seeds do not apply"
        )
    return SweepSpec.grid(
        governors=["power-neutral", "performance", "ondemand", "powersave"],
        supply={"kind": "constant-power"},
        duration_s=duration_s if duration_s is not None else 60.0,
        extra_axes=(Axis("supply.power_w", [float(p) for p in power_levels_w]),),
    )


def dist_smoke_preset(
    duration_s: Optional[float] = None,
    seeds: Sequence[int] = (3,),
) -> SweepSpec:
    """A deliberately tiny grid for shard/merge smoke checks.

    Four cells (2 governors × 2 weather presets) of a few simulated seconds
    each: small enough that CI can run it once single-process and once as
    two shards and compare the stores record-for-record, large enough that
    a content-addressed partition actually splits it.
    """
    return SweepSpec.grid(
        governors=["power-neutral", "powersave"],
        weather=["full_sun", "cloud"],
        capacitances_f=[15.4e-3],
        seeds=list(seeds),
        duration_s=duration_s if duration_s is not None else 6.0,
    )


def table2_shootout_preset(
    duration_s: Optional[float] = None,
    seeds: Sequence[int] = (11,),
) -> SweepSpec:
    """The full eight-scheme Table II axis on the outdoor rig."""
    return SweepSpec.grid(
        governors=TABLE2_GOVERNOR_AXIS,
        seeds=list(seeds) or [11],
        duration_s=duration_s if duration_s is not None else 900.0,
    )


# ----------------------------------------------------------------------
# Boundary presets (adaptive bisection searches)
# ----------------------------------------------------------------------
def min_capacitance_boundary(
    duration_s: Optional[float] = None,
    rel_tol: Optional[float] = None,
    weather: Sequence[str] = ("full_sun", "partial_sun", "cloud"),
    seed: int = 11,
) -> BoundaryQuery:
    """Minimum buffer capacitance riding through shadowing, per weather.

    The proposed governor faces three sharp shadowing transients (at 1/4, 1/2
    and 3/4 of the run, the Table I follow-up rig); the search bisects
    ``capacitor.capacitance_f`` on the survival predicate.  The initial
    bracket spans the paper's 2 mF undersized probe to its 47 mF chosen
    component; milder weather pushes the boundary below it and heavy cloud
    far above, exercising bracket expansion in both directions.
    """
    if isinstance(weather, str):
        weather = (weather,)
    duration = float(duration_s) if duration_s is not None else 32.0
    if duration < 4.0:
        raise ValueError("min-capacitance needs duration_s >= 4 to fit the shadowing train")
    shadows = tuple(
        ShadowSpec(start_s=f * duration, duration_s=0.6, attenuation=0.05, ramp_s=0.05)
        for f in (0.25, 0.5, 0.75)
    )
    base = ScenarioConfig(
        governor="power-neutral",
        weather=str(weather[0]),
        seed=int(seed),
        duration_s=duration,
        shadowing=shadows,
    )
    outer = (Axis("supply.weather", [str(w) for w in weather]),) if len(weather) > 1 else ()
    return BoundaryQuery(
        base=base,
        path="capacitor.capacitance_f",
        lo=2e-3,
        hi=47e-3,
        outer_axes=outer,
        predicate="survived",
        scale="log",
        rel_tol=float(rel_tol) if rel_tol is not None else 0.1,
    )


def min_power_boundary(
    duration_s: Optional[float] = None,
    rel_tol: Optional[float] = None,
    governors: Sequence[str] = ("power-neutral", "performance", "ondemand", "powersave"),
) -> BoundaryQuery:
    """Minimum constant supply power at which each governor survives.

    The idealised constant-power rig of the Fig. 11 / controlled-supply
    verification: bisects ``supply.power_w`` per governor between deep
    starvation (0.8 W, below the lowest OPP's draw) and surplus (8 W, above
    the highest).  The proposed governor's boundary sits near the lowest
    OPP; performance-greedy baselines need several times more.
    """
    if isinstance(governors, str):
        governors = (governors,)
    base = ScenarioConfig(
        governor=str(governors[0]),
        supply={"kind": "constant-power"},
        duration_s=float(duration_s) if duration_s is not None else 45.0,
    )
    outer = (Axis("governor", [str(g) for g in governors]),) if len(governors) > 1 else ()
    return BoundaryQuery(
        base=base,
        path="supply.power_w",
        lo=0.8,
        hi=8.0,
        outer_axes=outer,
        predicate="survived",
        scale="linear",
        rel_tol=float(rel_tol) if rel_tol is not None else 0.05,
    )


#: name -> boundary preset factory -> BoundaryQuery
BOUNDARY_PRESETS: dict[str, Callable[..., BoundaryQuery]] = {
    "min-capacitance": min_capacitance_boundary,
    "min-power": min_power_boundary,
}


def boundary_preset_names() -> list[str]:
    return sorted(BOUNDARY_PRESETS)


def build_boundary_preset(name: str, **overrides) -> BoundaryQuery:
    """Instantiate a named boundary preset, applying only the overrides it takes.

    ``overrides`` whose value is ``None`` are dropped (flag left at its CLI
    default); passing an override the preset does not accept raises
    ``ValueError`` naming the preset.
    """
    try:
        factory = BOUNDARY_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown boundary preset {name!r}; known: {', '.join(boundary_preset_names())}"
        ) from None
    kwargs = {k: v for k, v in overrides.items() if v is not None}
    accepted = set(inspect.signature(factory).parameters)
    unknown = sorted(set(kwargs) - accepted)
    if unknown:
        raise ValueError(
            f"boundary preset {name!r} does not take: {', '.join(unknown)} "
            f"(it accepts: {', '.join(sorted(accepted))})"
        )
    return factory(**kwargs)


#: name -> preset factory (duration_s=None, seeds=...) -> SweepSpec
CAMPAIGN_PRESETS: dict[str, Callable[..., SweepSpec]] = {
    "table2-pv": table2_pv_preset,
    "table2-shootout": table2_shootout_preset,
    "fig11-governors": fig11_governors_preset,
    "constant-power-survival": constant_power_survival_preset,
    "dist-smoke": dist_smoke_preset,
}


def preset_names() -> list[str]:
    return sorted(CAMPAIGN_PRESETS)


def build_preset(
    name: str,
    duration_s: Optional[float] = None,
    seeds: Optional[Sequence[int]] = None,
) -> SweepSpec:
    """Instantiate a named preset, applying optional overrides."""
    try:
        factory = CAMPAIGN_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown campaign preset {name!r}; known: {', '.join(preset_names())}"
        ) from None
    kwargs: dict = {"duration_s": duration_s}
    if seeds is not None:
        kwargs["seeds"] = tuple(seeds)
    return factory(**kwargs)
