"""Sharded campaign execution: partition a campaign, run shards, merge stores.

A :class:`~repro.sweep.spec.SweepSpec` campaign is embarrassingly parallel —
every cell is an independent simulation keyed by its content hash — so the
natural way past one machine's process pool is to *shard* the campaign:

* :func:`shard_index_of` / :func:`partition_scenarios` — **deterministic,
  content-addressed sharding**.  A scenario belongs to shard
  ``int(scenario_id, 16) % n_shards``: membership depends only on the
  scenario's content hash, never on expansion order, axis spelling or which
  host does the partitioning, so N workers expanding the same spec agree on
  disjoint subsets whose union is the whole campaign;
* :class:`ShardPlan` — one worker's slice of a campaign, stamped into a JSON
  **shard manifest** (campaign hash, shard count/index, engine choice, spec
  snapshot).  Workers rebuild the spec from the snapshot and verify the
  recomputed campaign hash against the stamped one, so a drifted preset, a
  mis-copied spec file or a stale shard store is caught before any
  simulation runs;
* :class:`DistRunner` — the in-process fan-out fallback: launches all N
  shards as local worker processes, each writing its own shard store, then
  merges the shard stores into the coordinator's store via
  :meth:`~repro.sweep.store.ResultStore.merge`.  It satisfies the
  :class:`~repro.sweep.runner.CampaignRunner` protocol, so a
  :class:`~repro.sweep.adaptive.BoundarySearch` handed a ``DistRunner``
  transparently fans each round's probe batch out across the shards.

Multi-host execution is the same flow without the fork: run
``python -m repro shard --spec campaign.json --num-shards N --shard-index I
--store shard-I.jsonl`` on each host, collect the shard stores, and assemble
the final store with ``python -m repro store merge DEST shard-*.jsonl`` — the
merged store is what ``sweep --resume``, ``aggregate`` and ``boundary``
consume unchanged, and re-running any shard against it is pure cache hits.
"""

from __future__ import annotations

import functools
import json
import multiprocessing
import os
import queue as queue_module
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from .. import faults
from ..faults import RetryPolicy
from ..obs.telemetry import DISABLED, Telemetry
from .runner import ProgressCallback, SweepReport, SweepRunner, expand_unique
from .scenario import SHARD_INDEX_ENV
from .spec import ScenarioConfig, SweepSpec, campaign_hash_of
from .store import ResultStore

__all__ = [
    "MANIFEST_VERSION",
    "ShardPlan",
    "shard_index_of",
    "partition_scenarios",
    "DistRunner",
]

#: Shard manifest layout version.
MANIFEST_VERSION = 1

#: Engine names a manifest may carry (mapped to ``build_system(fast=...)``).
_ENGINES = ("fast", "exact")


def shard_index_of(scenario_id: str, n_shards: int) -> int:
    """The shard a scenario belongs to — a pure function of its content hash."""
    return int(scenario_id, 16) % int(n_shards)


def partition_scenarios(
    configs: Sequence[ScenarioConfig], n_shards: int, shard_index: int
) -> list[ScenarioConfig]:
    """This shard's subset of a config list, in the list's (partition) order."""
    return [c for c in configs if shard_index_of(c.scenario_id, n_shards) == shard_index]


@dataclass(frozen=True)
class ShardPlan:
    """One worker's slice of a campaign: which scenarios, under which contract.

    Attributes
    ----------
    spec:
        The full campaign (every worker holds the whole spec; the slice is
        computed, not enumerated, so manifests stay small at any grid size).
    n_shards / shard_index:
        The partition geometry; ``shard_index`` is 0-based.
    engine:
        ``"fast"`` or ``"exact"`` — the simulation engine every shard of the
        campaign must use.  Stamped into the manifest (a half-fast,
        half-exact campaign would be silently inconsistent) even though it
        is not part of any scenario's identity.
    """

    spec: SweepSpec
    n_shards: int
    shard_index: int
    engine: str = "fast"

    def __post_init__(self) -> None:
        object.__setattr__(self, "n_shards", int(self.n_shards))
        object.__setattr__(self, "shard_index", int(self.shard_index))
        if self.n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        if not 0 <= self.shard_index < self.n_shards:
            raise ValueError(
                f"shard_index must be in [0, {self.n_shards}) (got {self.shard_index})"
            )
        if self.engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES} (got {self.engine!r})")

    @classmethod
    def partition(
        cls,
        spec: Union[SweepSpec, ScenarioConfig],
        n_shards: int,
        shard_index: int,
        engine: str = "fast",
    ) -> "ShardPlan":
        """Split a campaign: the plan for shard ``shard_index`` of ``n_shards``.

        All N plans of one campaign are disjoint and their union is exactly
        the campaign's de-duplicated expansion, regardless of which process
        computes them (membership is content-addressed, see
        :func:`shard_index_of`).
        """
        if isinstance(spec, ScenarioConfig):
            spec = SweepSpec(base=spec)
        return cls(spec=spec, n_shards=n_shards, shard_index=shard_index, engine=engine)

    # ------------------------------------------------------------------
    # Expanding a 100k-cell campaign hashes 100k canonical-JSON configs, so
    # the plan expands once and every consumer (hash, configs, manifest,
    # banner lines) reads the cache.  cached_property writes straight into
    # __dict__, which a frozen dataclass permits.
    @functools.cached_property
    def _expanded(self) -> tuple[ScenarioConfig, ...]:
        return tuple(expand_unique(self.spec))

    @functools.cached_property
    def campaign_hash(self) -> str:
        """The campaign's content hash — shared by all shards of one campaign."""
        return campaign_hash_of(c.scenario_id for c in self._expanded)

    def configs(self) -> list[ScenarioConfig]:
        """The scenarios this shard executes, in partition order."""
        return partition_scenarios(self._expanded, self.n_shards, self.shard_index)

    def with_geometry(
        self, n_shards: int, shard_index: int, engine: Optional[str] = None
    ) -> "ShardPlan":
        """This campaign re-sliced: same spec, different shard geometry.

        Carries the cached expansion across (membership is content-addressed,
        so the expansion is geometry-independent) — re-slicing a verified
        manifest's plan for another worker costs no re-hashing.
        """
        plan = ShardPlan(
            spec=self.spec,
            n_shards=n_shards,
            shard_index=shard_index,
            engine=engine if engine is not None else self.engine,
        )
        if "_expanded" in self.__dict__:
            plan.__dict__["_expanded"] = self._expanded
            plan.__dict__["campaign_hash"] = self.campaign_hash
        return plan

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def manifest(self) -> dict:
        """The JSON shard manifest: identity, geometry, engine, spec snapshot."""
        return {
            "manifest_version": MANIFEST_VERSION,
            "campaign_hash": self.campaign_hash,
            "n_shards": self.n_shards,
            "shard_index": self.shard_index,
            "engine": self.engine,
            "total_scenarios": len(self._expanded),
            "shard_scenarios": len(self.configs()),
            "spec": self.spec.to_dict(),
        }

    def write_manifest(self, path: "str | Path") -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.manifest(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def from_manifest(cls, source: "str | Path | dict") -> "ShardPlan":
        """Load and *verify* a manifest.

        The spec snapshot is re-expanded and its campaign hash recomputed;
        a mismatch against the stamped hash means the snapshot was edited,
        the manifest was written by an incompatible config schema, or two
        different campaigns are being mixed — all of which must stop a
        worker before it burns CPU on the wrong campaign.
        """
        if isinstance(source, (str, Path)):
            try:
                data = json.loads(Path(source).read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as exc:
                raise ValueError(f"unreadable shard manifest {source}: {exc}") from None
        else:
            data = dict(source)
        version = data.get("manifest_version")
        if version != MANIFEST_VERSION:
            raise ValueError(
                f"shard manifest version {version!r} is not supported "
                f"(this build writes v{MANIFEST_VERSION})"
            )
        try:
            spec = SweepSpec.from_dict(data["spec"])
            plan = cls(
                spec=spec,
                n_shards=data["n_shards"],
                shard_index=data["shard_index"],
                engine=data.get("engine", "fast"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"invalid shard manifest: {exc}") from None
        stamped = data.get("campaign_hash")
        if stamped != plan.campaign_hash:
            raise ValueError(
                f"shard manifest campaign hash {stamped!r} does not match the "
                f"spec snapshot (expands to {plan.campaign_hash!r}); the manifest "
                "was edited or belongs to a different campaign"
            )
        return plan

    def describes_same_campaign(self, other: "ShardPlan") -> bool:
        """Whether another plan is a slice of the same partitioned campaign."""
        return (
            self.campaign_hash == other.campaign_hash
            and self.n_shards == other.n_shards
            and self.engine == other.engine
        )


# ----------------------------------------------------------------------
# In-process fan-out: all N shards as local worker processes
# ----------------------------------------------------------------------
def _shard_worker(payload: dict, outbox) -> None:
    """Top-level shard worker body (picklable; runs in a child process).

    Executes its config subset with a serial/pooled :class:`SweepRunner`
    against the shard's own store, streaming lightweight progress messages
    (series payloads stripped) and a final summary over ``outbox``.  When the
    coordinator hands it a trace directory, the worker builds its *own*
    per-process telemetry there (``trace-shard-I-<pid>.jsonl`` plus a metrics
    sidecar next to the shard store) — trace files merge on read, like shard
    stores do — and emits lifecycle events (``worker.start`` / time-gated
    ``worker.heartbeat`` / ``worker.done``) around the campaign spans its
    runner records.
    """
    shard_index = payload["shard_index"]
    worker_id = payload.get("worker_id", shard_index)
    trace_dir = payload.get("trace_dir")
    telemetry = (
        Telemetry.create(
            trace_dir, worker=f"shard-{shard_index}", campaign=payload.get("campaign")
        )
        if trace_dir
        else DISABLED
    )
    # Pool grandchildren inherit the environment (fork and spawn alike), so
    # every record computed under this worker carries its shard index.
    os.environ[SHARD_INDEX_ENV] = str(shard_index)
    try:
        configs = [ScenarioConfig.from_dict(d) for d in payload["configs"]]
        store = ResultStore(payload["store_path"], telemetry=telemetry)
        telemetry.tracer.event(
            "worker.start", shard=shard_index, worker_id=worker_id, scenarios=len(configs)
        )
        last_beat = time.monotonic()
        injector = faults.active()

        def forward(done: int, total: int, record: dict, cached: bool) -> None:
            nonlocal last_beat
            if injector is not None:
                # Firing *before* the progress message is the harshest
                # ordering: a crash here loses the just-completed cell's
                # message (though its record is already in the shard store),
                # so the coordinator must recover from the store diff alone.
                injector.fire(
                    "dist.worker_loop", telemetry=telemetry, shard=shard_index, done=done
                )
            lite = {k: v for k, v in record.items() if k != "series"}
            outbox.put(("progress", worker_id, done, total, lite, cached))
            now = time.monotonic()
            if now - last_beat >= 1.0:
                last_beat = now
                telemetry.tracer.event(
                    "worker.heartbeat", shard=shard_index, done=done, total=total
                )

        runner = SweepRunner(
            store,
            workers=payload["workers"],
            timeout_s=payload["timeout_s"],
            series_samples=payload["series_samples"],
            fast=payload["fast"],
            progress=forward,
            telemetry=telemetry,
            retry=RetryPolicy.from_dict(payload.get("retry")),
        )
        report = runner.run(configs)
        telemetry.tracer.event("worker.done", shard=shard_index, **report.summary())
        telemetry.write_metrics(store.path)
        outbox.put(("done", worker_id, report.summary()))
    except Exception as exc:  # noqa: BLE001 — a shard must report, not vanish
        telemetry.tracer.event(
            "worker.failed", shard=shard_index, error=f"{type(exc).__name__}: {exc}"
        )
        outbox.put(("failed", worker_id, f"{type(exc).__name__}: {exc}"))
    finally:
        telemetry.close()


class DistRunner:
    """Run campaigns as N sharded worker processes sharing only a final merge.

    The single-host counterpart of the multi-host shard/merge flow — and the
    integration harness proving it: each shard worker is a separate process
    with its *own* :class:`~repro.sweep.store.ResultStore` (no shared file,
    no locking), exactly like a remote host would be.  The coordinator
    collects each run's cells from the shard stores into its own store by
    per-config fetch + append (so repeated runs — e.g. boundary-search
    rounds — only ever copy the new round's records, never re-merge the
    shard stores' history); the wholesale union of full shard stores is
    :func:`~repro.sweep.store.merge_stores` / ``store merge``, the
    multi-host coordinator path.

    Satisfies :class:`~repro.sweep.runner.CampaignRunner`, so it drops in
    anywhere a :class:`SweepRunner` is consumed — in particular as the
    runner of a :class:`~repro.sweep.adaptive.BoundarySearch`, whose
    per-round probe batches then fan out across the shards.

    Parameters
    ----------
    store:
        The coordinator's merged store.  Cells already complete here are
        never dispatched (coordinator-level cache), and every run ends with
        the shard stores merged back into it.
    n_shards:
        Worker process count; each gets the content-addressed subset of the
        campaign that :func:`shard_index_of` assigns it.
    workers_per_shard:
        Process-pool width *inside* each shard worker (shard workers are
        spawned non-daemonic precisely so they may pool further).
    shard_dir:
        Where shard stores live (default: ``<store>.shards/``).  Persistent
        across runs, so an interrupted distributed campaign resumes with
        per-shard cache hits before the next merge.
    fast / timeout_s / series_samples / progress:
        As on :class:`SweepRunner`; progress is relayed live from the shard
        workers with coordinator-global ``done``/``total`` counts.
    telemetry:
        As on :class:`SweepRunner`.  The coordinator emits a ``dist.run``
        span partitioned into ``dist.phase`` spans (expand / cache-scan /
        execute / collect) plus ``worker.spawn`` / ``worker.exit`` events;
        when the bundle carries a trace directory, each shard worker builds
        its own per-process trace file there, so ``obs report <dir>`` sees
        the coordinator and every worker merged in timestamp order.
    retry:
        Per-worker :class:`~repro.faults.RetryPolicy` for transient scenario
        failures, forwarded to every shard worker's ``SweepRunner``.
    respawn_budget:
        Self-healing: when a shard worker dies mid-campaign, the coordinator
        diffs its store against its config subset and re-partitions the
        *unfinished remainder* across this many fresh recovery workers
        (spread over the surviving shards' slots).  ``0`` restores the old
        behaviour — synthetic error records, retried on manual resume.
    heartbeat_timeout_s:
        When set, a worker silent for this long (no relayed progress) is
        terminated and treated as dead, entering the same respawn path.
        Leave ``None`` (default) unless per-cell runtimes are bounded well
        below it — workers only message per completed cell.
    """

    def __init__(
        self,
        store: ResultStore,
        n_shards: int = 2,
        workers_per_shard: int = 1,
        timeout_s: Optional[float] = None,
        series_samples: int = 0,
        fast: bool = True,
        shard_dir: "str | Path | None" = None,
        progress: Optional[ProgressCallback] = None,
        telemetry: Optional[Telemetry] = None,
        retry: Optional[RetryPolicy] = None,
        respawn_budget: int = 2,
        heartbeat_timeout_s: Optional[float] = None,
    ):
        if int(n_shards) < 1:
            raise ValueError("n_shards must be at least 1")
        if heartbeat_timeout_s is not None and heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be positive")
        self.store = store
        self.n_shards = int(n_shards)
        self.workers_per_shard = max(1, int(workers_per_shard))
        self.timeout_s = timeout_s
        self.series_samples = int(series_samples)
        self.fast = bool(fast)
        self.shard_dir = Path(shard_dir) if shard_dir is not None else Path(
            str(store.path) + ".shards"
        )
        self.progress = progress
        self.telemetry = telemetry if telemetry is not None else DISABLED
        self.retry = retry
        #: How many recovery workers a run may spawn for dead shards; beyond
        #: it, unfinished cells fall back to synthetic error records (the
        #: pre-existing manual-resume path).
        self.respawn_budget = max(0, int(respawn_budget))
        #: When set, a worker that has relayed no message for this long is
        #: presumed wedged: terminated and treated as dead (respawn path).
        #: Off by default — workers only message per completed cell, so a
        #: single long scenario would otherwise look like a stall.
        self.heartbeat_timeout_s = heartbeat_timeout_s

    def shard_store_path(self, shard_index: int) -> Path:
        return self.shard_dir / f"shard-{shard_index}.jsonl"

    # ------------------------------------------------------------------
    def run(self, campaign: Union[SweepSpec, Sequence[ScenarioConfig]]) -> SweepReport:
        """Partition, execute on worker processes, merge, report.

        The returned report is indistinguishable from a single
        :meth:`SweepRunner.run` over the same campaign against the same
        store: per-config records (merged back in), coordinator cache hits
        counted as ``cached``, worker-side failures as ``failed``; a shard
        worker that dies leaves synthetic ``error`` records for its
        unexecuted cells (persisted, and therefore retried on resume).
        """
        tracer, metrics = self.telemetry.tracer, self.telemetry.metrics
        started = time.perf_counter()
        configs = expand_unique(campaign)
        mark = time.perf_counter()
        tracer.span_event("dist.phase", mark - started, phase="expand")
        report = SweepReport(total=len(configs))

        done = 0
        pending: list[ScenarioConfig] = []
        for config in configs:
            if self.store.is_complete(config):
                lookup_t0 = time.perf_counter()
                record = self.store.get(config)
                report.cached += 1
                report.records.append(record)
                done += 1
                metrics.counter("campaign.cache_hits")
                tracer.span_event(
                    "scenario",
                    time.perf_counter() - lookup_t0,
                    scenario_id=config.scenario_id,
                    status=record.get("status"),
                    cached=True,
                )
                self._notify(done, report.total, record, cached=True)
            else:
                pending.append(config)
        prev, mark = mark, time.perf_counter()
        tracer.span_event("dist.phase", mark - prev, phase="cache-scan")

        if pending:
            worker_units, observed_cached = self._run_shards(
                pending, done, report.total
            )
            prev, mark = mark, time.perf_counter()
            tracer.span_event("dist.phase", mark - prev, phase="execute")
            # Collect exactly this run's cells from the shard stores into the
            # coordinator store — per-config fetch + append, like a
            # SweepRunner persisting its own completions, so repeated runs
            # (e.g. BoundarySearch rounds) never re-copy earlier rounds'
            # records out of the persistent shard stores.  A shard's cells
            # may live in its home store *or* a recovery worker's store (a
            # respawn after the home worker died), so each shard searches
            # its units' stores in spawn order.
            stores: dict[Path, ResultStore] = {}
            paths_by_shard: dict[int, list[Path]] = {}
            dead_paths: set[Path] = set()
            dead_units = 0
            for unit in worker_units:
                shard_paths = paths_by_shard.setdefault(unit["shard_index"], [])
                if unit["store_path"] not in shard_paths:
                    shard_paths.append(unit["store_path"])
                if "executed" in unit["summary"]:
                    report.executed += unit["summary"].get("executed", 0)
                    report.cached += unit["summary"].get("cached", 0)
                    unit_retried = unit["summary"].get("retried", 0)
                    report.retried += unit_retried
                    if unit_retried:
                        # Mirror into the coordinator registry only — the
                        # workers already emitted tracer counters, so adding
                        # ours would double-count in trace aggregation.
                        metrics.counter("retry.attempt", unit_retried)
                else:
                    dead_units += 1
                    dead_paths.add(unit["store_path"])
            injected_total = 0
            for config in pending:
                shard = shard_index_of(config.scenario_id, self.n_shards)
                record, from_dead = None, False
                for path in paths_by_shard.get(shard, []):
                    if path not in stores and path.exists():
                        stores[path] = ResultStore(path)
                    source = stores.get(path)
                    found = source.get(config) if source is not None else None
                    if found is not None:
                        record, from_dead = found, path in dead_paths
                        break
                if record is None:
                    # Every worker holding this cell died before reaching it
                    # (and the respawn budget ran out); leave a retryable
                    # post-mortem record, as SweepRunner does for in-process
                    # failures.  (Not counted as executed — no simulation ran.)
                    record = {
                        "scenario_id": config.scenario_id,
                        "config": config.to_dict(),
                        "status": "error",
                        "error": "shard worker exited before executing this scenario",
                    }
                elif from_dead:
                    # The worker produced this record but died before
                    # reporting its summary; account the work from the
                    # progress messages it did send (a relayed cached=True
                    # cell was a shard-store cache hit, not an execution).
                    if observed_cached.get(config.scenario_id):
                        report.cached += 1
                    else:
                        report.executed += 1
                self.store.append(record)
                report.records.append(record)
                injected_total += int(record.get("faults_injected") or 0)
                status = record.get("status")
                if status == "error":
                    report.failed += 1
                elif status == "timeout":
                    report.timed_out += 1
            if injected_total:
                # Registry-only mirror, like retry.attempt above.
                metrics.counter("faults.injected", injected_total)
            prev, mark = mark, time.perf_counter()
            tracer.span_event(
                "dist.phase",
                mark - prev,
                phase="collect",
                collected=len(pending),
                dead_workers=dead_units,
            )

        report.elapsed_s = mark - started
        tracer.span_event(
            "dist.run",
            mark - started,
            shards=self.n_shards,
            workers_per_shard=self.workers_per_shard,
            **report.summary(),
        )
        return report

    # ------------------------------------------------------------------
    def _notify(self, done: int, total: int, record: dict, cached: bool) -> None:
        if self.progress is not None:
            self.progress(done, total, record, cached)

    def _payload(
        self,
        shard_index: int,
        shard_configs: list[ScenarioConfig],
        worker_id: int = 0,
        store_path: "Path | None" = None,
    ) -> dict:
        trace_dir = self.telemetry.trace_dir
        return {
            "shard_index": shard_index,
            "worker_id": worker_id,
            "configs": [c.to_dict() for c in shard_configs],
            "store_path": str(
                store_path if store_path is not None else self.shard_store_path(shard_index)
            ),
            "workers": self.workers_per_shard,
            "timeout_s": self.timeout_s,
            "series_samples": self.series_samples,
            "fast": self.fast,
            "retry": self.retry.to_dict() if self.retry is not None else None,
            "trace_dir": str(trace_dir) if trace_dir is not None else None,
            "campaign": getattr(self.telemetry.tracer, "campaign", None),
        }

    def _run_shards(
        self, pending: list[ScenarioConfig], done: int, total: int
    ) -> tuple[list[dict], dict]:
        """Launch one process per non-empty shard; relay progress; supervise.

        Workers are tracked as **units** (a unique ``worker_id``, a shard
        index, a config subset, a private store) because a shard may be
        served by more than one process over a run's lifetime: when a unit
        dies mid-campaign — process exit, or heartbeat staleness when
        ``heartbeat_timeout_s`` is set — the coordinator diffs the unit's
        store against its config subset and, respawn budget permitting,
        re-partitions the unfinished remainder across as many fresh recovery
        units as there are surviving workers (each with its own store; a
        record already persisted, error records included, is never re-run).

        Returns ``(units, observed_cached)``: one dict per unit
        (``worker_id`` / ``shard_index`` / ``store_path`` / ``summary``,
        where a dead unit's summary is an ``{"error": ...}`` stub), and a
        ``scenario_id -> cached`` map rebuilt from the relayed progress
        messages — the accounting fallback for cells whose worker died
        between completing them and reporting its summary.
        """
        self.shard_dir.mkdir(parents=True, exist_ok=True)
        tracer, metrics = self.telemetry.tracer, self.telemetry.metrics
        ctx = multiprocessing.get_context()
        outbox = ctx.Queue()
        units: dict[int, dict] = {}  # worker_id -> unit
        next_worker_id = 0
        respawns_left = self.respawn_budget
        observed_cached: dict[str, bool] = {}

        def spawn(
            shard_index: int,
            configs: list[ScenarioConfig],
            store_path: Path,
            recovery_for: "int | None" = None,
        ) -> None:
            nonlocal next_worker_id
            worker_id = next_worker_id
            next_worker_id += 1
            process = ctx.Process(
                target=_shard_worker,
                args=(self._payload(shard_index, configs, worker_id, store_path), outbox),
                daemon=False,  # shard workers may pool further
            )
            process.start()
            units[worker_id] = {
                "worker_id": worker_id,
                "shard_index": shard_index,
                "configs": configs,
                "store_path": store_path,
                "process": process,
                "last_seen": time.monotonic(),
                "summary": None,
            }
            metrics.counter("dist.workers_spawned")
            tracer.counter("dist.workers_spawned")
            if recovery_for is not None:
                metrics.counter("dist.respawn")
                tracer.counter("dist.respawn", shard=shard_index)
                tracer.event(
                    "worker.respawn",
                    shard=shard_index,
                    worker_id=worker_id,
                    worker_pid=process.pid,
                    replaces_worker=recovery_for,
                    scenarios=len(configs),
                )
            else:
                tracer.event(
                    "worker.spawn",
                    shard=shard_index,
                    worker_id=worker_id,
                    worker_pid=process.pid,
                    scenarios=len(configs),
                )

        for shard_index in range(self.n_shards):
            shard_configs = partition_scenarios(pending, self.n_shards, shard_index)
            if shard_configs:
                spawn(shard_index, shard_configs, self.shard_store_path(shard_index))

        def handle(message) -> None:
            nonlocal done
            kind, worker_id = message[0], message[1]
            unit = units.get(worker_id)
            if unit is not None:
                unit["last_seen"] = time.monotonic()
            if kind == "progress":
                _, _, _, _, record, cached = message
                scenario_id = record.get("scenario_id")
                if scenario_id:
                    observed_cached[scenario_id] = bool(cached)
                done += 1
                self._notify(done, total, record, cached)
            elif unit is not None and kind == "done":
                unit["summary"] = message[2]
            elif unit is not None:  # "failed"
                unit["summary"] = {"error": message[2]}

        def handle_death(unit: dict, cause: str) -> None:
            """Account a dead unit and re-partition its unfinished remainder."""
            nonlocal respawns_left
            process = unit["process"]
            process.join()
            unit["summary"] = {
                "error": f"shard worker {unit['shard_index']} "
                f"(worker {unit['worker_id']}) {cause}"
            }
            metrics.counter("dist.worker_deaths")
            tracer.counter("dist.worker_deaths", shard=unit["shard_index"])
            # Diff the unit's store against its manifest subset: anything
            # already recorded — including error records, which must wait
            # for an explicit resume, not loop here — is finished.
            store_path = unit["store_path"]
            store = ResultStore(store_path) if store_path.exists() else None
            remaining = [
                c
                for c in unit["configs"]
                if store is None or store.get(c) is None
            ]
            if not remaining or respawns_left <= 0:
                if remaining:
                    tracer.event(
                        "worker.abandoned",
                        shard=unit["shard_index"],
                        worker_id=unit["worker_id"],
                        unfinished=len(remaining),
                    )
                return
            # Elastic re-partition: as many recovery units as there are
            # surviving workers (at least one), each with a private store so
            # no two live processes ever append to the same file.
            survivors = sum(
                1
                for other in units.values()
                if other is not unit
                and other["summary"] is None
                and other["process"].is_alive()
            )
            groups = min(max(1, survivors), len(remaining), respawns_left)
            for offset in range(groups):
                slice_configs = remaining[offset::groups]
                respawns_left -= 1
                spawn(
                    unit["shard_index"],
                    slice_configs,
                    self.shard_dir
                    / f"shard-{unit['shard_index']}-r{next_worker_id}.jsonl",
                    recovery_for=unit["worker_id"],
                )

        try:
            while any(unit["summary"] is None for unit in units.values()):
                try:
                    handle(outbox.get(timeout=0.2))
                    continue
                except queue_module.Empty:
                    pass
                now = time.monotonic()
                for unit in list(units.values()):
                    if unit["summary"] is not None:
                        continue
                    process = unit["process"]
                    if process.is_alive():
                        if (
                            self.heartbeat_timeout_s is not None
                            and now - unit["last_seen"] > self.heartbeat_timeout_s
                        ):
                            process.terminate()
                            process.join()
                            handle_death(
                                unit,
                                f"was silent for more than "
                                f"{self.heartbeat_timeout_s:g} s and was terminated",
                            )
                        continue
                    process.join()
                    # Drain messages the dead worker flushed before exiting.
                    try:
                        while unit["summary"] is None:
                            handle(outbox.get_nowait())
                    except queue_module.Empty:
                        pass
                    if unit["summary"] is None:
                        handle_death(unit, f"exited with code {process.exitcode}")
        finally:
            for unit in units.values():
                process = unit["process"]
                if process.is_alive():
                    process.terminate()
                process.join()
                tracer.event(
                    "worker.exit",
                    shard=unit["shard_index"],
                    worker_id=unit["worker_id"],
                    worker_pid=process.pid,
                    exitcode=process.exitcode,
                )
        return (
            [
                {
                    "worker_id": unit["worker_id"],
                    "shard_index": unit["shard_index"],
                    "store_path": unit["store_path"],
                    "summary": unit["summary"],
                }
                for unit in units.values()
            ],
            observed_cached,
        )
