"""The scenario component registries: supply / platform / capacitor / governor / workload.

Every dimension of a scenario is a registered *kind* plus plain-data
parameters (:class:`repro.registry.ComponentSpec`).  This module declares the
built-in kinds for the paper's two rigs and their idealised variants:

========== ====================================================================
registry    built-in kinds
========== ====================================================================
SUPPLIES    ``pv-array`` (Sections V-B/C/D: weather, seed, shadowing),
            ``controlled-voltage`` (Section V-A / Fig. 11 profile, or a
            constant programmed voltage), ``constant-power`` (the idealised
            Fig. 3 source), ``trace-file`` (a CSV trace driving any of the
            three supply models)
PLATFORMS   ``exynos5422`` (the calibrated ODROID-XU4; electrical-envelope
            parameters — operating window, reboot voltage/latency — are
            overridable for platform variants)
CAPACITORS  ``supercapacitor`` (capacitance, ESR, leakage, rated voltage,
            initial voltage)
GOVERNORS   every governor of :mod:`repro.governors` plus the named
            power-neutral parameter variants; tunable kinds accept
            :class:`~repro.core.parameters.ControllerParameters` overrides as
            spec parameters
WORKLOADS   ``table2-render``, ``fig7-frame``, ``synthetic``
========== ====================================================================

New kinds plug in with ``SUPPLIES.register("my-kind", factory, defaults=...)``
— sweeps, CLI listings and error messages pick them up automatically (see the
README's "Custom scenarios" section).

Supply factories receive the scenario duration as a ``duration_s`` keyword;
all other factories receive only their spec parameters.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping, Optional, Sequence

from ..core.governor import PowerNeutralGovernor
from ..core.parameters import (
    ControllerParameters,
    FIG6_PARAMETERS,
    FIG11_PARAMETERS,
    PAPER_TUNED_PARAMETERS,
)
from ..energy.irradiance import ShadowingEvent, WeatherCondition
from ..energy.profiles import (
    constant_power_profile,
    fig11_supply_profile,
    solar_irradiance_trace,
)
from ..energy.pv_array import paper_pv_array
from ..energy.supercapacitor import PAPER_BUFFER_CAPACITANCE_F, Supercapacitor
from ..energy.traces import IrradianceTrace, Trace
from ..registry import Registry
from ..sim.supplies import (
    ConstantPowerSupply,
    ControlledVoltageSupply,
    PVArraySupply,
    Supply,
)
from ..soc.exynos5422 import (
    build_exynos5422_platform,
    exynos5422_latency_model,
    exynos5422_performance_model,
    exynos5422_power_model,
    exynos5422_spec,
)
from ..soc.platform import SoCPlatform
from ..workloads.workload import (
    FIG7_FRAME,
    TABLE2_RENDER,
    SyntheticWorkload,
    Workload,
)

__all__ = [
    "SUPPLIES",
    "PLATFORMS",
    "CAPACITORS",
    "GOVERNORS",
    "WORKLOADS_REGISTRY",
    "shadowing_events",
]

SUPPLIES = Registry("supply")
PLATFORMS = Registry("platform")
CAPACITORS = Registry("capacitor")
GOVERNORS = Registry("governor")
WORKLOADS_REGISTRY = Registry("workload")


# ----------------------------------------------------------------------
# Supplies
# ----------------------------------------------------------------------
def shadowing_events(shadowing: Sequence) -> list[ShadowingEvent]:
    """Turn plain shadowing data (dicts or events) into simulation events."""
    events = []
    for item in shadowing or ():
        if isinstance(item, ShadowingEvent):
            events.append(item)
            continue
        data = dict(item)
        events.append(
            ShadowingEvent(
                start_s=float(data["start_s"]),
                duration_s=float(data["duration_s"]),
                attenuation=float(data.get("attenuation", 0.2)),
                ramp_s=float(data.get("ramp_s", 0.5)),
            )
        )
    return events


def _validate_pv_array(params: Mapping) -> None:
    WeatherCondition(params["weather"])  # raises on unknown preset
    shadowing_events(params["shadowing"])  # raises on malformed episodes


def _build_pv_array_supply(
    duration_s: float,
    weather: str = WeatherCondition.FULL_SUN.value,
    seed: int = 7,
    shadowing: Sequence = (),
) -> Supply:
    irradiance = solar_irradiance_trace(
        duration_s,
        weather=WeatherCondition(weather),
        seed=int(seed),
        shadowing_events=shadowing_events(shadowing),
    )
    return PVArraySupply(paper_pv_array(), irradiance)


SUPPLIES.register(
    "pv-array",
    _build_pv_array_supply,
    label="1340 cm² PV array (outdoor)",
    defaults={
        "weather": WeatherCondition.FULL_SUN.value,
        "seed": 7,
        "shadowing": (),
    },
    sim_defaults={"record_interval_s": 0.25, "max_step_s": 0.02},
    validate=_validate_pv_array,
)


def _validate_controlled_voltage(params: Mapping) -> None:
    if params["profile"] not in ("fig11", "constant"):
        raise ValueError(
            f"unknown controlled-voltage profile {params['profile']!r}; "
            "known: fig11, constant"
        )
    if params["current_limit_a"] <= 0:
        raise ValueError("current_limit_a must be positive")
    if params["voltage_v"] <= 0:
        raise ValueError("voltage_v must be positive")


def _build_controlled_voltage_supply(
    duration_s: float,
    profile: str = "fig11",
    voltage_v: float = 5.0,
    current_limit_a: float = 3.0,
) -> Supply:
    if profile == "fig11":
        trace = fig11_supply_profile(duration_s=duration_s)
    else:  # "constant"
        trace = Trace(
            times=[0.0, max(duration_s, 1e-9)],
            values=[voltage_v, voltage_v],
            name="controlled_supply",
            units="V",
        )
    return ControlledVoltageSupply(trace, current_limit_a=float(current_limit_a))


SUPPLIES.register(
    "controlled-voltage",
    _build_controlled_voltage_supply,
    label="controlled laboratory supply (Section V-A)",
    defaults={"profile": "fig11", "voltage_v": 5.0, "current_limit_a": 3.0},
    sim_defaults={"record_interval_s": 0.05, "max_step_s": 0.01},
    validate=_validate_controlled_voltage,
)


def _validate_constant_power(params: Mapping) -> None:
    if params["power_w"] < 0:
        raise ValueError("power_w must be non-negative")
    if params["voltage_limit"] <= 0:
        raise ValueError("voltage_limit must be positive")


def _build_constant_power_supply(
    duration_s: float,
    power_w: float = 3.0,
    voltage_limit: float = 6.5,
) -> Supply:
    profile = constant_power_profile(duration_s, float(power_w))
    return ConstantPowerSupply(profile, voltage_limit=float(voltage_limit))


SUPPLIES.register(
    "constant-power",
    _build_constant_power_supply,
    label="idealised constant-power source",
    defaults={"power_w": 3.0, "voltage_limit": 6.5},
    sim_defaults={"record_interval_s": 0.25, "max_step_s": 0.02},
    validate=_validate_constant_power,
)


def _validate_trace_file(params: Mapping) -> None:
    if not params["path"]:
        raise ValueError("trace-file supply needs a 'path' parameter")
    if params["signal"] not in ("irradiance", "voltage", "power"):
        raise ValueError(
            f"unknown trace-file signal {params['signal']!r}; "
            "known: irradiance, voltage, power"
        )
    if params["scale"] <= 0:
        raise ValueError("scale must be positive")


def _build_trace_file_supply(
    duration_s: float,
    path: Optional[str] = None,
    signal: str = "irradiance",
    scale: float = 1.0,
) -> Supply:
    """Drive one of the three supply models from a recorded CSV trace.

    Caveat: the scenario content hash covers the *path string*, not the file
    contents — editing the CSV in place and re-running against the same
    store cache-hits the stale results.  Version trace files by name (or run
    ``--fresh``) when the data changes.
    """
    trace = Trace.load_csv(path).scaled(float(scale))
    if signal == "irradiance":
        irradiance = IrradianceTrace(trace.times, trace.values)
        return PVArraySupply(paper_pv_array(), irradiance)
    if signal == "voltage":
        return ControlledVoltageSupply(trace)
    return ConstantPowerSupply(trace)


SUPPLIES.register(
    "trace-file",
    _build_trace_file_supply,
    label="recorded CSV trace",
    defaults={"path": None, "signal": "irradiance", "scale": 1.0},
    sim_defaults={"record_interval_s": 0.25, "max_step_s": 0.02},
    validate=_validate_trace_file,
)


# ----------------------------------------------------------------------
# Platforms
# ----------------------------------------------------------------------
def _build_exynos5422_variant(
    minimum_voltage: float = 4.1,
    maximum_voltage: float = 5.7,
    reboot_voltage: float = 4.6,
    reboot_latency_s: float = 8.0,
) -> SoCPlatform:
    spec = replace(
        exynos5422_spec(),
        minimum_voltage=float(minimum_voltage),
        maximum_voltage=float(maximum_voltage),
        reboot_voltage=float(reboot_voltage),
        reboot_latency_s=float(reboot_latency_s),
    )
    return SoCPlatform(
        spec=spec,
        power_model=exynos5422_power_model(),
        performance_model=exynos5422_performance_model(),
        latency_model=exynos5422_latency_model(),
    )


PLATFORMS.register(
    "exynos5422",
    _build_exynos5422_variant,
    label="ODROID-XU4 (Exynos5422)",
    defaults={
        "minimum_voltage": 4.1,
        "maximum_voltage": 5.7,
        "reboot_voltage": 4.6,
        "reboot_latency_s": 8.0,
    },
)

# Keep the canonical builder importable for callers that want the stock model.
build_default_platform = build_exynos5422_platform


# ----------------------------------------------------------------------
# Capacitors
# ----------------------------------------------------------------------
def _validate_supercapacitor(params: Mapping) -> None:
    iv = params["initial_voltage"]
    if iv is not None and not isinstance(iv, (int, float)) and iv != "open-circuit":
        raise ValueError(
            "initial_voltage must be a voltage, null (supply-appropriate default) "
            "or 'open-circuit'"
        )
    # Delegate the numeric validation to the component model itself.
    Supercapacitor(
        capacitance_f=float(params["capacitance_f"]),
        esr_ohm=float(params["esr_ohm"]),
        leakage_conductance_s=float(params["leakage_conductance_s"]),
        max_voltage=float(params["max_voltage"]),
    )


def _build_supercapacitor(
    capacitance_f: float = PAPER_BUFFER_CAPACITANCE_F,
    esr_ohm: float = 0.02,
    leakage_conductance_s: float = 1e-6,
    max_voltage: float = 10.0,
    initial_voltage=None,  # consumed by build_system, not by the component
) -> Supercapacitor:
    return Supercapacitor(
        capacitance_f=float(capacitance_f),
        esr_ohm=float(esr_ohm),
        leakage_conductance_s=float(leakage_conductance_s),
        max_voltage=float(max_voltage),
    )


CAPACITORS.register(
    "supercapacitor",
    _build_supercapacitor,
    label="buffer supercapacitor",
    defaults={
        "capacitance_f": PAPER_BUFFER_CAPACITANCE_F,
        "esr_ohm": 0.02,
        "leakage_conductance_s": 1e-6,
        "max_voltage": 10.0,
        "initial_voltage": None,
    },
    validate=_validate_supercapacitor,
)


# ----------------------------------------------------------------------
# Governors
# ----------------------------------------------------------------------
def _register_power_neutral(name: str, label: str, base: ControllerParameters) -> None:
    def build(overrides: Optional[Mapping] = None, **kwargs):
        # Registry builds pass overrides as keyword arguments; the PR-1
        # GOVERNOR_SPECS contract passed one mapping positionally.  Accept
        # both (keywords win on conflict).
        if overrides:
            kwargs = {**dict(overrides), **kwargs}
        params = base.with_overrides(**kwargs) if kwargs else base
        return PowerNeutralGovernor(params)

    # Governor overrides are validated when the governor is built (a worker
    # failure record), not when the config is constructed, so a campaign can
    # persist and report a bad cell instead of dying during expansion.
    GOVERNORS.register(name, build, label=label, tunable=True, open_params=True)


_register_power_neutral("power-neutral", "Proposed Approach", PAPER_TUNED_PARAMETERS)
_register_power_neutral("power-neutral-fig6", "Proposed (Fig. 6 params)", FIG6_PARAMETERS)
_register_power_neutral("power-neutral-fig11", "Proposed (Fig. 11 params)", FIG11_PARAMETERS)
_register_power_neutral(
    "power-neutral-dvfs-only",
    "Proposed (DVFS only)",
    PAPER_TUNED_PARAMETERS.with_overrides(use_hotplug=False),
)
_register_power_neutral(
    "power-neutral-hotplug-only",
    "Proposed (hot-plug only)",
    PAPER_TUNED_PARAMETERS.with_overrides(use_dvfs=False),
)


def _register_baseline_governors() -> None:
    from ..governors.linux import (
        ConservativeGovernor,
        InteractiveGovernor,
        OndemandGovernor,
        PerformanceGovernor,
        PowersaveGovernor,
    )
    from ..governors.single_core_dfs import SingleCoreDFSGovernor
    from ..governors.solartune import SolarTuneGovernor

    for name, label, factory in (
        ("performance", "Linux Performance", PerformanceGovernor),
        ("powersave", "Linux Powersave", PowersaveGovernor),
        ("ondemand", "Linux Ondemand", OndemandGovernor),
        ("conservative", "Linux Conservative", ConservativeGovernor),
        ("interactive", "Linux Interactive", InteractiveGovernor),
        ("single-core-dfs", "Single-core DFS [11]", SingleCoreDFSGovernor),
        ("solartune", "SolarTune-style [9]", SolarTuneGovernor),
    ):
        # Baselines take no parameters; `open_params` stays True so that the
        # "does not accept parameter overrides" error surfaces at build time
        # with its historical wording rather than as an unknown-parameter
        # error at config time.
        GOVERNORS.register(name, factory, label=label, tunable=False, open_params=True)


_register_baseline_governors()


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def _build_synthetic_workload(
    instructions_per_unit: float = 1e9, utilization: float = 1.0
) -> Workload:
    return SyntheticWorkload(
        instructions_per_unit=float(instructions_per_unit),
        utilization=float(utilization),
    )


WORKLOADS_REGISTRY.register(
    "table2-render", lambda: TABLE2_RENDER, label="Table II render", defaults={}
)
WORKLOADS_REGISTRY.register(
    "fig7-frame", lambda: FIG7_FRAME, label="Fig. 7 frame", defaults={}
)
WORKLOADS_REGISTRY.register(
    "synthetic",
    _build_synthetic_workload,
    label="synthetic fixed-cost workload",
    defaults={"instructions_per_unit": 1e9, "utilization": 1.0},
)
