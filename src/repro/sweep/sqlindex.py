"""Read-optimised SQLite index sidecar for :class:`~repro.sweep.store.ResultStore`.

The JSONL store is the source of truth — append-only, human-greppable,
mergeable — but answering *filtered* questions against it ("the ok records of
these 2 000 scenario ids", "how many timeouts per governor") means replaying
every line.  This module keeps a derived SQLite database next to the store
(``<store>.sqlite``) holding, per scenario id, the record's **byte offset and
length** in the JSONL plus its status, schema version and the searchable axis
columns (governor / supply / weather / seed / capacitance / duration /
workload / survived).  Queries run against the index and only the *matching*
lines are seek-loaded from the JSONL — a 100k-record store answers a
filtered query without parsing 100k lines.

The sidecar is purely derived state and maintains itself lazily:

* :meth:`SqliteIndex.ensure` compares the indexed byte count and mtime
  against the live JSONL.  An untouched file is served as-is; a file that
  *grew* (appends) has just its tail scanned; a file that shrank or was
  rewritten in place (compact, merge, ``--fresh``) triggers a full rebuild.
  Before trusting a tail scan the last indexed line is re-read and verified,
  so a rewrite that happens to grow the file cannot smuggle stale offsets
  through.
* Callers that seek-load records through the index verify each line's
  scenario id and fall back to :meth:`rebuild` on any mismatch — the JSONL
  always wins.

Deleting ``<store>.sqlite`` is always safe; the next query rebuilds it.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Mapping, Optional, Sequence

try:  # pragma: no cover - sqlite3 ships with CPython; guarded for exotic builds
    import sqlite3
except ImportError:  # pragma: no cover
    sqlite3 = None  # type: ignore[assignment]

from .. import faults
from ..obs.telemetry import DISABLED, Telemetry

__all__ = [
    "SQLITE_AVAILABLE",
    "SIDECAR_ERRORS",
    "FILTER_COLUMNS",
    "SqliteIndex",
    "sqlite_index_path",
]

#: Whether the interpreter can back stores with a SQLite sidecar at all.
SQLITE_AVAILABLE = sqlite3 is not None

#: What a sidecar operation may raise; callers catch these and fall back to
#: a linear scan of the JSONL (the sidecar is an accelerator, never a gate).
SIDECAR_ERRORS: tuple = (sqlite3.Error, OSError) if sqlite3 is not None else (OSError,)

#: Sidecar layout version (bumped on any schema change; mismatches rebuild).
_SQLITE_INDEX_VERSION = 1

#: The columns a store query may filter on (axis columns + record identity).
FILTER_COLUMNS: tuple[str, ...] = (
    "status",
    "schema_version",
    "governor",
    "supply",
    "weather",
    "seed",
    "capacitance_f",
    "duration_s",
    "workload",
    "survived",
)

_SCHEMA = (
    """
    CREATE TABLE IF NOT EXISTS meta (
        key   TEXT PRIMARY KEY,
        value TEXT
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS records (
        scenario_id    TEXT PRIMARY KEY,
        byte_offset    INTEGER NOT NULL,
        byte_length    INTEGER NOT NULL,
        status         TEXT,
        schema_version INTEGER,
        governor       TEXT,
        supply         TEXT,
        weather        TEXT,
        seed           INTEGER,
        capacitance_f  REAL,
        duration_s     REAL,
        workload       TEXT,
        survived       INTEGER
    )
    """,
    "CREATE INDEX IF NOT EXISTS records_status ON records(status)",
    "CREATE INDEX IF NOT EXISTS records_governor ON records(governor)",
)

#: Scenario-id lists longer than this are chunked into several IN queries
#: (SQLite's default host-parameter limit is 999).
_IN_CHUNK = 500


def sqlite_index_path(store_path: "str | os.PathLike") -> Path:
    """Where the SQLite sidecar lives, relative to a result store."""
    return Path(str(store_path) + ".sqlite")


def _component_kind(value) -> Optional[str]:
    """The ``kind`` of a component field — composed dict or v1 flat string."""
    if isinstance(value, Mapping):
        kind = value.get("kind")
        return str(kind) if kind is not None else None
    if isinstance(value, str):
        return value
    return None


def _axis_columns(record: Mapping) -> dict:
    """Best-effort extraction of the searchable axis columns from a record.

    Tolerant of both schema v2 (composed components) and v1 (flat keys);
    anything unreadable is stored as NULL rather than rejected — the sidecar
    must index *every* record the JSONL holds, however old.
    """
    config = record.get("config")
    if not isinstance(config, Mapping):
        config = {}
    supply = config.get("supply")
    supply = supply if isinstance(supply, Mapping) else {}
    capacitor = config.get("capacitor")
    capacitor = capacitor if isinstance(capacitor, Mapping) else {}
    workload = config.get("workload", config.get("workload"))
    summary = record.get("summary")
    summary = summary if isinstance(summary, Mapping) else {}

    def _float(value) -> Optional[float]:
        try:
            return None if value is None else float(value)
        except (TypeError, ValueError):
            return None

    def _int(value) -> Optional[int]:
        try:
            return None if value is None else int(value)
        except (TypeError, ValueError):
            return None

    survived = summary.get("survived")
    return {
        "governor": _component_kind(config.get("governor")),
        "supply": _component_kind(config.get("supply")) or ("pv-array" if config else None),
        "weather": supply.get("weather", config.get("weather")),
        "seed": _int(supply.get("seed", config.get("seed"))),
        "capacitance_f": _float(
            capacitor.get("capacitance_f", config.get("capacitance_f"))
        ),
        "duration_s": _float(config.get("duration_s")),
        "workload": _component_kind(workload),
        "survived": None if survived is None else int(bool(survived)),
    }


class SqliteIndex:
    """The derived SQLite sidecar of one JSONL result store.

    Thread-safe (one lock around every public method, one shared connection
    with ``check_same_thread=False``) because the campaign service queries it
    from executor threads while its worker thread appends to the store.
    """

    def __init__(
        self,
        store_path: "str | os.PathLike",
        db_path: "str | os.PathLike | None" = None,
        telemetry: Optional[Telemetry] = None,
    ):
        if sqlite3 is None:  # pragma: no cover
            raise RuntimeError("sqlite3 is not available in this interpreter")
        self.store_path = Path(store_path)
        self.db_path = Path(db_path) if db_path is not None else sqlite_index_path(store_path)
        self.telemetry = telemetry if telemetry is not None else DISABLED
        self._lock = threading.RLock()
        self._conn: Optional["sqlite3.Connection"] = None

    # ------------------------------------------------------------------
    # Connection / schema
    # ------------------------------------------------------------------
    def _connect(self) -> "sqlite3.Connection":
        if self._conn is None:
            self.db_path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(self.db_path, check_same_thread=False)
            try:
                for statement in _SCHEMA:
                    conn.execute(statement)
                conn.commit()
            except sqlite3.DatabaseError:
                # Corrupt/foreign file at the sidecar path: replace it.
                conn.close()
                self.db_path.unlink(missing_ok=True)
                conn = sqlite3.connect(self.db_path, check_same_thread=False)
                for statement in _SCHEMA:
                    conn.execute(statement)
                conn.commit()
            self._conn = conn
        return self._conn

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def _meta(self, conn) -> dict:
        return {key: value for key, value in conn.execute("SELECT key, value FROM meta")}

    def _write_meta(self, conn, data_bytes: int, mtime_ns: int) -> None:
        conn.executemany(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            [
                ("version", str(_SQLITE_INDEX_VERSION)),
                ("data_bytes", str(int(data_bytes))),
                ("mtime_ns", str(int(mtime_ns))),
            ],
        )

    # ------------------------------------------------------------------
    # Freshness
    # ------------------------------------------------------------------
    def ensure(self) -> str:
        """Bring the sidecar up to date with the JSONL; returns the action.

        One of ``"fresh"`` (already current), ``"tail"`` (appended records
        scanned incrementally), ``"rebuild"`` (file shrank / was rewritten /
        sidecar was missing or from another layout version) or ``"empty"``
        (no store file).
        """
        injector = faults.active()
        if injector is not None:
            # An "io"-typed rule here raises an OSError, which is in
            # SIDECAR_ERRORS: queries degrade to the linear scan fallback —
            # the self-healing path this site exists to exercise.
            injector.fire(
                "sqlindex.refresh", telemetry=self.telemetry, store=str(self.store_path)
            )
        with self._lock:
            conn = self._connect()
            if not self.store_path.exists():
                if conn.execute("SELECT COUNT(*) FROM records").fetchone()[0]:
                    conn.execute("DELETE FROM records")
                self._write_meta(conn, 0, 0)
                conn.commit()
                return "empty"
            stat = self.store_path.stat()
            size, mtime_ns = stat.st_size, stat.st_mtime_ns
            meta = self._meta(conn)
            try:
                version = int(meta.get("version", -1))
                indexed = int(meta.get("data_bytes", -1))
                indexed_mtime = int(meta.get("mtime_ns", -1))
            except ValueError:
                version, indexed, indexed_mtime = -1, -1, -1
            if version != _SQLITE_INDEX_VERSION or indexed < 0 or indexed > size:
                return self._rebuild_locked(conn)
            if indexed == size:
                if indexed_mtime == mtime_ns:
                    return "fresh"
                # Same length, different mtime: rewritten in place.
                return self._rebuild_locked(conn)
            # The file grew.  Only an append-only history keeps the already-
            # indexed offsets valid; verify the last indexed line survived.
            if not self._tail_anchor_valid(conn, indexed):
                return self._rebuild_locked(conn)
            timer = self.telemetry.metrics.timer("store.sqlite_tail_s")
            with timer:
                self._scan(conn, start=indexed)
            self.telemetry.metrics.counter("store.sqlite_tail")
            return "tail"

    def _tail_anchor_valid(self, conn, indexed: int) -> bool:
        """Does the last indexed record still sit where the sidecar says?"""
        row = conn.execute(
            "SELECT scenario_id, byte_offset, byte_length FROM records "
            "ORDER BY byte_offset DESC LIMIT 1"
        ).fetchone()
        if row is None:
            return indexed == 0
        scenario_id, offset, length = row
        if offset + length > indexed:
            return False
        try:
            with self.store_path.open("rb") as fh:
                fh.seek(offset)
                line = fh.read(length)
            record = json.loads(line.decode("utf-8", errors="replace"))
        except (OSError, json.JSONDecodeError, ValueError):
            return False
        return isinstance(record, dict) and record.get("scenario_id") == scenario_id

    def rebuild(self) -> str:
        """Discard every row and re-scan the whole JSONL."""
        with self._lock:
            return self._rebuild_locked(self._connect())

    def _rebuild_locked(self, conn) -> str:
        timer = self.telemetry.metrics.timer("store.sqlite_build_s")
        with timer:
            conn.execute("DELETE FROM records")
            self._scan(conn, start=0)
        self.telemetry.metrics.counter("store.sqlite_build")
        return "rebuild"

    def _scan(self, conn, start: int) -> None:
        """Index complete lines from byte ``start``; later lines supersede.

        Only newline-terminated lines are ingested — a torn trailing line
        (a writer mid-append) is left for the next scan, exactly like the
        trace reader's tail handling.  ``data_bytes`` records the end of the
        last *complete* line, so the torn tail is retried once it completes.
        """
        data_bytes = start
        rows: list[tuple] = []
        with self.store_path.open("rb") as fh:
            fh.seek(start)
            while True:
                line = fh.readline()
                if not line or not line.endswith(b"\n"):
                    break
                offset = data_bytes
                data_bytes += len(line)
                try:
                    record = json.loads(line.decode("utf-8", errors="replace"))
                except json.JSONDecodeError:
                    continue
                if not isinstance(record, dict):
                    continue
                scenario_id = record.get("scenario_id")
                if not scenario_id:
                    continue
                axes = _axis_columns(record)
                rows.append(
                    (
                        str(scenario_id),
                        offset,
                        len(line),
                        record.get("status"),
                        int(record.get("schema_version", 1)),
                        axes["governor"],
                        axes["supply"],
                        axes["weather"],
                        axes["seed"],
                        axes["capacitance_f"],
                        axes["duration_s"],
                        axes["workload"],
                        axes["survived"],
                    )
                )
        if rows:
            conn.executemany(
                "INSERT OR REPLACE INTO records (scenario_id, byte_offset, byte_length, "
                "status, schema_version, governor, supply, weather, seed, capacitance_f, "
                "duration_s, workload, survived) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )
        mtime_ns = self.store_path.stat().st_mtime_ns if self.store_path.exists() else 0
        self._write_meta(conn, data_bytes, mtime_ns)
        conn.commit()

    # ------------------------------------------------------------------
    # Queries (index-only: callers seek-load matching lines themselves)
    # ------------------------------------------------------------------
    @staticmethod
    def _where(filters: Mapping) -> tuple[str, list]:
        clauses: list[str] = []
        params: list = []
        for column, value in filters.items():
            if column not in FILTER_COLUMNS:
                raise ValueError(
                    f"unknown store filter {column!r}; known: {', '.join(FILTER_COLUMNS)}"
                )
            if isinstance(value, (list, tuple, set, frozenset)):
                values = list(value)
                if not values:
                    clauses.append("0")
                    continue
                clauses.append(f"{column} IN ({', '.join('?' * len(values))})")
                params.extend(values)
            else:
                clauses.append(f"{column} = ?")
                params.append(value)
        return (" AND ".join(clauses) or "1"), params

    def query(
        self,
        filters: Optional[Mapping] = None,
        scenario_ids: Optional[Sequence[str]] = None,
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> list[tuple[str, int, int]]:
        """Matching ``(scenario_id, byte_offset, byte_length)`` rows.

        Rows come back in byte-offset order (sequential reads for the
        caller).  ``scenario_ids`` restricts to an explicit id set — an
        *empty* sequence matches nothing, ``None`` means unrestricted.
        """
        with self._lock:
            self.ensure()
            conn = self._connect()
            where, params = self._where(filters or {})
            if scenario_ids is None:
                sql = (
                    "SELECT scenario_id, byte_offset, byte_length FROM records "
                    f"WHERE {where} ORDER BY byte_offset"
                )
                rows = [tuple(r) for r in conn.execute(sql, params)]
            else:
                ids = [str(s) for s in scenario_ids]
                rows = []
                for chunk_start in range(0, len(ids), _IN_CHUNK):
                    chunk = ids[chunk_start : chunk_start + _IN_CHUNK]
                    sql = (
                        "SELECT scenario_id, byte_offset, byte_length FROM records "
                        f"WHERE {where} AND scenario_id IN "
                        f"({', '.join('?' * len(chunk))})"
                    )
                    rows.extend(tuple(r) for r in conn.execute(sql, params + chunk))
                rows.sort(key=lambda r: r[1])
            if offset:
                rows = rows[int(offset) :]
            if limit is not None:
                rows = rows[: int(limit)]
            return rows

    def count(
        self, filters: Optional[Mapping] = None, scenario_ids: Optional[Sequence[str]] = None
    ) -> int:
        """Matching-record count, answered from the index alone."""
        with self._lock:
            self.ensure()
            conn = self._connect()
            where, params = self._where(filters or {})
            if scenario_ids is None:
                sql = f"SELECT COUNT(*) FROM records WHERE {where}"
                return int(conn.execute(sql, params).fetchone()[0])
            total = 0
            ids = [str(s) for s in scenario_ids]
            for chunk_start in range(0, len(ids), _IN_CHUNK):
                chunk = ids[chunk_start : chunk_start + _IN_CHUNK]
                sql = (
                    f"SELECT COUNT(*) FROM records WHERE {where} AND scenario_id IN "
                    f"({', '.join('?' * len(chunk))})"
                )
                total += int(conn.execute(sql, params + chunk).fetchone()[0])
            return total

    def _grouped_counts(self, column: str) -> dict:
        with self._lock:
            self.ensure()
            conn = self._connect()
            return {
                key: int(n)
                for key, n in conn.execute(
                    f"SELECT {column}, COUNT(*) FROM records GROUP BY {column} ORDER BY {column}"
                )
            }

    def status_counts(self) -> dict:
        """Record count per status (``ok`` / ``error`` / ``timeout`` / ...)."""
        return self._grouped_counts("status")

    def version_counts(self) -> dict:
        """Record count per config schema version."""
        return self._grouped_counts("schema_version")

    def records_beyond(self, data_bytes: int) -> int:
        """How many indexed records start at/after a byte offset (tail size)."""
        with self._lock:
            self.ensure()
            return int(
                self._connect()
                .execute(
                    "SELECT COUNT(*) FROM records WHERE byte_offset >= ?", (int(data_bytes),)
                )
                .fetchone()[0]
            )
