"""One construction path: resolve a :class:`ScenarioConfig` into a live system.

``build_system`` is the single place where plain-data scenario configs become
a ready :class:`~repro.sim.simulator.EnergyHarvestingSimulation`: every sweep
worker, experiment wrapper (:func:`repro.experiments.scenarios.run_pv_experiment`,
:func:`~repro.experiments.scenarios.run_controlled_supply_experiment`), bench
and example assembles the supply, platform, capacitor, governor and workload
through the component registries of :mod:`repro.sweep.components`.

Callers holding pre-built component *instances* (e.g. an already-constructed
governor under test) pass them as keyword overrides; everything else resolves
from the config's component specs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Union

from ..energy.profiles import PV_TARGET_VOLTAGE
from ..energy.supercapacitor import Supercapacitor
from ..governors.base import Governor
from ..registry import ComponentSpec
from ..sim.result import SimulationResult
from ..sim.simulator import EnergyHarvestingSimulation, SimulationConfig
from ..sim.supplies import Supply
from ..soc.platform import SoCPlatform
from ..workloads.workload import Workload
from .components import CAPACITORS, GOVERNORS, PLATFORMS, SUPPLIES, WORKLOADS_REGISTRY
from .spec import ScenarioConfig

__all__ = [
    "BuiltSystem",
    "build_governor",
    "build_supply",
    "build_platform",
    "build_capacitor",
    "build_workload",
    "build_system",
    "run_system",
]

#: Sentinel distinguishing "not passed" from an explicit ``None`` override.
_UNSET = object()

SpecLike = Union[ComponentSpec, Mapping, str]


def build_governor(spec: "SpecLike | ScenarioConfig") -> Governor:
    """Instantiate the governor a spec (or a whole scenario config) names."""
    if isinstance(spec, ScenarioConfig):
        spec = spec.governor
    spec = GOVERNORS.canonical(spec)
    entry = GOVERNORS.get(spec.kind)
    overrides = spec.params_dict()
    if overrides and not entry.metadata.get("tunable", False):
        raise ValueError(f"governor {spec.kind!r} does not accept parameter overrides")
    return entry.factory(**overrides)


def build_supply(spec: SpecLike, duration_s: float) -> Supply:
    """Instantiate a supply for a scenario of the given duration."""
    return SUPPLIES.build(spec, duration_s=float(duration_s))


def build_platform(spec: SpecLike) -> SoCPlatform:
    return PLATFORMS.build(spec)


def build_capacitor(spec: SpecLike) -> Supercapacitor:
    return CAPACITORS.build(spec)


def build_workload(spec: SpecLike) -> Workload:
    return WORKLOADS_REGISTRY.build(spec)


def _resolve_initial_voltage(config: ScenarioConfig, supply: Supply) -> Optional[float]:
    """The starting capacitor voltage a config implies.

    The capacitor spec's ``initial_voltage`` wins when set: a number is taken
    verbatim, ``"open-circuit"`` forces the supply's unloaded voltage.  When
    unset (``None``), the pv-array rig starts at the calibrated MPP voltage
    (matching the paper's outdoor runs, which begin with a charged buffer);
    other supplies start at their open-circuit/programmed voltage.
    """
    declared = config.capacitor.get("initial_voltage")
    if declared == "open-circuit":
        return None
    if declared is not None:
        return float(declared)
    if config.supply.kind == "pv-array" and not supply.is_voltage_source:
        return PV_TARGET_VOLTAGE
    return None


@dataclass
class BuiltSystem:
    """A resolved scenario: the simulation plus its reporting workload."""

    config: ScenarioConfig
    simulation: EnergyHarvestingSimulation
    workload: Workload

    def run(self) -> SimulationResult:
        return self.simulation.run()


def build_system(
    config: "ScenarioConfig | Mapping",
    *,
    governor: Optional[Governor] = None,
    platform: Optional[SoCPlatform] = None,
    supply: Optional[Supply] = None,
    capacitor: Optional[Supercapacitor] = None,
    workload: Optional[Workload] = None,
    initial_voltage=_UNSET,
    record_interval_s: Optional[float] = None,
    max_step_s: Optional[float] = None,
    fast: bool = True,
    **sim_overrides,
) -> BuiltSystem:
    """Resolve a scenario config into a ready simulation.

    Parameters
    ----------
    config:
        A :class:`ScenarioConfig` or any dict it deserialises from (composed
        schema v2 or PR-1-era flat v1).
    governor / platform / supply / capacitor / workload:
        Pre-built component instances overriding the config's specs (used by
        the thin experiment wrappers, which receive live objects).
    initial_voltage:
        Overrides the config-derived starting voltage (``None`` means "use
        the supply's open-circuit voltage").
    record_interval_s / max_step_s:
        Override the supply kind's registered simulation step defaults.
    fast:
        Run the simulator's fast engine (the default for every campaign and
        experiment).  ``fast=False`` selects the exact reference path: the
        straight-line simulator loop *and* per-call Lambert-W supply solves
        (the ``exact`` flag of the supply built here is set to ``not fast``;
        a pre-built ``supply=`` instance is never mutated).  The choice
        is an execution detail — it is not part of the scenario identity, so
        stored campaign results remain comparable across both engines (the
        fast path's accuracy loss is bounded well inside the metric
        tolerances the parity suite enforces).
    sim_overrides:
        Any further :class:`~repro.sim.simulator.SimulationConfig` fields.
    """
    if not isinstance(config, ScenarioConfig):
        config = ScenarioConfig.from_dict(config)

    if supply is None:
        supply = build_supply(config.supply, config.duration_s)
        # Supplies built here follow the engine choice symmetrically; a
        # caller-passed supply instance keeps whatever exact setting the
        # caller gave it.
        if hasattr(supply, "exact"):
            supply.exact = not fast
    if platform is None:
        platform = build_platform(config.platform)
    if governor is None:
        governor = build_governor(config.governor)
    if capacitor is None:
        capacitor = build_capacitor(config.capacitor)
    if workload is None:
        workload = build_workload(config.workload)

    sim_defaults = dict(SUPPLIES.get(config.supply.kind).metadata.get("sim_defaults", {}))
    if record_interval_s is not None:
        sim_defaults["record_interval_s"] = float(record_interval_s)
    if max_step_s is not None:
        sim_defaults["max_step_s"] = float(max_step_s)

    if initial_voltage is _UNSET:
        initial_voltage = _resolve_initial_voltage(config, supply)

    sim_config = SimulationConfig(
        duration_s=config.duration_s,
        initial_voltage=initial_voltage,
        monitor_quantised=config.monitor_quantised,
        utilization=workload.utilization,
        fast=fast,
        **sim_defaults,
        **sim_overrides,
    )
    simulation = EnergyHarvestingSimulation(
        platform=platform,
        governor=governor,
        supply=supply,
        capacitor=capacitor,
        config=sim_config,
    )
    return BuiltSystem(config=config, simulation=simulation, workload=workload)


def run_system(config: "ScenarioConfig | Mapping", **overrides) -> SimulationResult:
    """Build a scenario's system and run it to completion."""
    return build_system(config, **overrides).run()
