"""Shared experiment scenarios.

The paper's evaluation re-uses a small number of experimental setups: the
ODROID-XU4 coupled to the 1340 cm² PV array through the 47 mF buffer, driven
either by real sunlight (various weather conditions) or by a controlled
laboratory supply.  This module builds those setups so the examples, the CLI
and every benchmark construct them the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.governor import PowerNeutralGovernor
from ..core.parameters import ControllerParameters, PAPER_TUNED_PARAMETERS
from ..energy.irradiance import (
    ClearSkyModel,
    IrradianceGenerator,
    ShadowingEvent,
    WeatherCondition,
    step_irradiance,
)
from ..energy.pv_array import PVArray, paper_pv_array
from ..energy.supercapacitor import PAPER_BUFFER_CAPACITANCE_F, Supercapacitor
from ..energy.traces import IrradianceTrace, Trace
from ..governors.base import Governor
from ..sim.result import SimulationResult
from ..sim.simulator import EnergyHarvestingSimulation, SimulationConfig
from ..sim.supplies import ControlledVoltageSupply, PVArraySupply, Supply
from ..soc.exynos5422 import build_exynos5422_platform
from ..soc.platform import SoCPlatform

__all__ = [
    "PV_TARGET_VOLTAGE",
    "PaperSystem",
    "solar_irradiance_trace",
    "fig11_supply_profile",
    "run_pv_experiment",
    "run_controlled_supply_experiment",
]

#: The calibrated maximum-power-point voltage used as V_target (Section V-B).
PV_TARGET_VOLTAGE = 5.3

#: The wall-clock start of the paper's outdoor runs (10:30 local time).
PAPER_TEST_START_S = 10.5 * 3600.0


@dataclass
class PaperSystem:
    """The complete experimental system of Fig. 8, ready to simulate.

    Attributes
    ----------
    platform:
        The calibrated ODROID-XU4 model.
    pv_array:
        The 1340 cm² monocrystalline array.
    capacitor:
        The buffer capacitor (47 mF by default).
    governor:
        The governor under test (the proposed power-neutral governor by
        default).
    """

    platform: SoCPlatform = field(default_factory=build_exynos5422_platform)
    pv_array: PVArray = field(default_factory=paper_pv_array)
    capacitor: Supercapacitor = field(
        default_factory=lambda: Supercapacitor(PAPER_BUFFER_CAPACITANCE_F)
    )
    governor: Governor = field(default_factory=lambda: PowerNeutralGovernor(PAPER_TUNED_PARAMETERS))

    def simulation(
        self,
        supply: Supply,
        duration_s: float,
        **config_overrides,
    ) -> EnergyHarvestingSimulation:
        """Assemble a simulation of this system under the given supply."""
        config = SimulationConfig(duration_s=duration_s, **config_overrides)
        return EnergyHarvestingSimulation(
            platform=self.platform,
            governor=self.governor,
            supply=supply,
            capacitor=self.capacitor,
            config=config,
        )


def solar_irradiance_trace(
    duration_s: float,
    weather: WeatherCondition = WeatherCondition.FULL_SUN,
    start_time_of_day_s: float = PAPER_TEST_START_S,
    dt: float = 1.0,
    seed: int = 7,
    shadowing_events: Sequence[ShadowingEvent] = (),
) -> IrradianceTrace:
    """A synthetic outdoor irradiance trace aligned with the paper's test window.

    Times in the returned trace start at 0 (the start of the experiment); the
    diurnal envelope is phased so that t=0 corresponds to
    ``start_time_of_day_s`` seconds after local midnight (10:30 by default,
    matching Fig. 12/14's x-axes).
    """
    generator = IrradianceGenerator(ClearSkyModel(), seed=seed)
    trace = generator.generate(
        t_start=start_time_of_day_s,
        duration=duration_s,
        dt=dt,
        weather=weather,
        shadowing_events=shadowing_events,
    )
    return IrradianceTrace(trace.times - start_time_of_day_s, trace.values, name="irradiance")


def fig11_supply_profile(duration_s: float = 170.0, dt: float = 0.05) -> Trace:
    """The controlled variable-voltage profile used in Section V-A / Fig. 11.

    A slowly wandering supply voltage between roughly 4.4 V and 5.6 V with a
    small ripple ("A") and one sudden deep drop ("B"), matching the character
    of the published trace.
    """
    times = np.arange(0.0, duration_s + 0.5 * dt, dt)
    base = 5.1 + 0.45 * np.sin(2.0 * np.pi * times / 90.0)
    ripple = 0.08 * np.sin(2.0 * np.pi * times / 7.0)
    voltage = base + ripple
    # Sudden reduction at t ~= 100 s (point 'B' in Fig. 11), recovering at 120 s.
    drop = (times >= 100.0) & (times < 120.0)
    voltage = np.where(drop, voltage - 0.9, voltage)
    voltage = np.clip(voltage, 4.25, 5.65)
    return Trace(times=times, values=voltage, name="controlled_supply", units="V")


def run_pv_experiment(
    governor: Governor,
    duration_s: float,
    weather: WeatherCondition = WeatherCondition.FULL_SUN,
    seed: int = 7,
    capacitance_f: float = PAPER_BUFFER_CAPACITANCE_F,
    initial_voltage: Optional[float] = PV_TARGET_VOLTAGE,
    platform: Optional[SoCPlatform] = None,
    pv_array: Optional[PVArray] = None,
    irradiance: Optional[IrradianceTrace] = None,
    monitor_quantised: bool = True,
    record_interval_s: float = 0.25,
    max_step_s: float = 0.02,
) -> SimulationResult:
    """Run one outdoor (PV-array) experiment and return its result.

    This is the common harness behind Fig. 12, Fig. 13, Fig. 14, Table II and
    the ablation benches: same array, same buffer, same weather model — only
    the governor (and optionally the weather/duration) changes.
    """
    platform = platform if platform is not None else build_exynos5422_platform()
    pv = pv_array if pv_array is not None else paper_pv_array()
    if irradiance is None:
        irradiance = solar_irradiance_trace(duration_s, weather=weather, seed=seed)
    supply = PVArraySupply(pv, irradiance)
    system = PaperSystem(
        platform=platform,
        pv_array=pv,
        capacitor=Supercapacitor(capacitance_f),
        governor=governor,
    )
    sim = system.simulation(
        supply,
        duration_s=duration_s,
        initial_voltage=initial_voltage,
        monitor_quantised=monitor_quantised,
        record_interval_s=record_interval_s,
        max_step_s=max_step_s,
    )
    return sim.run()


def run_controlled_supply_experiment(
    governor: Governor,
    voltage_profile: Optional[Trace] = None,
    duration_s: Optional[float] = None,
    platform: Optional[SoCPlatform] = None,
    record_interval_s: float = 0.05,
) -> SimulationResult:
    """Run the Section V-A verification against a controlled variable supply."""
    profile = voltage_profile if voltage_profile is not None else fig11_supply_profile()
    if duration_s is None:
        duration_s = profile.duration
    platform = platform if platform is not None else build_exynos5422_platform()
    supply = ControlledVoltageSupply(profile)
    system = PaperSystem(platform=platform, governor=governor)
    sim = system.simulation(
        supply,
        duration_s=duration_s,
        record_interval_s=record_interval_s,
        max_step_s=0.01,
    )
    return sim.run()
