"""Shared experiment scenarios.

The paper's evaluation re-uses a small number of experimental setups: the
ODROID-XU4 coupled to the 1340 cm² PV array through the 47 mF buffer, driven
either by real sunlight (various weather conditions) or by a controlled
laboratory supply.  Since PR 2 both setups resolve through the *single*
construction path of :func:`repro.sweep.build.build_system`;
:func:`run_pv_experiment` and :func:`run_controlled_supply_experiment` are
thin wrappers that translate their historical signatures (live governor /
platform / trace objects) into a scenario config plus component overrides, so
the examples, the CLI and every benchmark construct systems exactly the way a
sweep worker does.

The pure profile builders (:func:`solar_irradiance_trace`,
:func:`fig11_supply_profile`, :data:`PV_TARGET_VOLTAGE`) now live in
:mod:`repro.energy.profiles` and are re-exported here for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.governor import PowerNeutralGovernor
from ..core.parameters import PAPER_TUNED_PARAMETERS
from ..energy.irradiance import WeatherCondition
from ..energy.profiles import (  # noqa: F401  (re-exported for compatibility)
    PAPER_TEST_START_S,
    PV_TARGET_VOLTAGE,
    fig11_supply_profile,
    solar_irradiance_trace,
)
from ..energy.pv_array import PVArray, paper_pv_array
from ..energy.supercapacitor import PAPER_BUFFER_CAPACITANCE_F, Supercapacitor
from ..energy.traces import IrradianceTrace, Trace
from ..governors.base import Governor
from ..sim.result import SimulationResult
from ..sim.simulator import EnergyHarvestingSimulation, SimulationConfig
from ..sim.supplies import ControlledVoltageSupply, PVArraySupply, Supply
from ..soc.exynos5422 import build_exynos5422_platform
from ..soc.platform import SoCPlatform

__all__ = [
    "PV_TARGET_VOLTAGE",
    "PAPER_TEST_START_S",
    "PaperSystem",
    "solar_irradiance_trace",
    "fig11_supply_profile",
    "run_pv_experiment",
    "run_controlled_supply_experiment",
]


@dataclass
class PaperSystem:
    """The complete experimental system of Fig. 8, ready to simulate.

    Attributes
    ----------
    platform:
        The calibrated ODROID-XU4 model.
    pv_array:
        The 1340 cm² monocrystalline array.
    capacitor:
        The buffer capacitor (47 mF by default).
    governor:
        The governor under test (the proposed power-neutral governor by
        default).
    """

    platform: SoCPlatform = field(default_factory=build_exynos5422_platform)
    pv_array: PVArray = field(default_factory=paper_pv_array)
    capacitor: Supercapacitor = field(
        default_factory=lambda: Supercapacitor(PAPER_BUFFER_CAPACITANCE_F)
    )
    governor: Governor = field(default_factory=lambda: PowerNeutralGovernor(PAPER_TUNED_PARAMETERS))

    def simulation(
        self,
        supply: Supply,
        duration_s: float,
        **config_overrides,
    ) -> EnergyHarvestingSimulation:
        """Assemble a simulation of this system under the given supply."""
        config = SimulationConfig(duration_s=duration_s, **config_overrides)
        return EnergyHarvestingSimulation(
            platform=self.platform,
            governor=self.governor,
            supply=supply,
            capacitor=self.capacitor,
            config=config,
        )


def run_pv_experiment(
    governor: Governor,
    duration_s: float,
    weather: WeatherCondition = WeatherCondition.FULL_SUN,
    seed: int = 7,
    capacitance_f: float = PAPER_BUFFER_CAPACITANCE_F,
    initial_voltage: Optional[float] = PV_TARGET_VOLTAGE,
    platform: Optional[SoCPlatform] = None,
    pv_array: Optional[PVArray] = None,
    irradiance: Optional[IrradianceTrace] = None,
    monitor_quantised: bool = True,
    record_interval_s: float = 0.25,
    max_step_s: float = 0.02,
) -> SimulationResult:
    """Run one outdoor (PV-array) experiment and return its result.

    This is the common harness behind Fig. 12, Fig. 13, Fig. 14, Table II and
    the ablation benches: same array, same buffer, same weather model — only
    the governor (and optionally the weather/duration) changes.  A thin
    wrapper over :func:`repro.sweep.build.build_system`: the live ``governor``
    (and any custom ``platform`` / ``pv_array`` / ``irradiance``) ride along
    as component overrides on a pv-array scenario config.
    """
    # Imported lazily: repro.sweep builds on the energy/soc/sim layers this
    # module sits next to, and the wrappers are leaf call sites.
    from ..sweep.build import build_system
    from ..sweep.spec import ScenarioConfig

    config = ScenarioConfig(
        # Placeholder kind — the live `governor` instance below overrides it.
        governor="power-neutral",
        weather=weather,
        seed=seed,
        capacitance_f=capacitance_f,
        duration_s=duration_s,
        monitor_quantised=monitor_quantised,
    )
    supply: Optional[Supply] = None
    if pv_array is not None or irradiance is not None:
        pv = pv_array if pv_array is not None else paper_pv_array()
        if irradiance is None:
            irradiance = solar_irradiance_trace(duration_s, weather=weather, seed=seed)
        supply = PVArraySupply(pv, irradiance)
    built = build_system(
        config,
        governor=governor,
        platform=platform,
        supply=supply,
        initial_voltage=initial_voltage,
        record_interval_s=record_interval_s,
        max_step_s=max_step_s,
    )
    return built.run()


def run_controlled_supply_experiment(
    governor: Governor,
    voltage_profile: Optional[Trace] = None,
    duration_s: Optional[float] = None,
    platform: Optional[SoCPlatform] = None,
    record_interval_s: float = 0.05,
) -> SimulationResult:
    """Run the Section V-A verification against a controlled variable supply.

    A thin wrapper over :func:`repro.sweep.build.build_system` on a
    ``controlled-voltage`` scenario config; a custom ``voltage_profile``
    rides along as a supply override.
    """
    from ..sweep.build import build_system
    from ..sweep.spec import ScenarioConfig

    supply: Optional[Supply] = None
    if voltage_profile is not None:
        supply = ControlledVoltageSupply(voltage_profile)
        if duration_s is None:
            duration_s = voltage_profile.duration
    elif duration_s is None:
        duration_s = fig11_supply_profile().duration
    config = ScenarioConfig(
        governor="power-neutral",  # placeholder; the live instance overrides it
        supply={"kind": "controlled-voltage", "profile": "fig11"},
        duration_s=duration_s,
    )
    built = build_system(
        config,
        governor=governor,
        platform=platform,
        supply=supply,
        record_interval_s=record_interval_s,
        max_step_s=0.01,
    )
    return built.run()
