"""Experiment harness: shared scenarios plus one function per paper figure/table."""

from .scenarios import (
    PV_TARGET_VOLTAGE,
    PaperSystem,
    fig11_supply_profile,
    run_controlled_supply_experiment,
    run_pv_experiment,
    solar_irradiance_trace,
)
from .characterisation import (
    fig1_solar_day,
    fig3_concept,
    fig4_power_vs_frequency,
    fig6_parameter_selection,
    fig6_shadowing_simulation,
    fig7_performance_vs_power,
    fig10_transition_latency,
    table1_buffer_capacitance,
)
from .evaluation import (
    ablation_capacitance,
    ablation_control_modes,
    ablation_threshold_quantisation,
    default_table2_governors,
    fig11_controlled_supply,
    fig12_voltage_stability,
    fig13_iv_and_operating_voltage,
    fig14_power_tracking,
    fig15_overhead,
    table2_governor_comparison,
)

__all__ = [
    "PV_TARGET_VOLTAGE",
    "PaperSystem",
    "fig11_supply_profile",
    "run_controlled_supply_experiment",
    "run_pv_experiment",
    "solar_irradiance_trace",
    "fig1_solar_day",
    "fig3_concept",
    "fig4_power_vs_frequency",
    "fig6_parameter_selection",
    "fig6_shadowing_simulation",
    "fig7_performance_vs_power",
    "fig10_transition_latency",
    "table1_buffer_capacitance",
    "ablation_capacitance",
    "ablation_control_modes",
    "ablation_threshold_quantisation",
    "default_table2_governors",
    "fig11_controlled_supply",
    "fig12_voltage_stability",
    "fig13_iv_and_operating_voltage",
    "fig14_power_tracking",
    "fig15_overhead",
    "table2_governor_comparison",
]
