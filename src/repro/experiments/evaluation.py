"""Reproductions of the paper's evaluation section (Figs. 11-15, Table II) and
the ablation studies DESIGN.md calls out.

Every function runs the relevant closed-loop experiment on the calibrated
system models and returns plain rows/series dictionaries plus the paper's
reference values, so the benchmark harness can print a side-by-side view and
the tests can assert the qualitative outcomes (who wins, by roughly what
factor, where the crossovers fall).

Durations are parameters: the defaults are shortened relative to the paper's
wall-clock tests (an hour of simulated time costs tens of seconds of CPU) but
preserve the relevant dynamics; the benchmarks state which duration they ran.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..analysis.energy_accounting import energy_account, power_tracking_error, table2_row
from ..analysis.mppt import mppt_report, operating_voltage_histogram
from ..analysis.overhead import overhead_report
from ..analysis.stability import voltage_stability_report
from ..core.governor import PowerNeutralGovernor
from ..core.parameters import (
    ControllerParameters,
    FIG11_PARAMETERS,
    PAPER_TUNED_PARAMETERS,
)
from ..energy.irradiance import WeatherCondition
from ..energy.pv_array import paper_pv_array
from ..energy.supercapacitor import PAPER_BUFFER_CAPACITANCE_F
from ..governors.base import Governor
from ..governors.linux import (
    ConservativeGovernor,
    InteractiveGovernor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)
from ..governors.single_core_dfs import SingleCoreDFSGovernor
from ..governors.solartune import SolarTuneGovernor
from ..soc.exynos5422 import build_exynos5422_platform
from ..soc.opp import GHZ
from ..workloads.workload import TABLE2_RENDER
from .scenarios import (
    PV_TARGET_VOLTAGE,
    fig11_supply_profile,
    run_controlled_supply_experiment,
    run_pv_experiment,
)

__all__ = [
    "fig11_controlled_supply",
    "fig12_voltage_stability",
    "fig13_iv_and_operating_voltage",
    "fig14_power_tracking",
    "TABLE2_PAPER_REFERENCE",
    "table2_governor_comparison",
    "fig15_overhead",
    "ablation_capacitance",
    "ablation_control_modes",
    "ablation_threshold_quantisation",
    "default_table2_governors",
]


# ----------------------------------------------------------------------
# Fig. 11 — response to a controlled variable supply
# ----------------------------------------------------------------------
def fig11_controlled_supply(
    parameters: ControllerParameters = FIG11_PARAMETERS,
    duration_s: float = 170.0,
) -> dict:
    """Verification against a programmed laboratory supply (Section V-A)."""
    profile = fig11_supply_profile(duration_s=duration_s)
    # No PV maximum power point exists for a laboratory supply, so the
    # thresholds are free to roam the full operating window.
    governor = PowerNeutralGovernor(parameters, target_voltage=None)
    result = run_controlled_supply_experiment(governor, voltage_profile=profile)

    # Correlation between the supply voltage and the selected performance level
    # (frequency x online cores) — the paper's qualitative claim is that
    # performance follows the supply.
    perf_level = result.frequency_hz / GHZ * (result.n_little + result.n_big)
    if np.std(perf_level) > 0 and np.std(result.supply_voltage) > 0:
        correlation = float(np.corrcoef(result.supply_voltage, perf_level)[0, 1])
    else:
        correlation = 0.0

    return {
        "series": {
            "times": result.times,
            "supply_voltage": result.supply_voltage,
            "frequency_mhz": result.frequency_hz / 1e6,
            "n_little": result.n_little,
            "n_total": result.n_little + result.n_big,
        },
        "dvfs_transitions": result.dvfs_transition_count,
        "hotplug_transitions": result.hotplug_transition_count,
        "voltage_performance_correlation": correlation,
        "brownouts": result.brownout_count,
        "parameters": {
            "v_width_mv": 1e3 * parameters.v_width,
            "v_q_mv": 1e3 * parameters.v_q,
            "alpha": parameters.alpha,
            "beta": parameters.beta,
        },
        "paper_reference": {
            "claim": "performance modulates with the supply; core scaling rarer than DVFS",
        },
    }


# ----------------------------------------------------------------------
# Fig. 12 — voltage stability under full sun
# ----------------------------------------------------------------------
def fig12_voltage_stability(
    duration_s: float = 1800.0,
    seed: int = 7,
    parameters: ControllerParameters = PAPER_TUNED_PARAMETERS,
) -> dict:
    """V_C stability around the MPP target under full-sun harvesting."""
    governor = PowerNeutralGovernor(parameters)
    result = run_pv_experiment(
        governor, duration_s=duration_s, weather=WeatherCondition.FULL_SUN, seed=seed
    )
    report = voltage_stability_report(result, target_voltage=PV_TARGET_VOLTAGE)
    return {
        "series": {"times": result.times, "voltage": result.supply_voltage},
        "stability": report.as_dict(),
        "fraction_within_5pct": report.fraction_within,
        "target_voltage_v": PV_TARGET_VOLTAGE,
        "brownouts": result.brownout_count,
        "duration_s": duration_s,
        "paper_reference": {"fraction_within_5pct": 0.933, "target_voltage_v": 5.3},
        "_result": result,
    }


# ----------------------------------------------------------------------
# Fig. 13 — PV I-V curve and time spent at each operating voltage
# ----------------------------------------------------------------------
def fig13_iv_and_operating_voltage(
    duration_s: float = 1800.0,
    seed: int = 7,
    reuse_result=None,
) -> dict:
    """IV characteristics of the array and the operating-voltage histogram."""
    array = paper_pv_array()
    voltages, currents = array.iv_curve(points=80)
    powers = voltages * currents
    mpp = array.maximum_power_point()

    if reuse_result is None:
        governor = PowerNeutralGovernor()
        result = run_pv_experiment(
            governor, duration_s=duration_s, weather=WeatherCondition.FULL_SUN, seed=seed
        )
    else:
        result = reuse_result
    edges, fractions = operating_voltage_histogram(result, bin_width_v=0.25, v_max=7.0)
    report = mppt_report(result, array)

    iv_rows = [
        {"voltage_v": float(v), "current_a": float(i), "power_w": float(p)}
        for v, i, p in zip(voltages, currents, powers)
    ]
    histogram_rows = [
        {"voltage_bin_v": float(0.5 * (edges[i] + edges[i + 1])), "time_fraction": float(fractions[i])}
        for i in range(len(fractions))
        if fractions[i] > 0
    ]
    return {
        "iv_rows": iv_rows,
        "histogram_rows": histogram_rows,
        "mpp": {"voltage_v": mpp.voltage, "current_a": mpp.current, "power_w": mpp.power},
        "mppt": report.as_dict(),
        "paper_reference": {
            "mpp_voltage_v": 5.3,
            "claim": "operating-voltage histogram concentrates at the MPP voltage",
        },
    }


# ----------------------------------------------------------------------
# Fig. 14 — available vs consumed power over the day
# ----------------------------------------------------------------------
def fig14_power_tracking(
    duration_s: float = 1800.0,
    seed: int = 7,
    weather: WeatherCondition = WeatherCondition.FULL_SUN,
    reuse_result=None,
) -> dict:
    """Available (estimated) vs consumed power — the power-neutrality claim."""
    if reuse_result is None:
        governor = PowerNeutralGovernor()
        result = run_pv_experiment(governor, duration_s=duration_s, weather=weather, seed=seed)
    else:
        result = reuse_result
    account = energy_account(result)
    tracking = power_tracking_error(result)
    return {
        "series": {
            "times": result.times,
            "available_power_w": result.available_power,
            "consumed_power_w": result.consumed_power,
        },
        "energy": account.as_dict(),
        "tracking": tracking,
        "paper_reference": {
            "claim": "consumed power closely tracks available power without exceeding it",
        },
        "_result": result,
    }


# ----------------------------------------------------------------------
# Table II — comparison with the Linux governors
# ----------------------------------------------------------------------
#: The paper's published Table II rows (60-minute outdoor test), shared by the
#: CLI, the benches and the examples so the reference numbers live in one place.
TABLE2_PAPER_REFERENCE: dict = {
    "Linux Conservative": {"renders_per_min": 1.0127, "lifetime": "00:05", "instructions_b": 24.0},
    "Linux Powersave": {"renders_per_min": 0.1456, "lifetime": "60:00", "instructions_b": 2485.6},
    "Proposed Approach": {"renders_per_min": 0.2460, "lifetime": "60:00", "instructions_b": 4200.4},
    "improvement_vs_powersave": 0.69,
}


def default_table2_governors() -> dict[str, Callable[[], Governor]]:
    """Factories for the schemes compared in (and around) Table II."""
    return {
        "Linux Performance": PerformanceGovernor,
        "Linux Ondemand": OndemandGovernor,
        "Linux Interactive": InteractiveGovernor,
        "Linux Conservative": ConservativeGovernor,
        "Linux Powersave": PowersaveGovernor,
        "Single-core DFS [11]": SingleCoreDFSGovernor,
        "SolarTune-style [9]": SolarTuneGovernor,
        "Proposed Approach": lambda: PowerNeutralGovernor(PAPER_TUNED_PARAMETERS),
    }


def table2_governor_comparison(
    duration_s: float = 900.0,
    seed: int = 11,
    weather: WeatherCondition = WeatherCondition.FULL_SUN,
    governors: Optional[dict[str, Callable[[], Governor]]] = None,
) -> dict:
    """Run every scheme on the same harvest trace and build Table II.

    The paper's test ran for 60 minutes under sunlight strong enough that the
    powersave governor (and the proposed approach) could operate throughout;
    the default weather preset is therefore full sun.  The duration is a
    parameter — the shape of the comparison (which schemes die, who wins) is
    already established within the first few minutes.
    """
    factories = governors if governors is not None else default_table2_governors()
    rows = []
    results = {}
    for label, factory in factories.items():
        result = run_pv_experiment(
            factory(), duration_s=duration_s, weather=weather, seed=seed
        )
        results[label] = result
        rows.append(table2_row(result, TABLE2_RENDER, scheme=label).as_dict())

    by_scheme = {row["scheme"]: row for row in rows}
    proposed = by_scheme.get("Proposed Approach")
    powersave = by_scheme.get("Linux Powersave")
    improvement = None
    if proposed and powersave and powersave["instructions_billions"] > 0:
        improvement = (
            proposed["instructions_billions"] / powersave["instructions_billions"] - 1.0
        )
    return {
        "rows": rows,
        "duration_s": duration_s,
        "instruction_improvement_vs_powersave": improvement,
        "paper_reference": TABLE2_PAPER_REFERENCE,
        "_results": results,
    }


# ----------------------------------------------------------------------
# Fig. 15 — overhead of the proposed approach
# ----------------------------------------------------------------------
def fig15_overhead(duration_s: float = 900.0, seed: int = 7) -> dict:
    """CPU-time and monitoring-power overhead of the proposed approach."""
    platform = build_exynos5422_platform()
    governor = PowerNeutralGovernor()
    result = run_pv_experiment(
        governor,
        duration_s=duration_s,
        weather=WeatherCondition.FULL_SUN,
        seed=seed,
        platform=platform,
    )
    report = overhead_report(result, platform)
    return {
        "overhead": report.as_dict(),
        "cpu_overhead_percent": 100.0 * report.cpu_overhead_fraction,
        "interrupts": result.interrupt_count,
        "paper_reference": {
            "cpu_overhead_percent": 0.104,
            "monitor_power_mw": 1.61,
            "monitor_percent_of_min_power": 0.82,
        },
    }


# ----------------------------------------------------------------------
# Ablations (DESIGN.md §5)
# ----------------------------------------------------------------------
def ablation_capacitance(
    capacitances_f: Sequence[float] = (4.7e-3, 15.4e-3, 47e-3, 141e-3, 470e-3),
    duration_s: float = 300.0,
    seed: int = 5,
) -> dict:
    """Sweep the buffer capacitance and measure stability / survival."""
    rows = []
    for c in capacitances_f:
        governor = PowerNeutralGovernor()
        result = run_pv_experiment(
            governor,
            duration_s=duration_s,
            weather=WeatherCondition.PARTIAL_SUN,
            seed=seed,
            capacitance_f=c,
        )
        report = voltage_stability_report(result, target_voltage=PV_TARGET_VOLTAGE)
        rows.append(
            {
                "capacitance_mf": 1e3 * c,
                "fraction_within_5pct": report.fraction_within,
                "brownouts": result.brownout_count,
                "instructions_g": result.total_instructions / 1e9,
            }
        )
    return {
        "rows": rows,
        "paper_reference": {"chosen_mf": 47.0, "minimum_required_mf": 15.4},
    }


def ablation_control_modes(duration_s: float = 600.0, seed: int = 9) -> dict:
    """Compare DVFS-only, hot-plug-only and combined control."""
    modes = {
        "DVFS only": PAPER_TUNED_PARAMETERS.with_overrides(use_hotplug=False),
        "Hot-plug only": PAPER_TUNED_PARAMETERS.with_overrides(use_dvfs=False),
        "DVFS + hot-plug (proposed)": PAPER_TUNED_PARAMETERS,
    }
    rows = []
    for label, params in modes.items():
        governor = PowerNeutralGovernor(params)
        result = run_pv_experiment(
            governor, duration_s=duration_s, weather=WeatherCondition.PARTIAL_SUN, seed=seed
        )
        report = voltage_stability_report(result, target_voltage=PV_TARGET_VOLTAGE)
        rows.append(
            {
                "mode": label,
                "fraction_within_5pct": report.fraction_within,
                "instructions_g": result.total_instructions / 1e9,
                "brownouts": result.brownout_count,
                "transitions": result.transition_count,
            }
        )
    return {"rows": rows, "paper_reference": {"claim": "combined control is the proposed design"}}


def ablation_threshold_quantisation(duration_s: float = 600.0, seed: int = 13) -> dict:
    """Ideal (continuous) thresholds vs MCP4131-quantised thresholds."""
    rows = []
    for label, quantised in (("ideal thresholds", False), ("MCP4131-quantised", True)):
        governor = PowerNeutralGovernor()
        result = run_pv_experiment(
            governor,
            duration_s=duration_s,
            weather=WeatherCondition.FULL_SUN,
            seed=seed,
            monitor_quantised=quantised,
        )
        report = voltage_stability_report(result, target_voltage=PV_TARGET_VOLTAGE)
        rows.append(
            {
                "monitor": label,
                "fraction_within_5pct": report.fraction_within,
                "interrupts": result.interrupt_count,
                "instructions_g": result.total_instructions / 1e9,
            }
        )
    return {"rows": rows, "paper_reference": {"claim": "7-bit quantisation is sufficient"}}
