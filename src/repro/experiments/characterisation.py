"""Reproductions of the paper's characterisation figures (Figs. 1-10, Table I).

Each function regenerates the data behind one figure or table of the paper's
modelling/characterisation sections and returns it as plain rows/series
dictionaries; the benchmark harness prints them, and the tests assert the
qualitative properties the paper's narrative relies on (who wins, monotone
trends, crossover locations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.capacitor_sizing import table1 as _table1_rows
from ..core.governor import PowerNeutralGovernor
from ..core.parameters import ControllerParameters, FIG6_PARAMETERS
from ..core.tuning import TuningScenario, grid_search
from ..energy.irradiance import (
    IrradianceGenerator,
    ShadowingEvent,
    WeatherCondition,
    ramped_shadow_irradiance,
    sinusoidal_irradiance,
    step_irradiance,
)
from ..energy.pv_array import fig1_small_cell, paper_pv_array
from ..energy.supercapacitor import PAPER_BUFFER_CAPACITANCE_F, Supercapacitor
from ..energy.traces import PowerTrace
from ..governors.static import StaticGovernor
from ..sim.circuit import simulate_node
from ..sim.simulator import EnergyHarvestingSimulation, SimulationConfig
from ..sim.supplies import PVArraySupply
from ..soc.cores import CoreConfig
from ..soc.exynos5422 import (
    build_exynos5422_platform,
    exynos5422_latency_model,
    exynos5422_opp_table,
    exynos5422_performance_model,
    exynos5422_power_model,
)
from ..soc.opp import GHZ, OperatingPoint
from .scenarios import PV_TARGET_VOLTAGE, solar_irradiance_trace

__all__ = [
    "fig1_solar_day",
    "fig3_concept",
    "fig4_power_vs_frequency",
    "fig6_shadowing_simulation",
    "fig6_parameter_selection",
    "fig7_performance_vs_power",
    "fig10_transition_latency",
    "table1_buffer_capacitance",
]


# ----------------------------------------------------------------------
# Fig. 1 — daily power output of a 250 cm² cell
# ----------------------------------------------------------------------
def fig1_solar_day(dt_s: float = 10.0, seed: int = 3) -> dict:
    """Power output of the 250 cm² cell over a day (macro + micro variability)."""
    cell = fig1_small_cell()
    generator = IrradianceGenerator(seed=seed)
    irradiance = generator.generate_day(weather=WeatherCondition.FULL_SUN, dt=dt_s)
    power = np.array([cell.power_at_mpp(g) if g > 0 else 0.0 for g in irradiance.values])
    trace = PowerTrace(irradiance.times, power, name="cell_power")

    values = trace.values
    hours = trace.times / 3600.0
    # Micro variability: short-term drops relative to a 10-minute rolling maximum.
    window = max(int(600.0 / dt_s), 1)
    rolling_max = np.array([values[max(0, i - window): i + 1].max() for i in range(len(values))])
    daylight = rolling_max > 0.05
    micro_drop = np.zeros_like(values)
    micro_drop[daylight] = 1.0 - values[daylight] / rolling_max[daylight]
    return {
        "series": {"hours": hours, "power_w": values},
        "peak_power_w": float(values.max()),
        "energy_wh": trace.energy_joules() / 3600.0,
        "macro_variability": {
            "sunrise_h": float(hours[np.argmax(values > 0.02)]),
            "peak_h": float(hours[int(np.argmax(values))]),
        },
        "micro_variability": {
            "max_short_term_drop": float(micro_drop.max()),
            "fraction_daylight_with_drops": float(np.mean(micro_drop[daylight] > 0.2)) if daylight.any() else 0.0,
        },
        "paper_reference": {"peak_power_w": 1.0},
    }


# ----------------------------------------------------------------------
# Fig. 3 — concept: transient input with and without performance scaling
# ----------------------------------------------------------------------
def fig3_concept(
    capacitance_f: float = PAPER_BUFFER_CAPACITANCE_F,
    duration_s: float = 8.0,
) -> dict:
    """V_C under a transient (sinusoidal) harvest, with and without scaling.

    The "without" system holds a fixed mid-range operating point and rides on
    the capacitor alone; the "with" system runs the power-neutral governor.
    The paper's point is that the tiny capacitor alone only delays the
    undervoltage, whereas performance scaling avoids it entirely.
    """
    # Trough chosen so the harvest stays above the platform's minimum-OPP
    # power (≈1.8 W): graceful scaling can then sustain operation where the
    # static system cannot.
    irradiance = sinusoidal_irradiance(
        mean_w_m2=660.0, amplitude_w_m2=290.0, period_s=4.0, duration=duration_s, dt=0.01
    )
    array = paper_pv_array()
    platform_static = build_exynos5422_platform()
    static_opp = OperatingPoint(CoreConfig(4, 1), 1.1 * GHZ)
    static_power = platform_static.power_model.power(static_opp)
    min_voltage = platform_static.spec.minimum_voltage

    # Without control: fixed load power on the bare node.
    supply = PVArraySupply(array, irradiance)
    node = simulate_node(
        supply=supply,
        capacitor=Supercapacitor(capacitance_f),
        load_power=lambda t, v: static_power if v >= min_voltage else 0.0,
        duration_s=duration_s,
        initial_voltage=PV_TARGET_VOLTAGE,
    )
    time_without = node.first_time_below(min_voltage)

    # With the proposed control.
    governor = PowerNeutralGovernor()
    sim = EnergyHarvestingSimulation(
        platform=build_exynos5422_platform(),
        governor=governor,
        supply=PVArraySupply(array, irradiance),
        capacitor=Supercapacitor(capacitance_f),
        config=SimulationConfig(
            duration_s=duration_s, initial_voltage=PV_TARGET_VOLTAGE, record_interval_s=0.02
        ),
    )
    controlled = sim.run()

    return {
        "without_control": {
            "times": node.times,
            "voltage": node.voltage,
            "first_undervoltage_s": time_without,
        },
        "with_control": {
            "times": controlled.times,
            "voltage": controlled.supply_voltage,
            "min_voltage_v": float(controlled.supply_voltage.min()),
            "brownouts": controlled.brownout_count,
        },
        "minimum_operating_voltage": min_voltage,
        "paper_reference": {
            "claim": "scaling avoids hibernation where a small capacitor alone cannot"
        },
    }


# ----------------------------------------------------------------------
# Fig. 4 — board power vs frequency per core configuration
# ----------------------------------------------------------------------
def fig4_power_vs_frequency() -> dict:
    """Board power at each (core configuration, frequency) point."""
    power_model = exynos5422_power_model()
    table = exynos5422_opp_table()
    rows = []
    for config in table.configs:
        for f in table.frequencies:
            rows.append(
                {
                    "configuration": str(config),
                    "frequency_ghz": f / GHZ,
                    "board_power_w": power_model.power_of(config, f),
                }
            )
    powers = [r["board_power_w"] for r in rows]
    return {
        "rows": rows,
        "min_power_w": min(powers),
        "max_power_w": max(powers),
        "paper_reference": {"min_power_w": 1.8, "max_power_w": 7.0},
    }


# ----------------------------------------------------------------------
# Fig. 6 — closed-loop behaviour under sudden shadowing + parameter selection
# ----------------------------------------------------------------------
def fig6_shadowing_simulation(
    parameters: ControllerParameters = FIG6_PARAMETERS,
    duration_s: float = 10.0,
) -> dict:
    """Closed-loop response to a period of sudden shadowing (Fig. 6).

    Returns the trajectories with and without the proposed control scheme; the
    "without" system keeps a static mid-range OPP and undervolts during the
    shadow, the controlled system scales down and stays above V_min.
    """
    # The shadow drops the harvest to ~2.2 W — below every static OPP the
    # paper would pick for useful performance, but still above the lowest
    # OPP, so graceful scaling survives it.  The edges ramp over half a
    # second, as the measured dip in the paper's Fig. 6 does.
    irradiance = ramped_shadow_irradiance(
        high_w_m2=1000.0,
        low_w_m2=450.0,
        shadow_start=3.0,
        shadow_end=7.0,
        duration=duration_s,
        ramp_s=0.5,
        dt=0.02,
    )
    array = paper_pv_array()

    # With the proposed controller.
    controlled_sim = EnergyHarvestingSimulation(
        platform=build_exynos5422_platform(),
        governor=PowerNeutralGovernor(parameters),
        supply=PVArraySupply(array, irradiance),
        capacitor=Supercapacitor(PAPER_BUFFER_CAPACITANCE_F),
        config=SimulationConfig(duration_s=duration_s, initial_voltage=5.3, record_interval_s=0.02),
    )
    controlled = controlled_sim.run()

    # Without: static governor at a demanding OPP.
    static_opp = OperatingPoint(CoreConfig(4, 2), 1.2 * GHZ)
    static_sim = EnergyHarvestingSimulation(
        platform=build_exynos5422_platform(initial_opp=static_opp),
        governor=StaticGovernor(static_opp),
        supply=PVArraySupply(array, irradiance),
        capacitor=Supercapacitor(PAPER_BUFFER_CAPACITANCE_F),
        config=SimulationConfig(duration_s=duration_s, initial_voltage=5.3, record_interval_s=0.02),
    )
    static = static_sim.run()

    vmin = build_exynos5422_platform().spec.minimum_voltage
    return {
        "with_control": {
            "times": controlled.times,
            "voltage": controlled.supply_voltage,
            "frequency_ghz": controlled.frequency_hz / GHZ,
            "n_little": controlled.n_little,
            "n_big": controlled.n_big,
            "min_voltage_v": float(controlled.supply_voltage.min()),
            "brownouts": controlled.brownout_count,
        },
        "without_control": {
            "times": static.times,
            "voltage": static.supply_voltage,
            "min_voltage_v": float(static.supply_voltage.min()),
            "brownouts": static.brownout_count,
        },
        "minimum_operating_voltage": vmin,
        "parameters": {
            "v_width_mv": 1e3 * parameters.v_width,
            "v_q_mv": 1e3 * parameters.v_q,
            "alpha": parameters.alpha,
            "beta": parameters.beta,
        },
        "paper_reference": {
            "claim": "with control V_C stays above V_min during the shadow; without it falls below"
        },
    }


def fig6_parameter_selection(
    duration_s: float = 20.0,
    v_width_values: Sequence[float] = (0.10, 0.144, 0.25),
    v_q_values: Sequence[float] = (0.03, 0.0479, 0.10),
    alpha_values: Sequence[float] = (0.12,),
    beta_values: Sequence[float] = (0.479,),
) -> dict:
    """A reduced version of the Section III parameter sweep.

    The full Matlab study swept all four parameters; the default grid here
    keeps the α/β values fixed at the paper's optimum and sweeps V_width and
    V_q around it, confirming that the paper's tuned values sit at (or very
    near) the top of the ranking.
    """
    scenario = TuningScenario(platform_factory=build_exynos5422_platform, duration_s=duration_s)
    results = grid_search(scenario, v_width_values, v_q_values, alpha_values, beta_values)
    rows = [r.as_dict() for r in results]
    return {
        "rows": rows,
        "best": rows[0] if rows else None,
        "paper_reference": {
            "v_width_mv": 144.0,
            "v_q_mv": 47.9,
            "alpha": 0.120,
            "beta": 0.479,
        },
    }


# ----------------------------------------------------------------------
# Fig. 7 — ray-trace performance vs board power
# ----------------------------------------------------------------------
def fig7_performance_vs_power() -> dict:
    """smallpt 5-spp frame rate against board power for every OPP."""
    power_model = exynos5422_power_model()
    perf_model = exynos5422_performance_model()
    table = exynos5422_opp_table()
    rows = []
    for config in table.configs:
        for f in table.frequencies:
            opp = OperatingPoint(config, f)
            rows.append(
                {
                    "configuration": str(config),
                    "frequency_ghz": f / GHZ,
                    "board_power_w": power_model.power(opp),
                    "fps": perf_model.fps(opp),
                }
            )
    little_only = [r for r in rows if "A15" not in r["configuration"]]
    big_little = [r for r in rows if "A15" in r["configuration"]]
    return {
        "rows": rows,
        "max_fps_little_only": max(r["fps"] for r in little_only),
        "max_fps_overall": max(r["fps"] for r in rows),
        "max_power_w": max(r["board_power_w"] for r in rows),
        "paper_reference": {
            "max_fps_little_only": 0.065,
            "max_fps_overall": 0.25,
        },
        "big_little_rows": big_little,
    }


# ----------------------------------------------------------------------
# Fig. 10 — DVFS and hot-plug latencies
# ----------------------------------------------------------------------
def fig10_transition_latency() -> dict:
    """Hot-plug latency per core transition and DVFS latency per step."""
    latency = exynos5422_latency_model()
    ladder = exynos5422_opp_table().frequencies

    hotplug_rows = []
    for frequency_ghz in (0.2, 0.8, 1.4):
        f = frequency_ghz * GHZ
        configs = [
            CoreConfig(1, 0), CoreConfig(2, 0), CoreConfig(3, 0), CoreConfig(4, 0),
            CoreConfig(4, 1), CoreConfig(4, 2), CoreConfig(4, 3), CoreConfig(4, 4),
        ]
        for from_cfg, to_cfg in zip(configs[:-1], configs[1:]):
            hotplug_rows.append(
                {
                    "transition": f"{from_cfg.total}->{to_cfg.total} cores",
                    "frequency_ghz": frequency_ghz,
                    "latency_ms": 1e3 * latency.hotplug_latency(from_cfg, to_cfg, f),
                }
            )

    dvfs_rows = []
    for config in (CoreConfig(1, 0), CoreConfig(4, 0), CoreConfig(4, 1), CoreConfig(4, 4)):
        for from_ghz, to_ghz in ((0.4, 0.2), (1.0, 0.8), (1.4, 1.2), (0.2, 0.4), (0.8, 1.0), (1.2, 1.4)):
            dvfs_rows.append(
                {
                    "configuration": str(config),
                    "transition_ghz": f"{from_ghz}->{to_ghz}",
                    "latency_ms": 1e3 * latency.dvfs_latency(from_ghz * GHZ, to_ghz * GHZ, config),
                }
            )

    hot_low = [r["latency_ms"] for r in hotplug_rows if r["frequency_ghz"] == 0.2]
    hot_high = [r["latency_ms"] for r in hotplug_rows if r["frequency_ghz"] == 1.4]
    return {
        "hotplug_rows": hotplug_rows,
        "dvfs_rows": dvfs_rows,
        "hotplug_latency_at_200mhz_ms": float(np.mean(hot_low)),
        "hotplug_latency_at_1400mhz_ms": float(np.mean(hot_high)),
        "max_dvfs_latency_ms": max(r["latency_ms"] for r in dvfs_rows),
        "paper_reference": {
            "hotplug_range_ms": (10.0, 40.0),
            "dvfs_range_ms": (1.0, 3.0),
        },
    }


# ----------------------------------------------------------------------
# Table I — worst-case transition cost and required buffer capacitance
# ----------------------------------------------------------------------
def table1_buffer_capacitance() -> dict:
    """Transition time, charge and required capacitance for both orderings."""
    platform = build_exynos5422_platform()
    rows = _table1_rows(platform)
    by_scenario = {row["scenario"]: row for row in rows}
    freq_first = by_scenario["(a) Frequency, Core"]
    cores_first = by_scenario["(b) Core, Frequency"]
    return {
        "rows": rows,
        "advantage_time": freq_first["transition_time_ms"] / cores_first["transition_time_ms"],
        "advantage_capacitance": freq_first["required_capacitance_mf"]
        / cores_first["required_capacitance_mf"],
        "chosen_component_mf": 47.0,
        "paper_reference": {
            "(a)": {"time_ms": 345.42, "charge_c": 0.1299, "capacitance_mf": 84.2},
            "(b)": {"time_ms": 63.21, "charge_c": 0.0461, "capacitance_mf": 15.4},
        },
    }
