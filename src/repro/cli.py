"""Command-line entry point: run the paper's experiments from a terminal.

Examples
--------
Run the governor against a synthetic full-sun harvest for ten minutes::

    repro-pns run --governor power-neutral --duration 600 --weather full_sun

Reproduce Table II (shortened)::

    repro-pns table2 --duration 900

Reproduce a characterisation figure::

    repro-pns figure fig4
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from .analysis.reporting import format_kv, format_series, format_table
from .core.governor import PowerNeutralGovernor
from .core.parameters import PAPER_TUNED_PARAMETERS
from .energy.irradiance import WeatherCondition
from .experiments import characterisation, evaluation
from .experiments.scenarios import run_pv_experiment
from .governors.base import Governor
from .governors.linux import (
    ConservativeGovernor,
    InteractiveGovernor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)
from .governors.single_core_dfs import SingleCoreDFSGovernor
from .governors.solartune import SolarTuneGovernor

__all__ = ["main", "build_parser", "GOVERNOR_FACTORIES"]

#: Governors selectable from the command line.
GOVERNOR_FACTORIES: dict[str, Callable[[], Governor]] = {
    "power-neutral": lambda: PowerNeutralGovernor(PAPER_TUNED_PARAMETERS),
    "performance": PerformanceGovernor,
    "powersave": PowersaveGovernor,
    "ondemand": OndemandGovernor,
    "conservative": ConservativeGovernor,
    "interactive": InteractiveGovernor,
    "single-core-dfs": SingleCoreDFSGovernor,
    "solartune": SolarTuneGovernor,
}

#: Characterisation figure generators selectable from the command line.
FIGURE_FUNCTIONS: dict[str, Callable[[], dict]] = {
    "fig1": characterisation.fig1_solar_day,
    "fig3": characterisation.fig3_concept,
    "fig4": characterisation.fig4_power_vs_frequency,
    "fig6": characterisation.fig6_shadowing_simulation,
    "fig7": characterisation.fig7_performance_vs_power,
    "fig10": characterisation.fig10_transition_latency,
    "table1": characterisation.table1_buffer_capacitance,
    "fig11": evaluation.fig11_controlled_supply,
    "fig12": evaluation.fig12_voltage_stability,
    "fig13": evaluation.fig13_iv_and_operating_voltage,
    "fig14": evaluation.fig14_power_tracking,
    "fig15": evaluation.fig15_overhead,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-pns",
        description="Power-neutral performance scaling for energy-harvesting MP-SoCs (DATE 2017) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one governor against a synthetic solar harvest")
    run.add_argument("--governor", choices=sorted(GOVERNOR_FACTORIES), default="power-neutral")
    run.add_argument("--duration", type=float, default=600.0, help="simulated duration in seconds")
    run.add_argument(
        "--weather",
        choices=[w.value for w in WeatherCondition],
        default=WeatherCondition.FULL_SUN.value,
    )
    run.add_argument("--seed", type=int, default=7, help="irradiance generator seed")
    run.add_argument("--capacitance-mf", type=float, default=47.0, help="buffer capacitance in mF")

    table2 = sub.add_parser("table2", help="reproduce the Table II governor comparison")
    table2.add_argument("--duration", type=float, default=900.0)
    table2.add_argument("--seed", type=int, default=11)

    figure = sub.add_parser("figure", help="reproduce one characterisation/evaluation figure")
    figure.add_argument("name", choices=sorted(FIGURE_FUNCTIONS))

    return parser


def _command_run(args: argparse.Namespace) -> int:
    governor = GOVERNOR_FACTORIES[args.governor]()
    result = run_pv_experiment(
        governor,
        duration_s=args.duration,
        weather=WeatherCondition(args.weather),
        seed=args.seed,
        capacitance_f=args.capacitance_mf * 1e-3,
    )
    print(format_kv(result.summary(), title=f"Run summary ({args.governor})"))
    print()
    print(format_series("V_C", result.times, result.supply_voltage, units="V"))
    print(format_series("consumed power", result.times, result.consumed_power, units="W"))
    return 0


def _command_table2(args: argparse.Namespace) -> int:
    data = evaluation.table2_governor_comparison(duration_s=args.duration, seed=args.seed)
    print(format_table(data["rows"], title=f"Table II ({args.duration:.0f} s test)"))
    if data["instruction_improvement_vs_powersave"] is not None:
        print(
            f"\nInstructions vs Linux Powersave: "
            f"{100.0 * data['instruction_improvement_vs_powersave']:.1f}% more "
            f"(paper: +69.0%)"
        )
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    data = FIGURE_FUNCTIONS[args.name]()
    for key, value in data.items():
        if key.startswith("_"):
            continue
        if key.endswith("rows") and isinstance(value, list):
            print(format_table(value, title=key))
            print()
        elif isinstance(value, dict) and "times" not in value:
            print(format_kv(value, title=key))
            print()
        elif not isinstance(value, (list, dict)):
            print(f"{key}: {value}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point used by the ``repro-pns`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "table2":
        return _command_table2(args)
    if args.command == "figure":
        return _command_figure(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
