"""Command-line entry point: run the paper's experiments from a terminal.

Examples
--------
Run the governor against a synthetic full-sun harvest for ten minutes::

    repro-pns run --governor power-neutral --duration 600 --weather full_sun

Reproduce Table II (shortened)::

    repro-pns table2 --duration 900

Reproduce a characterisation figure (with a reproducible irradiance seed)::

    repro-pns figure fig12 --seed 3

Run a 24-scenario governor × weather × capacitance campaign on two worker
processes, then resume it (all cells cached)::

    repro-pns sweep --workers 2 --store campaign.jsonl
    repro-pns sweep --workers 2 --store campaign.jsonl --resume

Campaigns are not limited to the outdoor PV rig — swap the supply component
or run a built-in preset::

    repro-pns sweep --supply constant-power --supply-param power_w=2.5
    repro-pns sweep --preset fig11-governors --store fig11.jsonl
    repro-pns sweep --preset constant-power-survival --workers 4

Find a survival boundary by bisection instead of running a dense grid (a
re-run against the same store is pure cache hits)::

    repro-pns boundary --preset min-capacitance --store boundary.jsonl
    repro-pns boundary --preset min-power --workers 4
    repro-pns boundary --path supply.power_w --lo 0.8 --hi 8 \
        --supply constant-power --governors power-neutral,ondemand

Compact a long-lived store (drop superseded records, write the O(1)-open
index sidecar)::

    repro-pns store compact --store campaign.jsonl

Distribute a campaign: run disjoint, content-addressed shards (one per host
or one per terminal), then merge the shard stores into the one store every
other subcommand consumes::

    repro-pns shard --preset table2-pv --num-shards 2 --shard-index 0 --store shard-0.jsonl
    repro-pns shard --preset table2-pv --num-shards 2 --shard-index 1 --store shard-1.jsonl
    repro-pns store merge campaign.jsonl shard-0.jsonl shard-1.jsonl
    repro-pns sweep --preset table2-pv --store campaign.jsonl --resume   # executed: 0

Any campaign or boundary search can run on the exact reference engine
instead of the fast core (``--exact``); the engine is not part of the
scenario identity, so both engines share one store::

    repro-pns sweep --preset table2-pv --exact --store campaign.jsonl

Trace a campaign (``--trace`` works on sweep, boundary and shard; every
process writes its own trace file into the directory), then read the trace
back — live or aggregated::

    repro-pns sweep --preset table2-pv --store campaign.jsonl --trace trace/
    repro-pns obs tail trace/ --follow     # live, from another terminal
    repro-pns obs report trace/            # phases, slowest-N, utilisation
    repro-pns boundary --preset min-capacitance --trace trace/ --profile
"""

from __future__ import annotations

import argparse
import dataclasses
import functools
import inspect
import json
import os
import sys
from pathlib import Path
from typing import Callable

from .analysis.reporting import format_kv, format_series, format_table
from .obs import (
    DISABLED,
    DiffThresholds,
    ProgressRenderer,
    ResourceSampler,
    RunLedger,
    Telemetry,
    build_report,
    diff_summaries,
    follow_trace,
    format_diff,
    format_event,
    format_report,
    ledger_path,
    load_events,
    metrics_sidecar_path,
    run_top,
    summarize_run,
)
from .core.governor import PowerNeutralGovernor
from .core.parameters import PAPER_TUNED_PARAMETERS
from .energy.irradiance import WeatherCondition
from .experiments import characterisation, evaluation
from .experiments.scenarios import run_pv_experiment
from .governors.base import Governor
from .governors.linux import (
    ConservativeGovernor,
    InteractiveGovernor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)
from .governors.single_core_dfs import SingleCoreDFSGovernor
from .governors.solartune import SolarTuneGovernor
from . import sweep as sweep_module

__all__ = ["main", "build_parser", "GOVERNOR_FACTORIES"]

#: Governors selectable from the command line.
GOVERNOR_FACTORIES: dict[str, Callable[[], Governor]] = {
    "power-neutral": lambda: PowerNeutralGovernor(PAPER_TUNED_PARAMETERS),
    "performance": PerformanceGovernor,
    "powersave": PowersaveGovernor,
    "ondemand": OndemandGovernor,
    "conservative": ConservativeGovernor,
    "interactive": InteractiveGovernor,
    "single-core-dfs": SingleCoreDFSGovernor,
    "solartune": SolarTuneGovernor,
}

#: Characterisation figure generators selectable from the command line.
FIGURE_FUNCTIONS: dict[str, Callable[[], dict]] = {
    "fig1": characterisation.fig1_solar_day,
    "fig3": characterisation.fig3_concept,
    "fig4": characterisation.fig4_power_vs_frequency,
    "fig6": characterisation.fig6_shadowing_simulation,
    "fig7": characterisation.fig7_performance_vs_power,
    "fig10": characterisation.fig10_transition_latency,
    "table1": characterisation.table1_buffer_capacitance,
    "fig11": evaluation.fig11_controlled_supply,
    "fig12": evaluation.fig12_voltage_stability,
    "fig13": evaluation.fig13_iv_and_operating_voltage,
    "fig14": evaluation.fig14_power_tracking,
    "fig15": evaluation.fig15_overhead,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-pns",
        description="Power-neutral performance scaling for energy-harvesting MP-SoCs (DATE 2017) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one governor against a synthetic solar harvest")
    run.add_argument("--governor", choices=sorted(GOVERNOR_FACTORIES), default="power-neutral")
    run.add_argument("--duration", type=float, default=600.0, help="simulated duration in seconds")
    run.add_argument(
        "--weather",
        choices=[w.value for w in WeatherCondition],
        default=WeatherCondition.FULL_SUN.value,
    )
    run.add_argument("--seed", type=int, default=7, help="irradiance generator seed")
    run.add_argument("--capacitance-mf", type=float, default=47.0, help="buffer capacitance in mF")

    table2 = sub.add_parser("table2", help="reproduce the Table II governor comparison")
    table2.add_argument("--duration", type=float, default=900.0)
    table2.add_argument("--seed", type=int, default=11)

    figure = sub.add_parser("figure", help="reproduce one characterisation/evaluation figure")
    figure.add_argument("name", choices=sorted(FIGURE_FUNCTIONS))
    figure.add_argument(
        "--seed",
        type=int,
        default=None,
        help="irradiance generator seed (applied when the figure takes one)",
    )
    figure.add_argument(
        "--duration",
        type=float,
        default=None,
        help="simulated duration in seconds (applied when the figure takes one)",
    )

    sweep = sub.add_parser(
        "sweep",
        help="run a scenario campaign (any supply/platform/capacitor/governor combination) over worker processes",
        description=(
            "Expand a declarative scenario grid, run it serially or over a process "
            "pool, and persist one JSONL record per scenario keyed by the config's "
            "content hash. Re-running against the same store (--resume) recomputes "
            "nothing that already succeeded. The rig is composable: --supply picks "
            "the source (pv-array, controlled-voltage, constant-power, trace-file) "
            "with --supply-param KEY=VALUE knobs, or --preset runs a built-in "
            "campaign (e.g. the Fig. 11 controlled-supply governor sweep)."
        ),
    )
    _add_grid_flags(sweep)
    sweep.add_argument("--workers", type=int, default=2, help="worker processes (1 = inline)")
    sweep.add_argument(
        "--timeout", type=float, default=600.0, help="per-scenario wall-clock budget in seconds"
    )
    sweep.add_argument(
        "--store",
        default="sweep_results.jsonl",
        help="JSONL result store path (default: %(default)s)",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume against the existing store, skipping every scenario it already "
            "completed (this is also the default behaviour; the flag makes it explicit)"
        ),
    )
    sweep.add_argument(
        "--fresh",
        action="store_true",
        help="delete the existing store first and recompute every scenario",
    )
    sweep.add_argument(
        "--series",
        type=int,
        default=0,
        metavar="N",
        help="store each scenario's time series decimated to N samples (0 = summaries only)",
    )
    _add_exact_flag(sweep)
    sweep.add_argument(
        "--quiet", action="store_true", help="suppress the per-scenario progress lines"
    )
    _add_obs_flags(sweep)
    _add_export_flags(sweep, "per-record summary rows")

    shard = sub.add_parser(
        "shard",
        help="run one shard of a partitioned campaign against its own store (distributed worker)",
        description=(
            "Execute shard INDEX of a campaign split NUM ways. Sharding is "
            "deterministic and content-addressed (a scenario's shard is a pure "
            "function of its config hash), so N workers given the same spec — "
            "via --spec FILE, --preset, or identical grid flags — run disjoint "
            "subsets covering the whole campaign. The shard's store carries a "
            "JSON manifest (<store>.manifest.json) stamping the campaign hash, "
            "shard geometry and engine; re-invocations verify it and refuse to "
            "mix campaigns in one shard store. Assemble the final store with "
            "'store merge'; re-running a shard against the merged store "
            "recomputes nothing."
        ),
    )
    _add_grid_flags(shard)
    shard.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help=(
            "JSON campaign spec (SweepSpec.to_dict()) or shard manifest to run, "
            "instead of composing a grid from flags"
        ),
    )
    shard.add_argument(
        "--num-shards", type=int, required=True, metavar="N", help="total shard count"
    )
    shard.add_argument(
        "--shard-index", type=int, required=True, metavar="I", help="this worker's shard (0-based)"
    )
    shard.add_argument(
        "--workers", type=int, default=1, help="worker processes inside this shard (1 = inline)"
    )
    shard.add_argument(
        "--timeout", type=float, default=600.0, help="per-scenario wall-clock budget in seconds"
    )
    shard.add_argument(
        "--series",
        type=int,
        default=0,
        metavar="N",
        help="store each scenario's time series decimated to N samples (0 = summaries only)",
    )
    _add_exact_flag(shard)
    shard.add_argument(
        "--store",
        default=None,
        help="shard result store path (default: shard-<INDEX>.jsonl)",
    )
    shard.add_argument(
        "--manifest",
        default=None,
        metavar="FILE",
        help="shard manifest path (default: <store>.manifest.json)",
    )
    shard.add_argument(
        "--fresh",
        action="store_true",
        help="delete the existing shard store (and its manifest) first",
    )
    shard.add_argument(
        "--quiet", action="store_true", help="suppress the per-scenario progress lines"
    )
    _add_obs_flags(shard)

    boundary = sub.add_parser(
        "boundary",
        help="bisect a numeric scenario parameter to its survival (or custom-predicate) boundary",
        description=(
            "Find the critical value of one numeric dotted config path "
            "(capacitor.capacitance_f, supply.power_w, ...) where a predicate over "
            "completed scenarios flips — for every combination of the outer axes. "
            "Each round batches one probe per unconverged cell into a single "
            "campaign run, and every probe lands in the content-addressed store: "
            "re-running a finished query performs zero new simulations, and an "
            "interrupted search resumes from its stored probes. Run a built-in "
            "query with --preset (min-capacitance, min-power) or compose one with "
            "--path/--lo/--hi."
        ),
    )
    boundary.add_argument(
        "--preset",
        choices=sweep_module.boundary_preset_names(),
        default=None,
        help="run a built-in boundary query instead of composing one from flags",
    )
    boundary.add_argument(
        "--path",
        default=None,
        help="numeric dotted config path to bisect, e.g. capacitor.capacitance_f",
    )
    boundary.add_argument("--lo", type=float, default=None, help="initial bracket low end")
    boundary.add_argument("--hi", type=float, default=None, help="initial bracket high end")
    boundary.add_argument(
        "--predicate",
        choices=sorted(sweep_module.PREDICATES),
        default="survived",
        help="predicate whose flip is searched for (default: %(default)s)",
    )
    boundary.add_argument(
        "--decreasing",
        action="store_true",
        help="predicate passes below the boundary instead of above it",
    )
    boundary.add_argument(
        "--scale",
        choices=("linear", "log"),
        default=None,
        help="bisection scale (default: linear, or the preset's own choice)",
    )
    boundary.add_argument(
        "--rel-tol",
        type=float,
        default=None,
        help="relative bracket-width tolerance (default: 0.05, or the preset's)",
    )
    boundary.add_argument(
        "--abs-tol", type=float, default=None, help="absolute bracket-width tolerance"
    )
    boundary.add_argument(
        "--max-probes",
        type=int,
        default=None,
        help="per-cell probe budget (default: 48)",
    )
    boundary.add_argument(
        "--governors",
        default=None,
        help=(
            "comma-separated outer governor axis (min-power preset or custom "
            "queries; a single name just pins the governor)"
        ),
    )
    boundary.add_argument(
        "--weather",
        default=None,
        help=(
            "comma-separated outer weather axis (min-capacitance preset or custom "
            "pv-array queries)"
        ),
    )
    boundary.add_argument(
        "--supply",
        choices=sweep_module.SUPPLIES.names(),
        default=None,
        help="supply component kind for custom queries (default: pv-array)",
    )
    boundary.add_argument(
        "--supply-param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="set one supply parameter for custom queries (repeatable)",
    )
    boundary.add_argument(
        "--duration",
        type=float,
        default=None,
        help="simulated seconds per probe (default: 60, or the preset's own default)",
    )
    boundary.add_argument("--workers", type=int, default=2, help="worker processes (1 = inline)")
    boundary.add_argument(
        "--timeout", type=float, default=600.0, help="per-probe wall-clock budget in seconds"
    )
    boundary.add_argument(
        "--store",
        default="boundary_results.jsonl",
        help="JSONL result store path, shareable with sweep campaigns (default: %(default)s)",
    )
    boundary.add_argument(
        "--fresh",
        action="store_true",
        help="delete the existing store first and recompute every probe",
    )
    _add_exact_flag(boundary)
    boundary.add_argument(
        "--quiet", action="store_true", help="suppress the per-round progress lines"
    )
    _add_obs_flags(boundary)
    _add_export_flags(boundary, "per-cell boundary rows")

    store = sub.add_parser(
        "store",
        help="maintain JSONL result stores (compact, merge shards, stats)",
        description=(
            "Store maintenance. 'compact' rewrites the JSONL keeping only the "
            "newest record per scenario id and writes the key-to-offset index "
            "sidecar (<store>.idx.json) that lets later opens skip parsing "
            "record payloads entirely. 'merge DEST SRC [SRC ...]' unions shard "
            "stores into DEST (creating it if needed): successful records "
            "always supersede failures, later sources win ties, legacy v1 "
            "records are upgraded and re-keyed, and DEST is compacted with a "
            "fresh sidecar — ready for sweep --resume, boundary, or "
            "aggregation. 'stats [PATH]' prints the store inventory — record "
            "counts by status and schema version, bytes appended since the "
            "last compact, the last run's cache-hit ratio — served entirely "
            "from the idx/SQLite/metrics sidecars, without materialising a "
            "single record."
        ),
    )
    store.add_argument(
        "action", choices=("compact", "merge", "stats"), help="maintenance action"
    )
    store.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help=(
            "for merge: DEST SRC [SRC ...]; for stats: the store path "
            "(ignored by compact, which uses --store)"
        ),
    )
    store.add_argument(
        "--store",
        default="sweep_results.jsonl",
        help="JSONL result store path for compact/stats (default: %(default)s)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the long-lived campaign service (HTTP submissions + SSE progress)",
        description=(
            "Start the asyncio campaign service. Clients POST SweepSpec / "
            "BoundaryQuery JSON snapshots to /campaigns (deduped by content "
            "hash — identical submissions return the existing campaign), "
            "poll /campaigns/{id}, stream live trace events from "
            "/campaigns/{id}/events (Server-Sent Events), and fetch results "
            "from /campaigns/{id}/records and /aggregate, served through the "
            "store's SQLite index sidecar. Submit with 'repro submit' or any "
            "HTTP client; stop with Ctrl-C."
        ),
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: %(default)s)")
    serve.add_argument(
        "--port", type=int, default=8765, help="TCP port, 0 = ephemeral (default: %(default)s)"
    )
    serve.add_argument(
        "--store",
        default="serve_results.jsonl",
        help="the shared JSONL result store all campaigns run against (default: %(default)s)",
    )
    serve.add_argument(
        "--data-dir",
        default=None,
        metavar="DIR",
        help="campaign trace/scratch directory (default: <store>.serve/)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes per campaign (default: %(default)s)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-scenario wall-clock budget (default: none)",
    )
    serve.add_argument(
        "--series",
        type=int,
        default=0,
        metavar="N",
        help="store each record's series decimated to N samples (default: summaries only)",
    )
    _add_exact_flag(serve)
    serve.add_argument(
        "--token",
        default=None,
        help="require 'Authorization: Bearer TOKEN' on every endpoint except /healthz",
    )
    serve.add_argument(
        "--quiet", action="store_true", help="suppress the startup banner"
    )
    serve.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help=(
            "write the service's own trace (request spans, resource gauges) "
            "to per-process files in DIR; watch live with 'obs top DIR'"
        ),
    )
    serve.add_argument(
        "--resource-interval",
        type=float,
        default=5.0,
        metavar="S",
        help=(
            "seconds between process-resource samples (RSS, CPU, fds, "
            "threads) and metrics flushes (default: %(default)s)"
        ),
    )
    serve.add_argument(
        "--watchdog",
        type=float,
        default=None,
        metavar="S",
        help=(
            "per-campaign wall-clock budget: a campaign running longer is "
            "failed (scheduler.watchdog_timeout) so it cannot wedge the "
            "queue (default: no limit)"
        ),
    )
    serve.add_argument(
        "--alerts",
        default=None,
        metavar="FILE",
        help=(
            "SLO alert rules: a JSON file (or inline JSON) of AlertRule "
            "objects, evaluated live and served on GET /alerts, the "
            "dashboard and Prometheus exposition"
        ),
    )
    serve.add_argument(
        "--latency-budget",
        type=float,
        default=None,
        metavar="S",
        help=(
            "per-scenario latency budget: fires the built-in "
            "scenario-latency-budget alert when the rolling p95 of executed "
            "scenario durations exceeds S seconds"
        ),
    )

    submit = sub.add_parser(
        "submit",
        help="submit a campaign to a running campaign service",
        description=(
            "Submit a campaign over HTTP and (by default) wait for it to "
            "finish, printing the result summary and aggregate totals. "
            "Resubmitting an identical spec is a cache hit: the service "
            "returns the existing campaign id and schedules nothing."
        ),
    )
    submit.add_argument(
        "--url",
        default=None,
        help=(
            "service base URL (default: $REPRO_SERVE_URL, "
            "falling back to http://127.0.0.1:8765)"
        ),
    )
    submit.add_argument(
        "--token", default=None, help="bearer token for a --token-protected service"
    )
    submit.add_argument(
        "--preset",
        choices=sweep_module.preset_names(),
        default=None,
        help="submit a named sweep preset",
    )
    submit.add_argument(
        "--boundary-preset",
        choices=sweep_module.boundary_preset_names(),
        default=None,
        help="submit a named boundary-query preset",
    )
    submit.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help=(
            "submit a JSON file: a SweepSpec snapshot, a BoundaryQuery "
            "snapshot, or a shard manifest (its embedded spec is submitted)"
        ),
    )
    submit.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="S",
        help="override the preset's simulated duration per scenario",
    )
    submit.add_argument(
        "--watch",
        action="store_true",
        help="stream the campaign's live trace events (SSE) while waiting",
    )
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="return immediately after submission instead of waiting",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=900.0,
        metavar="S",
        help="how long to wait for completion (default: %(default)s)",
    )
    submit.add_argument(
        "--json",
        action="store_true",
        help="print the final campaign document as JSON instead of tables",
    )

    obs = sub.add_parser(
        "obs",
        help="inspect campaign telemetry traces (live tail, report, top view)",
        description=(
            "Read the JSONL trace events a campaign wrote under --trace DIR. "
            "'tail' replays the merged event stream as one line per event "
            "(--follow keeps polling for new events, across files appearing "
            "mid-campaign — e.g. shard workers starting up). 'report' "
            "aggregates the stream: per-phase wall-time breakdown with "
            "coverage, cache-hit ratio, slowest scenarios, per-worker "
            "utilisation and queue-wait statistics, counter totals, HTTP "
            "route latencies and resource usage when present. 'top' is the "
            "live view: a refreshing terminal frame of throughput, request "
            "p50/p95 per route, in-flight requests and RSS/CPU, fed by the "
            "same polling the SSE endpoint uses. 'diff' compares two runs "
            "(two trace directories, or one against the run ledger) and "
            "exits 1 when a regression threshold is breached — wire it into "
            "CI to catch performance regressions."
        ),
    )
    obs.add_argument(
        "action",
        choices=("tail", "report", "top", "diff"),
        help="what to do with the trace",
    )
    obs.add_argument(
        "trace",
        metavar="TRACE",
        help="trace directory (files merged in timestamp order) or one trace-*.jsonl file",
    )
    obs.add_argument(
        "trace_b",
        nargs="?",
        default=None,
        metavar="TRACE_B",
        help="diff: the candidate trace directory (TRACE is the baseline)",
    )
    obs.add_argument(
        "--against-ledger",
        default=None,
        metavar="LEDGER",
        help=(
            "diff: compare TRACE against the most recent other entry in this "
            "run-history ledger instead of a second trace directory"
        ),
    )
    obs.add_argument(
        "--p95-threshold",
        type=float,
        default=20.0,
        metavar="PCT",
        help="diff: flag a scenario-latency p95 increase above PCT%% (default: %(default)s)",
    )
    obs.add_argument(
        "--throughput-threshold",
        type=float,
        default=10.0,
        metavar="PCT",
        help="diff: flag a throughput drop above PCT%% (default: %(default)s)",
    )
    obs.add_argument(
        "--phase-threshold",
        type=float,
        default=50.0,
        metavar="PCT",
        help="diff: flag a phase wall-time increase above PCT%% (default: %(default)s)",
    )
    obs.add_argument(
        "--follow",
        action="store_true",
        help="tail: keep polling for appended events until interrupted (Ctrl-C)",
    )
    obs.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="S",
        help="tail --follow / top refresh interval in seconds (default: %(default)s)",
    )
    obs.add_argument(
        "--slowest",
        type=int,
        default=10,
        metavar="N",
        help="report: how many slowest scenarios to list (default: %(default)s)",
    )
    obs.add_argument(
        "--json", action="store_true", help="report: emit the report document as JSON"
    )
    obs.add_argument(
        "--once",
        action="store_true",
        help="top: print a single frame and exit (no screen clearing)",
    )

    return parser


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """The telemetry flags shared by every campaign-shaped command."""
    parser.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help=(
            "write JSONL trace events (phase spans, per-scenario timings, "
            "counters) to per-process files in DIR, plus a metrics.json "
            "sidecar next to the store; inspect with 'obs tail DIR' / "
            "'obs report DIR'"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "run the campaign under cProfile: print the hottest functions and "
            "dump the full profile next to the trace (or the store)"
        ),
    )
    parser.add_argument(
        "--ledger",
        default=None,
        metavar="FILE",
        help=(
            "append a run summary to this performance-history ledger after a "
            "traced run (default: <store>.ledger.jsonl; pass 'none' to "
            "disable); compare runs with 'obs diff'"
        ),
    )


def _add_grid_flags(parser: argparse.ArgumentParser) -> None:
    """The campaign-shaping flags shared by ``sweep`` and ``shard``."""
    parser.add_argument(
        "--preset",
        choices=sweep_module.preset_names(),
        default=None,
        help="run a built-in campaign preset instead of composing a grid from flags",
    )
    parser.add_argument(
        "--supply",
        choices=sweep_module.SUPPLIES.names(),
        default="pv-array",
        help="supply component kind driving every scenario (default: %(default)s)",
    )
    parser.add_argument(
        "--supply-param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="set one supply parameter, e.g. power_w=2.5 or profile=fig11 (repeatable)",
    )
    parser.add_argument(
        "--governors",
        default="power-neutral,powersave,ondemand,conservative",
        help="comma-separated governor names, or 'all' (default: %(default)s)",
    )
    parser.add_argument(
        "--weather",
        default="full_sun,partial_sun,cloud",
        help="comma-separated weather presets (pv-array supply only; default: %(default)s)",
    )
    parser.add_argument(
        "--capacitance-mf",
        default="15.4,47",
        help="comma-separated buffer capacitances in mF (default: %(default)s)",
    )
    parser.add_argument(
        "--seeds",
        default="7",
        help="comma-separated irradiance seeds (pv-array supply only; default: %(default)s)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="simulated seconds per scenario (default: 60, or the preset's own default)",
    )
    parser.add_argument(
        "--workload",
        choices=sorted(sweep_module.WORKLOADS),
        default="table2-render",
        help="work-unit model for throughput metrics",
    )
    parser.add_argument(
        "--shadow",
        action="append",
        default=[],
        metavar="START:DURATION:ATTENUATION",
        help="add a deterministic shadowing event to every scenario (pv-array only; repeatable)",
    )


def _add_exact_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--exact",
        action="store_true",
        help=(
            "run the exact reference simulation engine (build_system(fast=False)) "
            "instead of the fast core; an execution detail only — stores stay "
            "comparable because the engine is not part of the scenario hash"
        ),
    )


def _add_export_flags(parser: argparse.ArgumentParser, what: str) -> None:
    parser.add_argument(
        "--export",
        choices=("csv", "json"),
        default=None,
        help=f"also write the {what} to a file ({{csv,json}})",
    )
    parser.add_argument(
        "--export-path",
        default=None,
        metavar="FILE",
        help="export destination (default: <store>.summary.<format>)",
    )


def _command_run(args: argparse.Namespace) -> int:
    governor = GOVERNOR_FACTORIES[args.governor]()
    result = run_pv_experiment(
        governor,
        duration_s=args.duration,
        weather=WeatherCondition(args.weather),
        seed=args.seed,
        capacitance_f=args.capacitance_mf * 1e-3,
    )
    print(format_kv(result.summary(), title=f"Run summary ({args.governor})"))
    print()
    print(format_series("V_C", result.times, result.supply_voltage, units="V"))
    print(format_series("consumed power", result.times, result.consumed_power, units="W"))
    return 0


def _command_table2(args: argparse.Namespace) -> int:
    data = evaluation.table2_governor_comparison(duration_s=args.duration, seed=args.seed)
    print(format_table(data["rows"], title=f"Table II ({args.duration:.0f} s test)"))
    if data["instruction_improvement_vs_powersave"] is not None:
        print(
            f"\nInstructions vs Linux Powersave: "
            f"{100.0 * data['instruction_improvement_vs_powersave']:.1f}% more "
            f"(paper: +69.0%)"
        )
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    function = FIGURE_FUNCTIONS[args.name]
    accepted = set(inspect.signature(function).parameters)
    kwargs = {}
    for flag, parameter in (("seed", "seed"), ("duration", "duration_s")):
        value = getattr(args, flag)
        if value is None:
            continue
        if parameter in accepted:
            kwargs[parameter] = value
        else:
            print(f"note: {args.name} does not take --{flag}; ignoring", file=sys.stderr)
    data = function(**kwargs)
    for key, value in data.items():
        if key.startswith("_"):
            continue
        if key.endswith("rows") and isinstance(value, list):
            print(format_table(value, title=key))
            print()
        elif isinstance(value, dict) and "times" not in value:
            print(format_kv(value, title=key))
            print()
        elif not isinstance(value, (list, dict)):
            print(f"{key}: {value}")
    return 0


def _parse_csv(text: str, convert: Callable = str) -> list:
    try:
        values = [convert(part.strip()) for part in text.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(
            f"bad list option {text!r}; expected comma-separated {convert.__name__} values"
        ) from None
    if not values:
        raise SystemExit(f"empty list option: {text!r}")
    return values


def _parse_shadow(text: str) -> "sweep_module.ShadowSpec":
    try:
        start, duration, attenuation = (float(p) for p in text.split(":"))
    except ValueError:
        raise SystemExit(
            f"bad --shadow {text!r}; expected START:DURATION:ATTENUATION, e.g. 20:10:0.2"
        ) from None
    return sweep_module.ShadowSpec(start_s=start, duration_s=duration, attenuation=attenuation)


def _parse_param_value(text: str):
    """KEY=VALUE values: booleans, numbers, or strings."""
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    try:
        return float(text)
    except ValueError:
        return text.strip()


def _parse_params(pairs: list[str], flag: str) -> dict:
    params = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key.strip():
            raise SystemExit(f"bad {flag} {pair!r}; expected KEY=VALUE, e.g. power_w=2.5")
        params[key.strip()] = _parse_param_value(value)
    return params


#: The grid-shaping sweep flags whose "explicitly passed vs left at default"
#: status matters (for --preset conflicts and for not clobbering
#: --supply-param values with built-in default grids).
_SWEEP_GRID_FLAGS: tuple[str, ...] = (
    "governors",
    "weather",
    "capacitance_mf",
    "seeds",
    "workload",
    "supply",
    "supply_param",
    "shadow",
)


@functools.lru_cache(maxsize=1)
def _sweep_grid_flag_defaults() -> dict:
    """The parser's own defaults for the grid-shaping flags.

    Derived by parsing a bare ``sweep`` invocation so this never drifts from
    :func:`build_parser` (the single source of truth for defaults).
    """
    defaults = build_parser().parse_args(["sweep"])
    return {name: getattr(defaults, name) for name in _SWEEP_GRID_FLAGS}


def _explicit_grid_flags(args: argparse.Namespace) -> list[str]:
    """The grid-shaping flags the user actually set (differ from defaults)."""
    return [
        "--" + name.replace("_", "-")
        for name, default in _sweep_grid_flag_defaults().items()
        if getattr(args, name) != default
    ]


def _build_sweep_spec(args: argparse.Namespace) -> "sweep_module.SweepSpec":
    """Turn the sweep flags (or a preset name) into a SweepSpec."""
    if args.preset is not None:
        conflicting = _explicit_grid_flags(args)
        if conflicting:
            raise SystemExit(
                f"--preset {args.preset} composes its own grid; "
                f"drop the conflicting flag(s): {', '.join(conflicting)}"
            )
        try:
            return sweep_module.build_preset(args.preset, duration_s=args.duration)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None

    if args.governors.strip().lower() == "all":
        governors = sweep_module.GOVERNORS.names()
    else:
        governors = _parse_csv(args.governors)
    for name in governors:
        if name not in sweep_module.GOVERNORS:
            raise SystemExit(
                f"unknown governor {name!r}; known: {', '.join(sweep_module.GOVERNORS.names())}"
            )

    supply = sweep_module.ComponentSpec(
        kind=args.supply, params=_parse_params(args.supply_param, "--supply-param")
    )
    pv = supply.kind == "pv-array"
    weather_explicit = args.weather != _sweep_grid_flag_defaults()["weather"]
    seeds_explicit = args.seeds != _sweep_grid_flag_defaults()["seeds"]

    if not pv:
        # Weather/seed/shadowing are pv-array dimensions; reject them loudly
        # instead of silently running a different campaign.
        for flag, explicit in (("--weather", weather_explicit), ("--seeds", seeds_explicit)):
            if explicit:
                raise SystemExit(
                    f"{flag} only applies to the pv-array supply (got {supply.kind!r})"
                )
        if args.shadow:
            raise SystemExit(f"--shadow only applies to the pv-array supply (got {supply.kind!r})")
        weather = None
        seeds = None
    else:
        weather = _parse_csv(args.weather)
        for name in weather:
            try:
                WeatherCondition(name)
            except ValueError:
                raise SystemExit(
                    f"unknown weather {name!r}; known: {', '.join(w.value for w in WeatherCondition)}"
                ) from None
        seeds = _parse_csv(args.seeds, int)
        # A condition pinned via --supply-param stays authoritative unless
        # the corresponding axis flag was passed explicitly.
        if supply.get("weather") is not None and not weather_explicit:
            weather = None
        if supply.get("seed") is not None and not seeds_explicit:
            seeds = None

    try:
        return sweep_module.SweepSpec.grid(
            governors=governors,
            weather=weather,
            capacitances_f=[1e-3 * c for c in _parse_csv(args.capacitance_mf, float)],
            seeds=seeds,
            duration_s=args.duration if args.duration is not None else 60.0,
            workload=args.workload,
            shadowing=[_parse_shadow(s) for s in args.shadow],
            supply=supply,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _export_rows(args: argparse.Namespace, rows: list[dict], payload=None) -> None:
    """Write the summary rows to --export-path as CSV or JSON (if requested).

    ``payload`` overrides the JSON document (e.g. a full boundary report);
    CSV always writes the flat rows.
    """
    if args.export is None:
        return
    destination = Path(
        args.export_path
        if args.export_path is not None
        else str(Path(args.store)) + f".summary.{args.export}"
    )
    if args.export == "csv":
        text = sweep_module.rows_to_csv(rows)
    else:
        text = json.dumps(payload if payload is not None else rows, indent=2, default=str) + "\n"
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(text, encoding="utf-8")
    print(f"exported {len(rows)} row(s) to {destination}")


def _telemetry_for(
    args: argparse.Namespace, worker: str = "main", campaign: "str | None" = None
) -> Telemetry:
    """The command's telemetry bundle: enabled iff --trace DIR was passed."""
    trace_dir = getattr(args, "trace", None)
    if trace_dir:
        return Telemetry.create(trace_dir, worker=worker, campaign=campaign)
    return DISABLED


def _finish_telemetry(
    telemetry: Telemetry,
    store: "sweep_module.ResultStore",
    args: "argparse.Namespace | None" = None,
    kind: str = "sweep",
    campaign: "str | None" = None,
    engine: "str | None" = None,
) -> None:
    """End-of-command roll-up: metrics sidecar next to the store, tracer closed.

    Traced runs also append a :class:`RunSummary` to the performance-history
    ledger (``--ledger``, default ``<store>.ledger.jsonl``) so ``obs diff``
    can compare this run against earlier ones.
    """
    sidecar = telemetry.write_metrics(store.path)
    telemetry.close()
    if sidecar is not None:
        print(
            f"telemetry: trace in {telemetry.trace_dir}/ (obs report "
            f"{telemetry.trace_dir}), metrics in {sidecar}"
        )
    if telemetry.trace_dir is None:
        return
    chosen = getattr(args, "ledger", None) if args is not None else None
    if chosen == "none":
        return
    ledger_file = Path(chosen) if chosen else ledger_path(store.path)
    try:
        summary = summarize_run(
            telemetry.trace_dir, kind=kind, campaign=campaign, engine=engine
        )
        RunLedger(ledger_file).append(summary)
    except (OSError, FileNotFoundError, ValueError) as exc:
        print(f"ledger: skipped ({exc})", file=sys.stderr)
        return
    print(f"ledger: appended run summary to {ledger_file} (compare with 'obs diff')")


def _maybe_profile(args: argparse.Namespace, run: Callable[[], object]):
    """Run the campaign body, under cProfile when --profile was passed.

    The binary profile lands in ``<trace>/profile.prof`` (or
    ``<store>.prof`` without --trace) for ``snakeviz``/``pstats`` digging;
    the 15 hottest functions by cumulative time are printed immediately.
    """
    if not getattr(args, "profile", False):
        return run()
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    result = profiler.runcall(run)
    trace_dir = getattr(args, "trace", None)
    destination = (
        Path(trace_dir) / "profile.prof" if trace_dir else Path(str(args.store) + ".prof")
    )
    destination.parent.mkdir(parents=True, exist_ok=True)
    profiler.dump_stats(destination)
    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(15)
    print(f"profile written to {destination}")
    print(stream.getvalue())
    return result


def _open_store(
    args: argparse.Namespace, telemetry: Telemetry = DISABLED
) -> "sweep_module.ResultStore":
    """Open the campaign store honouring --fresh, with resume/legacy notes."""
    store_path = Path(args.store)
    if store_path.exists() and args.fresh:
        store_path.unlink()
        # The compaction sidecar indexes the file just deleted; left behind
        # it would resurrect phantom records on the next open.
        index_path = Path(str(store_path) + ".idx.json")
        if index_path.exists():
            index_path.unlink()
        print(f"starting fresh campaign (deleted existing {store_path})")
    store = sweep_module.ResultStore(store_path, telemetry=telemetry)
    if len(store):
        print(
            f"resuming: {len(store)} record(s) already in {store_path} "
            "(pass --fresh to recompute everything)"
        )
    if store.legacy_count:
        versions = ", ".join(
            f"v{v}: {n}"
            for v, n in store.version_counts().items()
            if v < sweep_module.SCHEMA_VERSION
        )
        print(
            f"note: {store.legacy_count} record(s) use an older config schema "
            f"({versions}); they are kept but will not cache-hit new-schema scenarios"
        )
    return store


def _command_sweep(args: argparse.Namespace) -> int:
    spec = _build_sweep_spec(args)

    if args.fresh and args.resume:
        raise SystemExit("--fresh and --resume are mutually exclusive")
    telemetry = _telemetry_for(args)
    store = _open_store(args, telemetry=telemetry)
    store_path = store.path

    renderer = ProgressRenderer(quiet=args.quiet)
    runner = sweep_module.SweepRunner(
        store,
        workers=args.workers,
        timeout_s=args.timeout,
        series_samples=args.series,
        progress=renderer.scenario,
        fast=not args.exact,
        telemetry=telemetry,
    )
    mode = f"{args.workers} worker processes" if args.workers > 1 else "inline (serial)"
    if args.exact:
        mode += ", exact engine"
    title = f"preset {args.preset!r}" if args.preset else "sweep"
    print(f"{title}: {len(spec)} scenarios over {mode} -> {store_path}")
    # The sampler no-ops without --trace; with it, RSS/CPU gauges land in the
    # trace and the metrics sidecar is re-flushed (atomically) every few
    # seconds, so a killed run still leaves a readable snapshot behind.
    with ResourceSampler(telemetry, flush_path=metrics_sidecar_path(store_path)):
        report = _maybe_profile(args, lambda: runner.run(spec))
    _finish_telemetry(
        telemetry,
        store,
        args=args,
        kind="sweep",
        campaign=spec.campaign_hash(),
        engine="exact" if args.exact else "fast",
    )

    print()
    print(format_kv(report.summary(), title="Campaign"))
    ok_records = report.ok_records()
    if ok_records:
        print()
        print(format_kv(sweep_module.campaign_overview(report.records), title="Totals"))
        for axis in spec.axes:
            print()
            print(
                format_table(
                    sweep_module.axis_summary(ok_records, axis.name),
                    title=f"By {axis.name} (mean/p50/p95 across the other axes)",
                )
            )
        if any(sweep_module.resolve_axis_path(axis.name) == "governor" for axis in spec.axes):
            print()
            print(format_table(sweep_module.table2_rows(ok_records), title="Table II view"))
    _export_rows(args, sweep_module.records_table(report.records))
    for record in report.records:
        if record.get("status") not in (None, "ok"):
            config = record.get("config", {})
            governor = config.get("governor")
            if isinstance(governor, dict):
                governor = governor.get("kind")
            print(
                f"FAILED {record.get('scenario_id')} "
                f"({governor}): {record.get('error')}",
                file=sys.stderr,
            )
    return 0 if report.succeeded else 1


def _validate_boundary_axis_names(governors, weather) -> None:
    """Reject unknown governor/weather names before any simulation starts."""
    for name in governors or ():
        if name not in sweep_module.GOVERNORS:
            raise SystemExit(
                f"unknown governor {name!r}; known: {', '.join(sweep_module.GOVERNORS.names())}"
            )
    for name in weather or ():
        try:
            WeatherCondition(name)
        except ValueError:
            raise SystemExit(
                f"unknown weather {name!r}; known: {', '.join(w.value for w in WeatherCondition)}"
            ) from None


def _build_boundary_query(args: argparse.Namespace) -> "sweep_module.BoundaryQuery":
    """Turn the boundary flags (or a preset name) into a BoundaryQuery."""
    governors = _parse_csv(args.governors) if args.governors is not None else None
    weather = _parse_csv(args.weather) if args.weather is not None else None
    _validate_boundary_axis_names(governors, weather)
    if args.preset is not None:
        for flag in ("path", "lo", "hi", "supply"):
            if getattr(args, flag) is not None:
                raise SystemExit(
                    f"--preset {args.preset} defines its own search; drop --{flag}"
                )
        if args.supply_param:
            raise SystemExit(f"--preset {args.preset} defines its own rig; drop --supply-param")
        try:
            query = sweep_module.build_boundary_preset(
                args.preset,
                duration_s=args.duration,
                rel_tol=args.rel_tol,
                weather=weather,
                governors=governors,
            )
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        # The remaining search knobs apply uniformly to any query.
        overrides = {
            name: value
            for name, value in (
                ("abs_tol", args.abs_tol),
                ("max_probes", args.max_probes),
                ("scale", args.scale),
            )
            if value is not None
        }
        if args.predicate != "survived":
            overrides["predicate"] = args.predicate
        if args.decreasing:
            overrides["increasing"] = False
        if overrides:
            query = dataclasses.replace(query, **overrides)
        return query

    missing = [flag for flag in ("path", "lo", "hi") if getattr(args, flag) is None]
    if missing:
        raise SystemExit(
            "a custom boundary query needs " + ", ".join(f"--{m}" for m in missing) + " "
            f"(or use --preset {{{','.join(sweep_module.boundary_preset_names())}}})"
        )
    if governors is None:
        governors = ["power-neutral"]
    supply = sweep_module.ComponentSpec(
        kind=args.supply if args.supply is not None else "pv-array",
        params=_parse_params(args.supply_param, "--supply-param"),
    )
    if weather is not None and supply.kind != "pv-array":
        raise SystemExit(f"--weather only applies to the pv-array supply (got {supply.kind!r})")
    axes: list[sweep_module.Axis] = []
    if len(governors) > 1:
        axes.append(sweep_module.Axis("governor", governors))
    if weather is not None and len(weather) > 1:
        axes.append(sweep_module.Axis("supply.weather", weather))
    try:
        base = sweep_module.ScenarioConfig(
            governor=governors[0],
            supply=supply,
            weather=weather[0] if weather else None,
            duration_s=args.duration if args.duration is not None else 60.0,
        )
        return sweep_module.BoundaryQuery(
            base=base,
            path=args.path,
            lo=args.lo,
            hi=args.hi,
            outer_axes=tuple(axes),
            predicate=args.predicate,
            increasing=not args.decreasing,
            rel_tol=args.rel_tol if args.rel_tol is not None else 0.05,
            abs_tol=args.abs_tol if args.abs_tol is not None else 0.0,
            scale=args.scale if args.scale is not None else "linear",
            max_probes=args.max_probes if args.max_probes is not None else 48,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _command_boundary(args: argparse.Namespace) -> int:
    query = _build_boundary_query(args)
    telemetry = _telemetry_for(args)
    store = _open_store(args, telemetry=telemetry)

    runner = sweep_module.SweepRunner(
        store,
        workers=args.workers,
        timeout_s=args.timeout,
        fast=not args.exact,
        telemetry=telemetry,
    )
    mode = f"{args.workers} worker processes" if args.workers > 1 else "inline (serial)"
    if args.exact:
        mode += ", exact engine"
    title = f"preset {args.preset!r}" if args.preset else f"search on {query.path!r}"
    print(
        f"boundary {title}: {len(query.cells())} cell(s), predicate "
        f"{query.predicate_name!r}, bracket [{query.lo:g}, {query.hi:g}] over {mode} "
        f"-> {store.path}"
    )
    renderer = ProgressRenderer(quiet=args.quiet)
    search = sweep_module.BoundarySearch(
        query, runner, progress=renderer.round, telemetry=telemetry
    )
    with ResourceSampler(telemetry, flush_path=metrics_sidecar_path(store.path)):
        report = _maybe_profile(args, search.run)
    _finish_telemetry(
        telemetry,
        store,
        args=args,
        kind="boundary",
        campaign=query.query_hash(),
        engine="exact" if args.exact else "fast",
    )

    print()
    print(format_kv(report.summary(), title="Boundary search"))
    print()
    print(
        format_table(
            report.rows(),
            title=f"Critical {query.path} per cell (predicate: {report.predicate})",
        )
    )
    _export_rows(args, report.rows(), payload=report.to_dict())
    for cell in report.cells:
        if cell.status != "converged":
            where = ", ".join(f"{k}={v}" for k, v in cell.outer.items()) or "(single cell)"
            print(f"NOT CONVERGED [{where}]: {cell.status} — {cell.detail}", file=sys.stderr)
    return 0 if report.converged else 1


def _load_spec_file(
    path: str,
) -> "tuple[sweep_module.SweepSpec, sweep_module.ShardPlan | None]":
    """Read a campaign from a JSON file: a SweepSpec snapshot or a manifest.

    Returns ``(spec, plan)`` where ``plan`` is the *verified* source plan
    when the file is a shard manifest (``None`` for a plain spec snapshot).
    The caller must honour the plan's stamped engine — a worker pointed at
    an exact-engine manifest must not quietly contribute fast-engine records
    — and can re-slice it with :meth:`ShardPlan.with_geometry`, reusing the
    expansion the verification already paid for.
    """
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"unreadable --spec file {path}: {exc}") from None
    try:
        if isinstance(data, dict) and "spec" in data and "campaign_hash" in data:
            plan = sweep_module.ShardPlan.from_manifest(data)
            return plan.spec, plan
        return sweep_module.SweepSpec.from_dict(data), None
    except (ValueError, TypeError, KeyError) as exc:
        raise SystemExit(f"invalid --spec file {path}: {exc}") from None


def _command_shard(args: argparse.Namespace) -> int:
    if args.num_shards < 1:
        raise SystemExit("--num-shards must be at least 1")
    if not 0 <= args.shard_index < args.num_shards:
        raise SystemExit(
            f"--shard-index must be in [0, {args.num_shards}) (got {args.shard_index})"
        )
    source_plan = None
    if args.spec is not None:
        conflicting = _explicit_grid_flags(args)
        if args.preset is not None:
            conflicting.insert(0, "--preset")
        if conflicting:
            raise SystemExit(
                f"--spec carries the whole campaign; "
                f"drop the conflicting flag(s): {', '.join(conflicting)}"
            )
        spec, source_plan = _load_spec_file(args.spec)
        if args.duration is not None:
            raise SystemExit("--spec carries the whole campaign; drop --duration")
    else:
        spec = _build_sweep_spec(args)

    engine = "exact" if args.exact else "fast"
    if source_plan is not None and source_plan.engine != engine:
        if args.exact:
            # The user explicitly demanded the opposite of the manifest:
            # refuse rather than fracture the campaign across engines.
            raise SystemExit(
                f"--spec manifest stamps the {source_plan.engine!r} engine but "
                f"--exact was passed; all shards of a campaign must agree on "
                f"the engine"
            )
        engine = source_plan.engine
        print(f"adopting the {engine!r} engine stamped in {args.spec}")
    if source_plan is not None:
        # Re-slice the verified plan: the manifest check already paid for
        # the campaign expansion, so this worker's geometry costs nothing.
        plan = source_plan.with_geometry(args.num_shards, args.shard_index, engine)
    else:
        plan = sweep_module.ShardPlan.partition(
            spec, args.num_shards, args.shard_index, engine=engine
        )
    args.store = str(args.store if args.store else f"shard-{args.shard_index}.jsonl")
    manifest_path = Path(
        args.manifest if args.manifest else args.store + ".manifest.json"
    )
    if args.fresh and manifest_path.exists():
        manifest_path.unlink()
    telemetry = _telemetry_for(
        args, worker=f"shard-{plan.shard_index}", campaign=plan.campaign_hash
    )
    store = _open_store(args, telemetry=telemetry)  # honours --fresh for store + idx

    if manifest_path.exists():
        # Compare the stamped identity fields only — the snapshot behind
        # them is irrelevant here (this invocation runs `plan` either way),
        # and skipping its re-expansion keeps resuming a 100k-cell shard at
        # one expansion total.
        try:
            stamped = json.loads(manifest_path.read_text(encoding="utf-8"))
            if not isinstance(stamped, dict):
                raise ValueError("not a JSON object")
        except (OSError, json.JSONDecodeError, ValueError) as exc:
            raise SystemExit(f"corrupt shard manifest {manifest_path}: {exc}") from None
        matches = (
            stamped.get("campaign_hash") == plan.campaign_hash
            and stamped.get("n_shards") == plan.n_shards
            and stamped.get("shard_index") == plan.shard_index
            and stamped.get("engine", "fast") == plan.engine
        )
        if not matches:
            raise SystemExit(
                f"store {store.path} belongs to campaign "
                f"{stamped.get('campaign_hash')} shard "
                f"{stamped.get('shard_index', 0) + 1}/{stamped.get('n_shards', 0)} "
                f"({stamped.get('engine', 'fast')} engine) but this invocation is "
                f"campaign {plan.campaign_hash} shard "
                f"{plan.shard_index + 1}/{plan.n_shards} ({plan.engine} engine); "
                f"use a different --store or --fresh"
            )
    else:
        plan.write_manifest(manifest_path)

    # Materialise the store file even for an empty (or fully cached) shard:
    # the merge step expects one store per shard, and a content-addressed
    # partition is allowed to leave a shard with nothing to do.
    store.path.parent.mkdir(parents=True, exist_ok=True)
    store.path.touch(exist_ok=True)

    configs = plan.configs()
    print(
        f"shard {plan.shard_index + 1}/{plan.n_shards} of campaign {plan.campaign_hash}: "
        f"{len(configs)} of {len(spec)} scenario(s), {plan.engine} engine -> {store.path}"
    )

    # Records computed by this worker (and its pool children, which inherit
    # the environment) carry the shard index in their worker stamp.
    os.environ[sweep_module.SHARD_INDEX_ENV] = str(plan.shard_index)
    renderer = ProgressRenderer(quiet=args.quiet)
    runner = sweep_module.SweepRunner(
        store,
        workers=args.workers,
        timeout_s=args.timeout,
        series_samples=args.series,
        progress=renderer.scenario,
        fast=plan.engine == "fast",
        telemetry=telemetry,
    )
    with ResourceSampler(telemetry, flush_path=metrics_sidecar_path(store.path)):
        report = _maybe_profile(args, lambda: runner.run(configs))
    _finish_telemetry(
        telemetry,
        store,
        args=args,
        kind="shard",
        campaign=plan.campaign_hash,
        engine=plan.engine,
    )
    print()
    print(
        format_kv(
            report.summary(), title=f"Shard {plan.shard_index + 1}/{plan.n_shards}"
        )
    )
    for record in report.records:
        if record.get("status") not in (None, "ok"):
            print(
                f"FAILED {record.get('scenario_id')}: {record.get('error')}",
                file=sys.stderr,
            )
    return 0 if report.succeeded else 1


def _command_store(args: argparse.Namespace) -> int:
    if args.action == "stats":
        if len(args.paths) > 1:
            raise SystemExit("store stats takes at most one store path")
        store_path = Path(args.paths[0]) if args.paths else Path(args.store)
        if not store_path.exists():
            raise SystemExit(f"no store at {store_path}")
        stats = sweep_module.store_stats(store_path)
        flat: dict = {}
        for key, value in stats.items():
            if key == "by_status":
                flat.update({f"status_{k}": v for k, v in value.items()})
            elif key == "by_schema_version":
                flat.update({f"schema_v{k}": v for k, v in value.items()})
            elif key in ("path", "exists"):
                continue
            else:
                flat[key] = value
        print(format_kv(flat, title=f"Store {store_path}"))
        return 0
    if args.action == "merge":
        if len(args.paths) < 2:
            raise SystemExit("store merge needs DEST SRC [SRC ...]")
        dest, *sources = args.paths
        try:
            stats = sweep_module.merge_stores(dest, sources)
        except (FileNotFoundError, ValueError) as exc:
            raise SystemExit(str(exc)) from None
        print(format_kv(stats, title=f"Merged {len(sources)} store(s) into {dest}"))
        return 0
    if args.paths:
        raise SystemExit("store compact takes no positional paths; use --store")
    store_path = Path(args.store)
    if not store_path.exists():
        raise SystemExit(f"no store at {store_path}")
    store = sweep_module.ResultStore(store_path)
    stats = store.compact()
    print(format_kv(stats, title=f"Compacted {store_path}"))
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from .serve import run_service

    return run_service(
        store_path=args.store,
        data_dir=args.data_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        timeout_s=args.timeout,
        series_samples=args.series,
        fast=not args.exact,
        token=args.token,
        quiet=args.quiet,
        trace_dir=args.trace,
        resource_interval_s=args.resource_interval,
        watchdog_s=args.watchdog,
        alert_rules=args.alerts,
        latency_budget_s=args.latency_budget,
    )


def _command_submit(args: argparse.Namespace) -> int:
    from .serve import ServeClient, ServeConfig, ServeError

    chosen = [name for name in ("preset", "boundary_preset", "spec") if getattr(args, name)]
    if len(chosen) != 1:
        raise SystemExit("submit needs exactly one of --preset, --boundary-preset, --spec")
    if args.preset:
        payload: dict = {
            "kind": "sweep",
            "spec": sweep_module.build_preset(args.preset, duration_s=args.duration).to_dict(),
        }
    elif args.boundary_preset:
        try:
            query = sweep_module.build_boundary_preset(
                args.boundary_preset, duration_s=args.duration
            )
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        payload = {"kind": "boundary", "spec": query.to_dict()}
    else:
        if args.duration is not None:
            raise SystemExit("--duration only applies to presets")
        try:
            data = json.loads(Path(args.spec).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"unreadable --spec file {args.spec}: {exc}") from None
        if isinstance(data, dict) and "spec" in data and "campaign_hash" in data:
            data = data["spec"]  # shard manifest: submit its embedded spec
        payload = data  # the service infers sweep vs boundary

    base_url = args.url or os.environ.get("REPRO_SERVE_URL") or "http://127.0.0.1:8765"
    client = ServeClient(ServeConfig(base_url=base_url, api_token=args.token))
    try:
        submission = client.submit(payload)
    except ServeError as exc:
        raise SystemExit(str(exc)) from None
    campaign_id = submission["id"]
    if submission.get("created"):
        print(f"campaign {campaign_id}: accepted")
    else:
        state = submission.get("campaign", {}).get("state", "?")
        print(f"campaign {campaign_id}: cache hit (already {state}, 0 new simulations)")
    if args.no_wait:
        if args.json:
            print(json.dumps(submission, indent=2, default=str))
        return 0

    try:
        if args.watch:
            t0: float | None = None
            for event in client.events(campaign_id, timeout_s=args.timeout):
                if event["event"] == "end":
                    break
                data = event["data"]
                if isinstance(data, dict) and "t" in data:
                    if t0 is None:
                        t0 = float(data["t"])
                    print(format_event(data, t0))
            doc = client.campaign(campaign_id)
        else:
            doc = client.wait(campaign_id, timeout_s=args.timeout)
    except (ServeError, TimeoutError) as exc:
        raise SystemExit(str(exc)) from None

    if args.json:
        print(json.dumps(doc, indent=2, default=str))
    else:
        result = doc.get("result") or {}
        scalars = {
            k: v for k, v in result.items() if not isinstance(v, (list, dict))
        }
        print(format_kv(scalars, title=f"Campaign {campaign_id} ({doc.get('state')})"))
        if doc.get("error"):
            print(f"ERROR: {doc['error']}", file=sys.stderr)
        try:
            aggregate = client.aggregate(campaign_id)
        except ServeError:
            aggregate = None
        if aggregate and aggregate.get("records"):
            print()
            print(format_kv(aggregate["overview"], title="Totals"))
    result = doc.get("result") or {}
    succeeded = doc.get("state") == "done" and bool(result.get("succeeded", True))
    return 0 if succeeded else 1


def _obs_diff(args: argparse.Namespace) -> int:
    """``obs diff``: regression-check one run against another (or the ledger)."""
    if args.trace_b and args.against_ledger:
        print("obs diff takes TRACE_B or --against-ledger, not both", file=sys.stderr)
        return 2
    if not args.trace_b and not args.against_ledger:
        print(
            "obs diff needs a second run: TRACE_B or --against-ledger LEDGER",
            file=sys.stderr,
        )
        return 2
    try:
        if args.against_ledger:
            candidate = summarize_run(args.trace, kind="run")
            entries = RunLedger(args.against_ledger).entries()
            others = [
                e for e in entries if e.trace_dir != candidate.trace_dir
            ] or entries
            if not others:
                print(f"no runs recorded in {args.against_ledger}", file=sys.stderr)
                return 2
            baseline = others[-1]
        else:
            baseline = summarize_run(args.trace, kind="run")
            candidate = summarize_run(args.trace_b, kind="run")
    except FileNotFoundError as exc:
        print(f"obs diff: {exc}", file=sys.stderr)
        return 2
    thresholds = DiffThresholds(
        p95_pct=args.p95_threshold,
        throughput_pct=args.throughput_threshold,
        phase_pct=args.phase_threshold,
    )
    doc = diff_summaries(baseline, candidate, thresholds=thresholds)
    if args.json:
        print(json.dumps(doc, indent=2, default=str))
    else:
        print(format_diff(doc))
    return 0 if doc["ok"] else 1


def _command_obs(args: argparse.Namespace) -> int:
    if args.action == "diff":
        return _obs_diff(args)
    if args.action == "top":
        if args.interval <= 0:
            raise SystemExit("--interval must be positive")
        if not Path(args.trace).exists():
            raise SystemExit(f"no trace at {args.trace}")
        return run_top(args.trace, interval_s=args.interval, once=args.once)
    if args.action == "report":
        try:
            events = load_events(args.trace)
        except FileNotFoundError as exc:
            print(f"obs report: {exc}", file=sys.stderr)
            return 2
        report = build_report(events, slowest=args.slowest, source=args.trace)
        if args.json:
            print(json.dumps(report, indent=2, default=str))
        else:
            print(format_report(report, title=f"Telemetry: {args.trace}"))
        return 0

    # tail: replay what exists (and keep following with --follow)
    if args.interval <= 0:
        raise SystemExit("--interval must be positive")
    t0: float | None = None
    try:
        # Without --follow, stop after the first empty poll (pure replay).
        stream = follow_trace(
            args.trace, poll_s=args.interval, max_polls=None if args.follow else 1
        )
        for event in stream:
            if t0 is None:
                t0 = float(event.get("t", 0.0))
            print(format_event(event, t0))
    except FileNotFoundError as exc:
        raise SystemExit(str(exc)) from None
    except KeyboardInterrupt:
        pass
    if t0 is None:
        print(f"no events in {args.trace}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point used by the ``repro-pns`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "table2":
        return _command_table2(args)
    if args.command == "figure":
        return _command_figure(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "shard":
        return _command_shard(args)
    if args.command == "boundary":
        return _command_boundary(args)
    if args.command == "store":
        return _command_store(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "submit":
        return _command_submit(args)
    if args.command == "obs":
        return _command_obs(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
