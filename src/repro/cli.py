"""Command-line entry point: run the paper's experiments from a terminal.

Examples
--------
Run the governor against a synthetic full-sun harvest for ten minutes::

    repro-pns run --governor power-neutral --duration 600 --weather full_sun

Reproduce Table II (shortened)::

    repro-pns table2 --duration 900

Reproduce a characterisation figure (with a reproducible irradiance seed)::

    repro-pns figure fig12 --seed 3

Run a 24-scenario governor × weather × capacitance campaign on two worker
processes, then resume it (all cells cached)::

    repro-pns sweep --workers 2 --store campaign.jsonl
    repro-pns sweep --workers 2 --store campaign.jsonl --resume

Campaigns are not limited to the outdoor PV rig — swap the supply component
or run a built-in preset::

    repro-pns sweep --supply constant-power --supply-param power_w=2.5
    repro-pns sweep --preset fig11-governors --store fig11.jsonl
    repro-pns sweep --preset constant-power-survival --workers 4
"""

from __future__ import annotations

import argparse
import functools
import inspect
import sys
from pathlib import Path
from typing import Callable

from .analysis.reporting import format_kv, format_series, format_table
from .core.governor import PowerNeutralGovernor
from .core.parameters import PAPER_TUNED_PARAMETERS
from .energy.irradiance import WeatherCondition
from .experiments import characterisation, evaluation
from .experiments.scenarios import run_pv_experiment
from .governors.base import Governor
from .governors.linux import (
    ConservativeGovernor,
    InteractiveGovernor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)
from .governors.single_core_dfs import SingleCoreDFSGovernor
from .governors.solartune import SolarTuneGovernor
from . import sweep as sweep_module

__all__ = ["main", "build_parser", "GOVERNOR_FACTORIES"]

#: Governors selectable from the command line.
GOVERNOR_FACTORIES: dict[str, Callable[[], Governor]] = {
    "power-neutral": lambda: PowerNeutralGovernor(PAPER_TUNED_PARAMETERS),
    "performance": PerformanceGovernor,
    "powersave": PowersaveGovernor,
    "ondemand": OndemandGovernor,
    "conservative": ConservativeGovernor,
    "interactive": InteractiveGovernor,
    "single-core-dfs": SingleCoreDFSGovernor,
    "solartune": SolarTuneGovernor,
}

#: Characterisation figure generators selectable from the command line.
FIGURE_FUNCTIONS: dict[str, Callable[[], dict]] = {
    "fig1": characterisation.fig1_solar_day,
    "fig3": characterisation.fig3_concept,
    "fig4": characterisation.fig4_power_vs_frequency,
    "fig6": characterisation.fig6_shadowing_simulation,
    "fig7": characterisation.fig7_performance_vs_power,
    "fig10": characterisation.fig10_transition_latency,
    "table1": characterisation.table1_buffer_capacitance,
    "fig11": evaluation.fig11_controlled_supply,
    "fig12": evaluation.fig12_voltage_stability,
    "fig13": evaluation.fig13_iv_and_operating_voltage,
    "fig14": evaluation.fig14_power_tracking,
    "fig15": evaluation.fig15_overhead,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-pns",
        description="Power-neutral performance scaling for energy-harvesting MP-SoCs (DATE 2017) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one governor against a synthetic solar harvest")
    run.add_argument("--governor", choices=sorted(GOVERNOR_FACTORIES), default="power-neutral")
    run.add_argument("--duration", type=float, default=600.0, help="simulated duration in seconds")
    run.add_argument(
        "--weather",
        choices=[w.value for w in WeatherCondition],
        default=WeatherCondition.FULL_SUN.value,
    )
    run.add_argument("--seed", type=int, default=7, help="irradiance generator seed")
    run.add_argument("--capacitance-mf", type=float, default=47.0, help="buffer capacitance in mF")

    table2 = sub.add_parser("table2", help="reproduce the Table II governor comparison")
    table2.add_argument("--duration", type=float, default=900.0)
    table2.add_argument("--seed", type=int, default=11)

    figure = sub.add_parser("figure", help="reproduce one characterisation/evaluation figure")
    figure.add_argument("name", choices=sorted(FIGURE_FUNCTIONS))
    figure.add_argument(
        "--seed",
        type=int,
        default=None,
        help="irradiance generator seed (applied when the figure takes one)",
    )
    figure.add_argument(
        "--duration",
        type=float,
        default=None,
        help="simulated duration in seconds (applied when the figure takes one)",
    )

    sweep = sub.add_parser(
        "sweep",
        help="run a scenario campaign (any supply/platform/capacitor/governor combination) over worker processes",
        description=(
            "Expand a declarative scenario grid, run it serially or over a process "
            "pool, and persist one JSONL record per scenario keyed by the config's "
            "content hash. Re-running against the same store (--resume) recomputes "
            "nothing that already succeeded. The rig is composable: --supply picks "
            "the source (pv-array, controlled-voltage, constant-power, trace-file) "
            "with --supply-param KEY=VALUE knobs, or --preset runs a built-in "
            "campaign (e.g. the Fig. 11 controlled-supply governor sweep)."
        ),
    )
    sweep.add_argument(
        "--preset",
        choices=sweep_module.preset_names(),
        default=None,
        help="run a built-in campaign preset instead of composing a grid from flags",
    )
    sweep.add_argument(
        "--supply",
        choices=sweep_module.SUPPLIES.names(),
        default="pv-array",
        help="supply component kind driving every scenario (default: %(default)s)",
    )
    sweep.add_argument(
        "--supply-param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="set one supply parameter, e.g. power_w=2.5 or profile=fig11 (repeatable)",
    )
    sweep.add_argument(
        "--governors",
        default="power-neutral,powersave,ondemand,conservative",
        help="comma-separated governor names, or 'all' (default: %(default)s)",
    )
    sweep.add_argument(
        "--weather",
        default="full_sun,partial_sun,cloud",
        help="comma-separated weather presets (pv-array supply only; default: %(default)s)",
    )
    sweep.add_argument(
        "--capacitance-mf",
        default="15.4,47",
        help="comma-separated buffer capacitances in mF (default: %(default)s)",
    )
    sweep.add_argument(
        "--seeds",
        default="7",
        help="comma-separated irradiance seeds (pv-array supply only; default: %(default)s)",
    )
    sweep.add_argument(
        "--duration",
        type=float,
        default=None,
        help="simulated seconds per scenario (default: 60, or the preset's own default)",
    )
    sweep.add_argument(
        "--workload",
        choices=sorted(sweep_module.WORKLOADS),
        default="table2-render",
        help="work-unit model for throughput metrics",
    )
    sweep.add_argument(
        "--shadow",
        action="append",
        default=[],
        metavar="START:DURATION:ATTENUATION",
        help="add a deterministic shadowing event to every scenario (pv-array only; repeatable)",
    )
    sweep.add_argument("--workers", type=int, default=2, help="worker processes (1 = inline)")
    sweep.add_argument(
        "--timeout", type=float, default=600.0, help="per-scenario wall-clock budget in seconds"
    )
    sweep.add_argument(
        "--store",
        default="sweep_results.jsonl",
        help="JSONL result store path (default: %(default)s)",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume against the existing store, skipping every scenario it already "
            "completed (this is also the default behaviour; the flag makes it explicit)"
        ),
    )
    sweep.add_argument(
        "--fresh",
        action="store_true",
        help="delete the existing store first and recompute every scenario",
    )
    sweep.add_argument(
        "--series",
        type=int,
        default=0,
        metavar="N",
        help="store each scenario's time series decimated to N samples (0 = summaries only)",
    )
    sweep.add_argument(
        "--quiet", action="store_true", help="suppress the per-scenario progress lines"
    )

    return parser


def _command_run(args: argparse.Namespace) -> int:
    governor = GOVERNOR_FACTORIES[args.governor]()
    result = run_pv_experiment(
        governor,
        duration_s=args.duration,
        weather=WeatherCondition(args.weather),
        seed=args.seed,
        capacitance_f=args.capacitance_mf * 1e-3,
    )
    print(format_kv(result.summary(), title=f"Run summary ({args.governor})"))
    print()
    print(format_series("V_C", result.times, result.supply_voltage, units="V"))
    print(format_series("consumed power", result.times, result.consumed_power, units="W"))
    return 0


def _command_table2(args: argparse.Namespace) -> int:
    data = evaluation.table2_governor_comparison(duration_s=args.duration, seed=args.seed)
    print(format_table(data["rows"], title=f"Table II ({args.duration:.0f} s test)"))
    if data["instruction_improvement_vs_powersave"] is not None:
        print(
            f"\nInstructions vs Linux Powersave: "
            f"{100.0 * data['instruction_improvement_vs_powersave']:.1f}% more "
            f"(paper: +69.0%)"
        )
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    function = FIGURE_FUNCTIONS[args.name]
    accepted = set(inspect.signature(function).parameters)
    kwargs = {}
    for flag, parameter in (("seed", "seed"), ("duration", "duration_s")):
        value = getattr(args, flag)
        if value is None:
            continue
        if parameter in accepted:
            kwargs[parameter] = value
        else:
            print(f"note: {args.name} does not take --{flag}; ignoring", file=sys.stderr)
    data = function(**kwargs)
    for key, value in data.items():
        if key.startswith("_"):
            continue
        if key.endswith("rows") and isinstance(value, list):
            print(format_table(value, title=key))
            print()
        elif isinstance(value, dict) and "times" not in value:
            print(format_kv(value, title=key))
            print()
        elif not isinstance(value, (list, dict)):
            print(f"{key}: {value}")
    return 0


def _parse_csv(text: str, convert: Callable = str) -> list:
    try:
        values = [convert(part.strip()) for part in text.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(
            f"bad list option {text!r}; expected comma-separated {convert.__name__} values"
        ) from None
    if not values:
        raise SystemExit(f"empty list option: {text!r}")
    return values


def _parse_shadow(text: str) -> "sweep_module.ShadowSpec":
    try:
        start, duration, attenuation = (float(p) for p in text.split(":"))
    except ValueError:
        raise SystemExit(
            f"bad --shadow {text!r}; expected START:DURATION:ATTENUATION, e.g. 20:10:0.2"
        ) from None
    return sweep_module.ShadowSpec(start_s=start, duration_s=duration, attenuation=attenuation)


def _parse_param_value(text: str):
    """KEY=VALUE values: booleans, numbers, or strings."""
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    try:
        return float(text)
    except ValueError:
        return text.strip()


def _parse_params(pairs: list[str], flag: str) -> dict:
    params = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key.strip():
            raise SystemExit(f"bad {flag} {pair!r}; expected KEY=VALUE, e.g. power_w=2.5")
        params[key.strip()] = _parse_param_value(value)
    return params


#: The grid-shaping sweep flags whose "explicitly passed vs left at default"
#: status matters (for --preset conflicts and for not clobbering
#: --supply-param values with built-in default grids).
_SWEEP_GRID_FLAGS: tuple[str, ...] = (
    "governors",
    "weather",
    "capacitance_mf",
    "seeds",
    "workload",
    "supply",
    "supply_param",
    "shadow",
)


@functools.lru_cache(maxsize=1)
def _sweep_grid_flag_defaults() -> dict:
    """The parser's own defaults for the grid-shaping flags.

    Derived by parsing a bare ``sweep`` invocation so this never drifts from
    :func:`build_parser` (the single source of truth for defaults).
    """
    defaults = build_parser().parse_args(["sweep"])
    return {name: getattr(defaults, name) for name in _SWEEP_GRID_FLAGS}


def _explicit_grid_flags(args: argparse.Namespace) -> list[str]:
    """The grid-shaping flags the user actually set (differ from defaults)."""
    return [
        "--" + name.replace("_", "-")
        for name, default in _sweep_grid_flag_defaults().items()
        if getattr(args, name) != default
    ]


def _build_sweep_spec(args: argparse.Namespace) -> "sweep_module.SweepSpec":
    """Turn the sweep flags (or a preset name) into a SweepSpec."""
    if args.preset is not None:
        conflicting = _explicit_grid_flags(args)
        if conflicting:
            raise SystemExit(
                f"--preset {args.preset} composes its own grid; "
                f"drop the conflicting flag(s): {', '.join(conflicting)}"
            )
        try:
            return sweep_module.build_preset(args.preset, duration_s=args.duration)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None

    if args.governors.strip().lower() == "all":
        governors = sweep_module.GOVERNORS.names()
    else:
        governors = _parse_csv(args.governors)
    for name in governors:
        if name not in sweep_module.GOVERNORS:
            raise SystemExit(
                f"unknown governor {name!r}; known: {', '.join(sweep_module.GOVERNORS.names())}"
            )

    supply = sweep_module.ComponentSpec(
        kind=args.supply, params=_parse_params(args.supply_param, "--supply-param")
    )
    pv = supply.kind == "pv-array"
    weather_explicit = args.weather != _sweep_grid_flag_defaults()["weather"]
    seeds_explicit = args.seeds != _sweep_grid_flag_defaults()["seeds"]

    if not pv:
        # Weather/seed/shadowing are pv-array dimensions; reject them loudly
        # instead of silently running a different campaign.
        for flag, explicit in (("--weather", weather_explicit), ("--seeds", seeds_explicit)):
            if explicit:
                raise SystemExit(
                    f"{flag} only applies to the pv-array supply (got {supply.kind!r})"
                )
        if args.shadow:
            raise SystemExit(f"--shadow only applies to the pv-array supply (got {supply.kind!r})")
        weather = None
        seeds = None
    else:
        weather = _parse_csv(args.weather)
        for name in weather:
            try:
                WeatherCondition(name)
            except ValueError:
                raise SystemExit(
                    f"unknown weather {name!r}; known: {', '.join(w.value for w in WeatherCondition)}"
                ) from None
        seeds = _parse_csv(args.seeds, int)
        # A condition pinned via --supply-param stays authoritative unless
        # the corresponding axis flag was passed explicitly.
        if supply.get("weather") is not None and not weather_explicit:
            weather = None
        if supply.get("seed") is not None and not seeds_explicit:
            seeds = None

    try:
        return sweep_module.SweepSpec.grid(
            governors=governors,
            weather=weather,
            capacitances_f=[1e-3 * c for c in _parse_csv(args.capacitance_mf, float)],
            seeds=seeds,
            duration_s=args.duration if args.duration is not None else 60.0,
            workload=args.workload,
            shadowing=[_parse_shadow(s) for s in args.shadow],
            supply=supply,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _command_sweep(args: argparse.Namespace) -> int:
    spec = _build_sweep_spec(args)

    if args.fresh and args.resume:
        raise SystemExit("--fresh and --resume are mutually exclusive")
    store_path = Path(args.store)
    if store_path.exists() and args.fresh:
        store_path.unlink()
        print(f"starting fresh campaign (deleted existing {store_path})")
    store = sweep_module.ResultStore(store_path)
    if len(store):
        print(
            f"resuming: {len(store)} record(s) already in {store_path} "
            "(pass --fresh to recompute everything)"
        )
    if store.legacy_count:
        versions = ", ".join(
            f"v{v}: {n}"
            for v, n in store.version_counts().items()
            if v < sweep_module.SCHEMA_VERSION
        )
        print(
            f"note: {store.legacy_count} record(s) use an older config schema "
            f"({versions}); they are kept but will not cache-hit new-schema scenarios"
        )

    def progress(done: int, total: int, record: dict, cached: bool) -> None:
        if args.quiet:
            return
        status = "cached" if cached else record.get("status", "?")
        config = sweep_module.ScenarioConfig.from_dict(record["config"])
        elapsed = record.get("elapsed_s")
        suffix = f" ({elapsed:.1f}s)" if elapsed is not None and not cached else ""
        print(f"  [{done}/{total}] {status:7s} {config.label()}{suffix}")

    runner = sweep_module.SweepRunner(
        store,
        workers=args.workers,
        timeout_s=args.timeout,
        series_samples=args.series,
        progress=progress,
    )
    mode = f"{args.workers} worker processes" if args.workers > 1 else "inline (serial)"
    title = f"preset {args.preset!r}" if args.preset else "sweep"
    print(f"{title}: {len(spec)} scenarios over {mode} -> {store_path}")
    report = runner.run(spec)

    print()
    print(format_kv(report.summary(), title="Campaign"))
    ok_records = report.ok_records()
    if ok_records:
        print()
        print(format_kv(sweep_module.campaign_overview(report.records), title="Totals"))
        for axis in spec.axes:
            print()
            print(
                format_table(
                    sweep_module.axis_summary(ok_records, axis.name),
                    title=f"By {axis.name} (mean/p50/p95 across the other axes)",
                )
            )
        if any(sweep_module.resolve_axis_path(axis.name) == "governor" for axis in spec.axes):
            print()
            print(format_table(sweep_module.table2_rows(ok_records), title="Table II view"))
    for record in report.records:
        if record.get("status") not in (None, "ok"):
            config = record.get("config", {})
            governor = config.get("governor")
            if isinstance(governor, dict):
                governor = governor.get("kind")
            print(
                f"FAILED {record.get('scenario_id')} "
                f"({governor}): {record.get('error')}",
                file=sys.stderr,
            )
    return 0 if report.succeeded else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point used by the ``repro-pns`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "table2":
        return _command_table2(args)
    if args.command == "figure":
        return _command_figure(args)
    if args.command == "sweep":
        return _command_sweep(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
