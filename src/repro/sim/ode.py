"""Adaptive Runge-Kutta 2(3) integrator (Bogacki–Shampine pair).

The paper's parameter-selection study (Section III) was performed in
Matlab-Simulink using the ``ode23`` solver.  ``ode23`` implements the
Bogacki–Shampine explicit Runge-Kutta 2(3) pair; this module provides the
same method so the circuit-level simulations in :mod:`repro.sim.circuit` and
the tuning study in :mod:`repro.core.tuning` use numerics of the same class.

Only the features the reproduction needs are implemented: dense output is
omitted, but adaptive step-size control with absolute/relative tolerances and
a maximum step are provided, plus simple fixed-step Euler and RK4 helpers used
by tests as references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["IntegrationResult", "integrate_rk23", "integrate_euler", "integrate_rk4"]

StateFunction = Callable[[float, np.ndarray], np.ndarray]


@dataclass
class IntegrationResult:
    """Result of an ODE integration: sample times, states and statistics."""

    times: np.ndarray
    states: np.ndarray
    n_steps: int
    n_rejected: int

    @property
    def final_state(self) -> np.ndarray:
        return self.states[-1]

    def state_at(self, t: float) -> np.ndarray:
        """Linearly interpolated state at an arbitrary time.

        One searchsorted over the time grid and one vectorised blend across
        all state columns (instead of a per-column ``np.interp`` pass).
        """
        times = self.times
        t = float(t)
        if t <= times[0]:
            return self.states[0].copy()
        if t >= times[-1]:
            return self.states[-1].copy()
        j = int(np.searchsorted(times, t, side="right")) - 1
        t0 = times[j]
        t1 = times[j + 1]
        if t1 == t0:
            return self.states[j + 1].copy()
        w = (t - t0) / (t1 - t0)
        return self.states[j] + w * (self.states[j + 1] - self.states[j])


def _as_state(y) -> np.ndarray:
    arr = np.atleast_1d(np.asarray(y, dtype=float))
    if arr.ndim != 1:
        raise ValueError("state must be a scalar or one-dimensional array")
    return arr


def integrate_rk23(
    f: StateFunction,
    t_span: tuple[float, float],
    y0,
    rtol: float = 1e-4,
    atol: float = 1e-7,
    max_step: float = np.inf,
    first_step: float | None = None,
) -> IntegrationResult:
    """Integrate ``dy/dt = f(t, y)`` with the Bogacki–Shampine RK2(3) pair.

    Parameters
    ----------
    f:
        Right-hand side; called as ``f(t, y)`` and returning an array like
        ``y``.
    t_span:
        ``(t0, t1)`` integration interval, ``t1 > t0``.
    y0:
        Initial state (scalar or 1-D array).
    rtol / atol:
        Relative and absolute error tolerances for step-size control.
    max_step:
        Upper bound on the step size.
    first_step:
        Initial step size guess (defaults to 1/100 of the interval, capped by
        ``max_step``).
    """
    t0, t1 = float(t_span[0]), float(t_span[1])
    if t1 <= t0:
        raise ValueError("t_span must satisfy t1 > t0")
    if rtol <= 0 or atol <= 0:
        raise ValueError("tolerances must be positive")
    if max_step <= 0:
        raise ValueError("max_step must be positive")

    y = _as_state(y0)
    t = t0
    h = first_step if first_step is not None else min((t1 - t0) / 100.0, max_step)
    h = min(h, max_step, t1 - t0)

    times = [t]
    states = [y.copy()]
    n_steps = 0
    n_rejected = 0

    k1 = np.asarray(f(t, y), dtype=float)

    # Bogacki–Shampine coefficients.
    while t < t1:
        h = min(h, t1 - t, max_step)
        if h <= 1e-15 * max(abs(t), 1.0):
            # Step underflow: accept whatever remains in one final step.
            h = t1 - t

        k2 = np.asarray(f(t + 0.5 * h, y + 0.5 * h * k1), dtype=float)
        k3 = np.asarray(f(t + 0.75 * h, y + 0.75 * h * k2), dtype=float)
        y_new = y + h * (2.0 / 9.0 * k1 + 1.0 / 3.0 * k2 + 4.0 / 9.0 * k3)
        k4 = np.asarray(f(t + h, y_new), dtype=float)
        # Embedded 2nd-order solution for the error estimate.
        y_err = h * (
            (2.0 / 9.0 - 7.0 / 24.0) * k1
            + (1.0 / 3.0 - 1.0 / 4.0) * k2
            + (4.0 / 9.0 - 1.0 / 3.0) * k3
            + (0.0 - 1.0 / 8.0) * k4
        )

        scale = atol + rtol * np.maximum(np.abs(y), np.abs(y_new))
        error_norm = float(np.sqrt(np.mean((y_err / scale) ** 2)))

        if error_norm <= 1.0 or h <= 1e-12:
            # Accept the step.
            t += h
            y = y_new
            k1 = k4  # FSAL: last stage is the first stage of the next step.
            times.append(t)
            # y is rebound (never mutated in place), so no defensive copy.
            states.append(y)
            n_steps += 1
            # Step-size growth (bounded).
            factor = 0.9 * (1.0 / max(error_norm, 1e-10)) ** (1.0 / 3.0)
            h *= min(max(factor, 0.2), 5.0)
        else:
            n_rejected += 1
            factor = 0.9 * (1.0 / error_norm) ** (1.0 / 3.0)
            h *= min(max(factor, 0.1), 1.0)

    return IntegrationResult(
        times=np.array(times),
        states=np.array(states),
        n_steps=n_steps,
        n_rejected=n_rejected,
    )


def _fixed_step_buffers(t0: float, t1: float, dt: float, dim: int):
    """Preallocated output buffers for a fixed-step integration.

    Sized for the nominal step count plus slack for floating-point
    accumulation of the time variable; the integrators fill them positionally
    and slice at the end, avoiding the per-step ``list.append`` plus the
    final ``np.array`` copy of the previous implementation.
    """
    capacity = int((t1 - t0) / dt) + 3
    return np.empty(capacity), np.empty((capacity, dim))


def integrate_euler(
    f: StateFunction, t_span: tuple[float, float], y0, dt: float
) -> IntegrationResult:
    """Fixed-step explicit Euler integration (reference implementation)."""
    t0, t1 = float(t_span[0]), float(t_span[1])
    if t1 <= t0:
        raise ValueError("t_span must satisfy t1 > t0")
    if dt <= 0:
        raise ValueError("dt must be positive")
    y = _as_state(y0)
    times, states = _fixed_step_buffers(t0, t1, dt, len(y))
    times[0] = t0
    states[0] = y
    t = t0
    n = 0
    while t < t1:
        h = min(dt, t1 - t)
        y = y + h * np.asarray(f(t, y), dtype=float)
        t += h
        n += 1
        times[n] = t
        states[n] = y
    return IntegrationResult(times[: n + 1], states[: n + 1], n_steps=n, n_rejected=0)


def integrate_rk4(
    f: StateFunction, t_span: tuple[float, float], y0, dt: float
) -> IntegrationResult:
    """Fixed-step classic Runge-Kutta 4 integration (reference implementation)."""
    t0, t1 = float(t_span[0]), float(t_span[1])
    if t1 <= t0:
        raise ValueError("t_span must satisfy t1 > t0")
    if dt <= 0:
        raise ValueError("dt must be positive")
    y = _as_state(y0)
    times, states = _fixed_step_buffers(t0, t1, dt, len(y))
    times[0] = t0
    states[0] = y
    t = t0
    n = 0
    while t < t1:
        h = min(dt, t1 - t)
        k1 = np.asarray(f(t, y), dtype=float)
        k2 = np.asarray(f(t + 0.5 * h, y + 0.5 * h * k1), dtype=float)
        k3 = np.asarray(f(t + 0.5 * h, y + 0.5 * h * k2), dtype=float)
        k4 = np.asarray(f(t + h, y + h * k3), dtype=float)
        y = y + (h / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
        t += h
        n += 1
        times[n] = t
        states[n] = y
    return IntegrationResult(times[: n + 1], states[: n + 1], n_steps=n, n_rejected=0)
