"""Stand-alone electrical studies of the energy-harvesting node.

The full system simulator (:mod:`repro.sim.simulator`) couples the node to the
governor and the platform state machine.  For circuit-level questions that do
not need the governor — "how long does a given capacitor hold the board up
when the light disappears?", "what does V_C do under a fixed load?" — this
module integrates the bare node equation

    C * dV_C/dt = I_pv(V_C, t) - P_load(t) / V_C - I_leak(V_C)

with the RK23 integrator, which is also how the conceptual Fig. 3 comparison
(tiny capacitor alone vs. performance scaling) is produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..energy.supercapacitor import Supercapacitor
from .ode import IntegrationResult, integrate_rk23
from .supplies import Supply

__all__ = ["NodeSimulationResult", "simulate_node", "time_to_undervoltage"]


@dataclass
class NodeSimulationResult:
    """Voltage trajectory of the harvesting node under a prescribed load."""

    times: np.ndarray
    voltage: np.ndarray
    integration: IntegrationResult

    def voltage_at(self, t: float) -> float:
        return float(np.interp(t, self.times, self.voltage))

    def minimum_voltage(self) -> float:
        return float(np.min(self.voltage))

    def first_time_below(self, threshold: float) -> float | None:
        """First time the node voltage drops below ``threshold`` (None if never)."""
        below = np.nonzero(self.voltage < threshold)[0]
        if len(below) == 0:
            return None
        return float(self.times[below[0]])


def simulate_node(
    supply: Supply,
    capacitor: Supercapacitor,
    load_power: Callable[[float, float], float],
    duration_s: float,
    initial_voltage: float,
    rtol: float = 1e-5,
    atol: float = 1e-6,
    max_step: float = 0.05,
) -> NodeSimulationResult:
    """Integrate the node equation for a prescribed load-power function.

    Parameters
    ----------
    supply:
        The harvesting source.
    capacitor:
        The buffer capacitor (its ``voltage`` state is not modified).
    load_power:
        Called as ``load_power(t, v)`` and returning the board power in watts
        (may depend on the node voltage, e.g. to model the load switching off
        below the minimum operating voltage).
    duration_s:
        Simulated duration.
    initial_voltage:
        Node voltage at t = 0.
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    if initial_voltage < 0:
        raise ValueError("initial_voltage must be non-negative")

    def dvdt(t: float, y: np.ndarray) -> np.ndarray:
        v = float(max(y[0], 0.0))
        p = max(load_power(t, v), 0.0)
        i_load = p / max(v, 0.25)
        i_supply = supply.current(v, t)
        return np.array([capacitor.derivative(i_supply - i_load, v)])

    integration = integrate_rk23(
        dvdt,
        (0.0, duration_s),
        np.array([initial_voltage]),
        rtol=rtol,
        atol=atol,
        max_step=max_step,
    )
    voltage = np.clip(integration.states[:, 0], 0.0, None)
    return NodeSimulationResult(times=integration.times, voltage=voltage, integration=integration)


def time_to_undervoltage(
    supply: Supply,
    capacitor: Supercapacitor,
    load_power_w: float,
    minimum_voltage: float,
    initial_voltage: float,
    horizon_s: float = 60.0,
) -> float | None:
    """How long a constant load can be sustained before undervoltage.

    Returns ``None`` if the node never drops below ``minimum_voltage`` within
    the horizon (i.e. the harvest sustains the load indefinitely at this
    level).  This is the "marginal lifetime increase" quantity of Fig. 3.
    """
    result = simulate_node(
        supply=supply,
        capacitor=capacitor,
        load_power=lambda t, v: load_power_w,
        duration_s=horizon_s,
        initial_voltage=initial_voltage,
    )
    return result.first_time_below(minimum_voltage)
