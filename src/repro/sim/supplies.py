"""Supply models: what feeds the harvesting node.

Two kinds of supply appear in the paper's evaluation:

* a **PV array under an irradiance trace** (Sections V-B/C/D) — the supply
  injects the array's I-V current at the present node voltage, so the
  operating point on the I-V curve emerges from the load; and
* a **controlled laboratory supply** (Section V-A, Fig. 11) — a stiff voltage
  source whose programmed profile the node voltage simply follows, used to
  verify that the governor responds correctly to a changing input voltage.

Both implement the small :class:`Supply` interface consumed by the system
simulator.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..energy.pv_array import PVArray
from ..energy.traces import IrradianceTrace, Trace

__all__ = ["Supply", "PVArraySupply", "ControlledVoltageSupply", "ConstantPowerSupply"]


class Supply(ABC):
    """Interface between the harvesting source and the node equation."""

    #: Whether the supply pins the node voltage directly (ideal voltage source).
    is_voltage_source: bool = False

    @abstractmethod
    def current(self, voltage: float, t: float) -> float:
        """Current injected into the node at node voltage ``voltage`` and time ``t``."""

    def voltage(self, t: float) -> float:
        """Node voltage imposed by a stiff supply (voltage sources only)."""
        raise NotImplementedError("this supply does not impose a node voltage")

    @abstractmethod
    def available_power(self, t: float) -> float:
        """Maximum power the supply could deliver at time ``t`` (for Fig. 14)."""

    @abstractmethod
    def open_circuit_voltage(self, t: float) -> float:
        """Unloaded node voltage at time ``t`` (used for initial conditions)."""


class PVArraySupply(Supply):
    """A PV array illuminated by an irradiance trace.

    Parameters
    ----------
    array:
        The PV array model.
    irradiance:
        Irradiance trace in W/m^2; times outside the trace clamp to its ends.
    mpp_cache_points:
        The available-power curve (P_mpp vs irradiance) is pre-computed on a
        grid of this many irradiance values and interpolated, because locating
        the MPP exactly at every simulation step would dominate the run time.
    """

    is_voltage_source = False

    def __init__(self, array: PVArray, irradiance: IrradianceTrace, mpp_cache_points: int = 64):
        if mpp_cache_points < 2:
            raise ValueError("mpp_cache_points must be at least 2")
        self.array = array
        self.irradiance = irradiance
        g_max = max(float(irradiance.maximum()), 1.0)
        self._cache_irradiances = np.linspace(0.0, g_max, mpp_cache_points)
        self._cache_mpp_power = np.array(
            [array.power_at_mpp(g) if g > 0 else 0.0 for g in self._cache_irradiances]
        )
        self._cache_voc = np.array(
            [array.open_circuit_voltage(g) if g > 0 else 0.0 for g in self._cache_irradiances]
        )

    def irradiance_at(self, t: float) -> float:
        return self.irradiance.value_at(t)

    def current(self, voltage: float, t: float) -> float:
        return self.array.current(voltage, self.irradiance_at(t))

    def available_power(self, t: float) -> float:
        g = self.irradiance_at(t)
        return float(np.interp(g, self._cache_irradiances, self._cache_mpp_power))

    def open_circuit_voltage(self, t: float) -> float:
        g = self.irradiance_at(t)
        return float(np.interp(g, self._cache_irradiances, self._cache_voc))


class ControlledVoltageSupply(Supply):
    """A stiff laboratory supply whose voltage follows a programmed trace.

    The node voltage equals the programmed voltage regardless of the load
    (within the supply's current limit, which we expose only for the
    available-power estimate).
    """

    is_voltage_source = True

    def __init__(self, voltage_trace: Trace, current_limit_a: float = 3.0):
        if current_limit_a <= 0:
            raise ValueError("current_limit_a must be positive")
        self.voltage_trace = voltage_trace
        self.current_limit_a = current_limit_a

    def voltage(self, t: float) -> float:
        return self.voltage_trace.value_at(t)

    def current(self, voltage: float, t: float) -> float:
        # A stiff source supplies whatever the load draws; the simulator does
        # not integrate the node when the supply is a voltage source, so this
        # is only used for power accounting.
        return self.current_limit_a

    def available_power(self, t: float) -> float:
        return self.voltage(t) * self.current_limit_a

    def open_circuit_voltage(self, t: float) -> float:
        return self.voltage(t)


class ConstantPowerSupply(Supply):
    """An idealised source that delivers a fixed power at any voltage.

    Useful for unit tests and for the conceptual Fig. 3 study where the
    harvested power is prescribed directly rather than through an I-V curve.
    """

    is_voltage_source = False

    def __init__(self, power_trace: Trace, voltage_limit: float = 6.5):
        if voltage_limit <= 0:
            raise ValueError("voltage_limit must be positive")
        self.power_trace = power_trace
        self.voltage_limit = voltage_limit

    def current(self, voltage: float, t: float) -> float:
        power = max(self.power_trace.value_at(t), 0.0)
        if voltage >= self.voltage_limit:
            return 0.0
        return power / max(voltage, 0.5)

    def available_power(self, t: float) -> float:
        return max(self.power_trace.value_at(t), 0.0)

    def open_circuit_voltage(self, t: float) -> float:
        return self.voltage_limit
