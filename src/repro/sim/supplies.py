"""Supply models: what feeds the harvesting node.

Two kinds of supply appear in the paper's evaluation:

* a **PV array under an irradiance trace** (Sections V-B/C/D) — the supply
  injects the array's I-V current at the present node voltage, so the
  operating point on the I-V curve emerges from the load; and
* a **controlled laboratory supply** (Section V-A, Fig. 11) — a stiff voltage
  source whose programmed profile the node voltage simply follows, used to
  verify that the governor responds correctly to a changing input voltage.

Both implement the small :class:`Supply` interface consumed by the system
simulator.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..energy.pv_array import PVArray
from ..energy.traces import IrradianceTrace, Trace, TraceCursor

__all__ = [
    "Supply",
    "IVSurfaceTable",
    "PVArraySupply",
    "ControlledVoltageSupply",
    "ConstantPowerSupply",
]


class Supply(ABC):
    """Interface between the harvesting source and the node equation."""

    #: Whether the supply pins the node voltage directly (ideal voltage source).
    is_voltage_source: bool = False

    @abstractmethod
    def current(self, voltage: float, t: float) -> float:
        """Current injected into the node at node voltage ``voltage`` and time ``t``."""

    def voltage(self, t: float) -> float:
        """Node voltage imposed by a stiff supply (voltage sources only)."""
        raise NotImplementedError("this supply does not impose a node voltage")

    @abstractmethod
    def available_power(self, t: float) -> float:
        """Maximum power the supply could deliver at time ``t`` (for Fig. 14)."""

    @abstractmethod
    def open_circuit_voltage(self, t: float) -> float:
        """Unloaded node voltage at time ``t`` (used for initial conditions)."""

    def step_current_fn(self):
        """A fused ``current(v, t)`` callable for the simulator's hot loop.

        Subclasses with a cheap closed-form evaluation return a flat closure
        (no attribute lookups, no nested method calls per evaluation); the
        default is simply the bound :meth:`current`.  The returned callable
        may carry its own trace cursor, so it expects (amortised) monotone
        ``t`` — exactly the simulator's access pattern.
        """
        return self.current


class IVSurfaceTable:
    """Bilinear interpolation of a PV array's I-V surface on a uniform grid.

    The table stores clipped terminal currents on a uniform
    (voltage x irradiance) grid covering the voltages and irradiances a
    simulation can visit.  A lookup is a handful of Python float operations —
    no Lambert-W, no numpy dispatch — which is what makes the simulator's
    fast path fast.

    Construction measures the interpolation error against the exact
    Lambert-W solve at every grid-cell midpoint (where bilinear error peaks)
    and refines the grid until the worst error is below ``rel_tol``
    (raising if the refinement cap cannot achieve it).  The error is
    normalised by the full-scale current — the short-circuit current at the
    brightest tabulated irradiance — because the clipped surface has a slope
    kink along the open-circuit boundary where a locally-relative measure
    would be unsatisfiable at any practical grid size, while the quantity
    that bounds simulation error is the absolute current error against the
    currents the node actually integrates.

    Alongside the surface, the table carries the two 1-D curves the
    simulator samples on record ticks — MPP power and open-circuit voltage
    vs irradiance — on the same irradiance grid, so :meth:`mpp_power` and
    :meth:`open_circuit_voltage` are a couple of float operations instead of
    a ``np.interp`` dispatch each.
    """

    __slots__ = (
        "v_max",
        "g_max",
        "_nv",
        "_ng",
        "_inv_dv",
        "_inv_dg",
        "_rows",
        "_mpp_row",
        "_voc_row",
        "max_rel_error",
    )

    #: Hard cap on grid refinement (per axis) before construction fails.
    _MAX_REFINEMENTS = 3

    def __init__(
        self,
        array: PVArray,
        g_max: float,
        voltage_points: int = 193,
        irradiance_points: int = 129,
        rel_tol: float = 5e-3,
    ):
        if voltage_points < 2 or irradiance_points < 2:
            raise ValueError("table needs at least 2 points per axis")
        if rel_tol <= 0:
            raise ValueError("rel_tol must be positive")
        self.g_max = max(float(g_max), 1.0)
        # Past the open-circuit voltage the (clipped) current is identically
        # zero, so the voltage axis only needs to reach Voc at the brightest
        # irradiance; lookups beyond the edge clamp onto that all-zero row.
        self.v_max = float(array.open_circuit_voltage(self.g_max)) * 1.02

        nv, ng = int(voltage_points), int(irradiance_points)
        for refinement in range(self._MAX_REFINEMENTS + 1):
            voltages = np.linspace(0.0, self.v_max, nv)
            irradiances = np.linspace(0.0, self.g_max, ng)
            surface = array.current_surface(voltages, irradiances)
            error = self._midpoint_error(array, voltages, irradiances, surface)
            if error <= rel_tol or refinement == self._MAX_REFINEMENTS:
                break
            nv = 2 * nv - 1
            ng = 2 * ng - 1
        if error > rel_tol:
            raise ValueError(
                f"I-V surface tabulation cannot reach rel_tol={rel_tol:g} "
                f"(best {error:.2e} on a {nv}x{ng} grid); use exact=True"
            )

        self._nv = nv
        self._ng = ng
        self._inv_dv = (nv - 1) / self.v_max
        self._inv_dg = (ng - 1) / self.g_max
        # Nested Python lists: element access beats numpy scalar indexing in
        # the per-step lookup by a wide margin.
        self._rows = surface.tolist()
        self._mpp_row = array.mpp_power_array(irradiances).tolist()
        self._voc_row = array.open_circuit_voltage_array(irradiances).tolist()
        self.max_rel_error = float(error)

    @staticmethod
    def _midpoint_error(array, voltages, irradiances, surface) -> float:
        """Worst full-scale-relative bilinear error at grid-cell midpoints."""
        v_mid = 0.5 * (voltages[:-1] + voltages[1:])
        g_mid = 0.5 * (irradiances[:-1] + irradiances[1:])
        exact = array.current_surface(v_mid, g_mid)
        interp = 0.25 * (
            surface[:-1, :-1] + surface[1:, :-1] + surface[:-1, 1:] + surface[1:, 1:]
        )
        full_scale = max(float(np.max(surface)), 1e-12)
        return float(np.max(np.abs(interp - exact))) / full_scale

    def current(self, voltage: float, irradiance: float) -> float:
        """Bilinearly interpolated clipped current (clamped to the grid)."""
        fx = voltage * self._inv_dv
        if fx <= 0.0:
            ix = 0
            wx = 0.0
        elif fx >= self._nv - 1:
            ix = self._nv - 2
            wx = 1.0
        else:
            ix = int(fx)
            wx = fx - ix
        fy = irradiance * self._inv_dg
        if fy <= 0.0:
            iy = 0
            wy = 0.0
        elif fy >= self._ng - 1:
            iy = self._ng - 2
            wy = 1.0
        else:
            iy = int(fy)
            wy = fy - iy
        r0 = self._rows[ix]
        r1 = self._rows[ix + 1]
        a = r0[iy]
        b = r1[iy]
        a += (r0[iy + 1] - a) * wy
        b += (r1[iy + 1] - b) * wy
        return a + (b - a) * wx

    def _sample_irradiance_row(self, row: list, irradiance: float) -> float:
        """Clamped linear interpolation of a 1-D curve on the irradiance grid."""
        fy = irradiance * self._inv_dg
        if fy <= 0.0:
            return row[0]
        if fy >= self._ng - 1:
            return row[-1]
        iy = int(fy)
        a = row[iy]
        return a + (row[iy + 1] - a) * (fy - iy)

    def mpp_power(self, irradiance: float) -> float:
        """Tabulated maximum-power-point power at an irradiance (W)."""
        return self._sample_irradiance_row(self._mpp_row, irradiance)

    def open_circuit_voltage(self, irradiance: float) -> float:
        """Tabulated open-circuit voltage at an irradiance (V)."""
        return self._sample_irradiance_row(self._voc_row, irradiance)


class PVArraySupply(Supply):
    """A PV array illuminated by an irradiance trace.

    By default the supply answers :meth:`current` — and, on record ticks,
    :meth:`available_power` / :meth:`open_circuit_voltage` — from a tabulated
    :class:`IVSurfaceTable` (the bilinear I-V surface plus its 1-D MPP/Voc
    curves): the simulator's fast path.  The table is built lazily, at the
    first fast lookup (so a supply immediately switched to ``exact`` never
    pays the tabulation cost), and its interpolation error is checked against
    the exact solve at build time, before any lookup is answered.
    ``exact=True`` bypasses tabulation and solves the single-diode equation
    (Lambert-W) on every call, with MPP/Voc answered from the original
    ``np.interp`` cache — the reference engine's numerics, preserved
    verbatim; the flag can also be toggled on a built supply.

    Parameters
    ----------
    array:
        The PV array model.
    irradiance:
        Irradiance trace in W/m^2; times outside the trace clamp to its ends.
    mpp_cache_points:
        The available-power curve (P_mpp vs irradiance) is pre-computed on a
        grid of this many irradiance values and interpolated, because locating
        the MPP exactly at every simulation step would dominate the run time.
    exact:
        Solve the I-V equation exactly per call instead of interpolating the
        tabulated surface.
    table_voltage_points / table_irradiance_points / table_rel_tol:
        Initial grid resolution and the accepted worst relative interpolation
        error of the tabulated surface (checked, and refined if necessary,
        when the table is built).
    """

    is_voltage_source = False

    def __init__(
        self,
        array: PVArray,
        irradiance: IrradianceTrace,
        mpp_cache_points: int = 64,
        exact: bool = False,
        table_voltage_points: int = 193,
        table_irradiance_points: int = 129,
        table_rel_tol: float = 5e-3,
    ):
        if mpp_cache_points < 2:
            raise ValueError("mpp_cache_points must be at least 2")
        self.array = array
        self.irradiance = irradiance
        g_max = max(float(irradiance.maximum()), 1.0)
        self._cache_irradiances = np.linspace(0.0, g_max, mpp_cache_points)
        self._cache_mpp_power = array.mpp_power_array(self._cache_irradiances)
        self._cache_voc = array.open_circuit_voltage_array(self._cache_irradiances)
        self._g_max = g_max
        self._g_cursor = TraceCursor(irradiance)
        self._table_voltage_points = int(table_voltage_points)
        self._table_irradiance_points = int(table_irradiance_points)
        self._table_rel_tol = float(table_rel_tol)
        self._table: IVSurfaceTable | None = None
        self._exact = bool(exact)

    def _build_table(self) -> IVSurfaceTable:
        return IVSurfaceTable(
            self.array,
            self._g_max,
            voltage_points=self._table_voltage_points,
            irradiance_points=self._table_irradiance_points,
            rel_tol=self._table_rel_tol,
        )

    @property
    def exact(self) -> bool:
        """Whether :meth:`current` solves the I-V equation exactly per call."""
        return self._exact

    @exact.setter
    def exact(self, value: bool) -> None:
        self._exact = bool(value)

    @property
    def iv_table(self) -> IVSurfaceTable | None:
        """The tabulated I-V surface (``None`` in exact mode).

        In fast mode the table is built — and its interpolation error
        checked — on first access, which is also what the first fast lookup
        does.  A previously built table is retained internally across
        ``exact`` toggles but never exposed while exact mode is active.
        """
        if self._exact:
            return None
        if self._table is None:
            self._table = self._build_table()
        return self._table

    def irradiance_at(self, t: float) -> float:
        return self.irradiance.value_at(t)

    def current(self, voltage: float, t: float) -> float:
        if self._exact:
            return self.array.current(voltage, self.irradiance.value_at(t))
        table = self._table
        if table is None:
            table = self._table = self._build_table()
        return table.current(voltage, self._g_cursor.value(t))

    def step_current_fn(self):
        """Fully fused fast-path lookup: cursor advance + bilinear, one call.

        The closure keeps the irradiance cursor index and the table geometry
        in local/cell variables so one supply evaluation is a single Python
        call with no attribute traffic — the difference between ~0.8 us and
        ~0.4 us per step matters when every boundary-search probe takes tens
        of thousands of steps.
        """
        if self._exact:
            array_current = self.array.current
            value_at = self.irradiance.value_at

            def exact_current(v: float, t: float) -> float:
                return array_current(v, value_at(t))

            return exact_current

        table = self._table
        if table is None:
            table = self._table = self._build_table()
        rows = table._rows
        inv_dv = table._inv_dv
        nv_hi = table._nv - 1
        inv_dg = table._inv_dg
        ng_hi = table._ng - 1
        # Reuse the float lists the supply's cursor already built (shared
        # read-only); the closure keeps its own segment index.
        times = self._g_cursor._times
        values = self._g_cursor._values
        n = len(times)
        idx = 0
        last_t = None
        last_g = 0.0

        def fast_current(v: float, t: float) -> float:
            nonlocal idx, last_t, last_g
            if t == last_t:
                # The Heun corrector samples at t+dt, which is exactly the
                # next step's predictor time: half of all lookups repeat the
                # previous t, so one cursor walk serves two evaluations.
                g = last_g
            else:
                # Inlined TraceCursor.value
                i = idx
                if t < times[i]:
                    i = 0
                while i + 1 < n and t >= times[i + 1]:
                    i += 1
                idx = i
                if i + 1 >= n:
                    g = values[-1]
                else:
                    t0 = times[i]
                    if t <= t0:
                        # Clamp at (or before) a sample instant, matching
                        # TraceCursor.value — i can only sit at 0 with t
                        # below it, or exactly on times[i].
                        g = values[i]
                    else:
                        g0 = values[i]
                        g = g0 + (values[i + 1] - g0) * (t - t0) / (times[i + 1] - t0)
                last_t = t
                last_g = g
            # Inlined IVSurfaceTable.current
            fx = v * inv_dv
            if fx <= 0.0:
                ix = 0
                wx = 0.0
            elif fx >= nv_hi:
                ix = nv_hi - 1
                wx = 1.0
            else:
                ix = int(fx)
                wx = fx - ix
            fy = g * inv_dg
            if fy <= 0.0:
                iy = 0
                wy = 0.0
            elif fy >= ng_hi:
                iy = ng_hi - 1
                wy = 1.0
            else:
                iy = int(fy)
                wy = fy - iy
            r0 = rows[ix]
            r1 = rows[ix + 1]
            a = r0[iy]
            b = r1[iy]
            a += (r0[iy + 1] - a) * wy
            b += (r1[iy + 1] - b) * wy
            return a + (b - a) * wx

        return fast_current

    def available_power(self, t: float) -> float:
        """MPP power at time ``t`` — the record-tick "available power" channel.

        In fast mode this samples the table's 1-D MPP curve (pure float
        operations); in exact mode the original ``np.interp`` over the
        dedicated MPP cache is preserved verbatim, keeping the reference
        engine's numerics untouched.
        """
        g = self.irradiance_at(t)
        if not self._exact:
            return self.iv_table.mpp_power(g)
        return float(np.interp(g, self._cache_irradiances, self._cache_mpp_power))

    def open_circuit_voltage(self, t: float) -> float:
        g = self.irradiance_at(t)
        if not self._exact:
            return self.iv_table.open_circuit_voltage(g)
        return float(np.interp(g, self._cache_irradiances, self._cache_voc))


class ControlledVoltageSupply(Supply):
    """A stiff laboratory supply whose voltage follows a programmed trace.

    The node voltage equals the programmed voltage regardless of the load
    (within the supply's current limit, which we expose only for the
    available-power estimate).
    """

    is_voltage_source = True

    def __init__(self, voltage_trace: Trace, current_limit_a: float = 3.0):
        if current_limit_a <= 0:
            raise ValueError("current_limit_a must be positive")
        self.voltage_trace = voltage_trace
        self.current_limit_a = current_limit_a
        self._v_cursor = TraceCursor(voltage_trace)

    def voltage(self, t: float) -> float:
        # Cursor-based sampling: the simulator reads the programmed voltage
        # every step, and simulation time is monotone.
        return self._v_cursor.value(t)

    def current(self, voltage: float, t: float) -> float:
        # A stiff source supplies whatever the load draws; the simulator does
        # not integrate the node when the supply is a voltage source, so this
        # is only used for power accounting.
        return self.current_limit_a

    def available_power(self, t: float) -> float:
        return self.voltage(t) * self.current_limit_a

    def open_circuit_voltage(self, t: float) -> float:
        return self.voltage(t)


class ConstantPowerSupply(Supply):
    """An idealised source that delivers a fixed power at any voltage.

    Useful for unit tests and for the conceptual Fig. 3 study where the
    harvested power is prescribed directly rather than through an I-V curve.
    """

    is_voltage_source = False

    def __init__(self, power_trace: Trace, voltage_limit: float = 6.5):
        if voltage_limit <= 0:
            raise ValueError("voltage_limit must be positive")
        self.power_trace = power_trace
        self.voltage_limit = voltage_limit
        self._p_cursor = TraceCursor(power_trace)

    def current(self, voltage: float, t: float) -> float:
        if voltage >= self.voltage_limit:
            return 0.0
        power = self._p_cursor.value(t)
        if power <= 0.0:
            return 0.0
        return power / (voltage if voltage > 0.5 else 0.5)

    def step_current_fn(self):
        voltage_limit = self.voltage_limit
        cursor_value = TraceCursor(self.power_trace).value

        def fast_current(v: float, t: float) -> float:
            if v >= voltage_limit:
                return 0.0
            power = cursor_value(t)
            if power <= 0.0:
                return 0.0
            return power / (v if v > 0.5 else 0.5)

        return fast_current

    def available_power(self, t: float) -> float:
        return max(self.power_trace.value_at(t), 0.0)

    def open_circuit_voltage(self, t: float) -> float:
        return self.voltage_limit
