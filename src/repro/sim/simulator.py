"""The event-driven system simulator.

This is the reproduction's stand-in for the paper's testbed (Fig. 8): a PV
array (or controlled supply) feeding a small buffer capacitor, the
voltage-monitoring hardware watching the capacitor voltage, and the
ODROID-XU4 platform model running a governor.

Each step the simulator:

1. evaluates the supply current and the load current (board power at the
   present operating point, plus the monitoring hardware) at the present node
   voltage,
2. integrates the capacitor node equation with an adaptive explicit
   Heun (RK2) step sized so the voltage moves by at most a few millivolts,
3. advances the platform's actuation state machine (transition completion,
   brown-out detection, reboot),
4. samples the voltage monitor and delivers any threshold-crossing interrupts
   to the governor, applying its decisions through the platform (which
   charges the transition latency), and
5. invokes periodically-sampled governors (the Linux baselines) on their
   sampling interval.

The recorded time series and summary metrics are returned as a
:class:`~repro.sim.result.SimulationResult`.

Two engines implement that loop:

* the **fast engine** (``SimulationConfig.fast = True``, the default) caches
  the load power between platform actuation events (it only changes at OPP
  transitions, brown-outs, reboots and transition boundaries — see
  :attr:`repro.soc.platform.SoCPlatform.actuation_epoch`), evaluates the
  supply's available (MPP) power lazily on actual record ticks, and records
  into preallocated NumPy ring buffers written positionally; together with
  the tabulated I-V surface of
  :class:`~repro.sim.supplies.PVArraySupply` this makes a PV scenario several
  times faster than the reference at bounded accuracy loss;
* the **reference engine** (``fast=False``) keeps the original
  straight-line implementation — per-step supply solves and eager MPP
  lookups — and is the baseline ``benchmarks/bench_perf_sim.py`` measures
  and asserts metric parity against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..energy.supercapacitor import PAPER_BUFFER_CAPACITANCE_F, Supercapacitor
from ..governors.base import Governor, GovernorDecision
from ..hw.monitor import ThresholdCrossing, VoltageMonitor
from ..soc.platform import SoCPlatform
from .result import SimulationEvent, SimulationResult
from .supplies import Supply

__all__ = ["SimulationConfig", "EnergyHarvestingSimulation", "simulate"]


@dataclass
class SimulationConfig:
    """Numerical and behavioural knobs of the system simulator."""

    #: Total simulated duration in seconds.
    duration_s: float = 60.0
    #: Largest integration step.
    max_step_s: float = 0.02
    #: Smallest integration step (steps shrink when the voltage moves fast).
    min_step_s: float = 1e-5
    #: Target voltage change per step; the step size adapts to respect it.
    target_dv_per_step: float = 0.004
    #: Interval between recorded samples (decimation of the output series).
    record_interval_s: float = 0.05
    #: Initial capacitor voltage; ``None`` uses the supply's open-circuit
    #: voltage clamped to the platform's operating window.
    initial_voltage: Optional[float] = None
    #: Stop the simulation at the first brown-out instead of modelling reboot.
    stop_on_brownout: bool = False
    #: Model the digital potentiometer's finite threshold resolution.
    monitor_quantised: bool = True
    #: How often a persistently-asserted comparator re-raises its interrupt
    #: after the governor had nothing to do (the ISR masks the line and polls
    #: it back at this rate).  Keeps a saturated governor responsive without
    #: allowing an interrupt storm.
    monitor_rearm_interval_s: float = 0.25
    #: Include the 1.61 mW monitoring-hardware power in the load.
    include_monitor_power: bool = True
    #: Constant CPU utilisation presented to utilisation-driven governors
    #: (the ray-tracing workload is CPU bound, so 1.0).
    utilization: float = 1.0
    #: Use the fast engine (event-driven load power, lazy available-power
    #: evaluation, allocation-free recording).  ``False`` selects the
    #: reference engine, the parity/measurement baseline.
    fast: bool = True

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.max_step_s <= 0 or self.min_step_s <= 0:
            raise ValueError("step sizes must be positive")
        if self.min_step_s > self.max_step_s:
            raise ValueError("min_step_s must not exceed max_step_s")
        if self.target_dv_per_step <= 0:
            raise ValueError("target_dv_per_step must be positive")
        if self.record_interval_s <= 0:
            raise ValueError("record_interval_s must be positive")
        if self.monitor_rearm_interval_s <= 0:
            raise ValueError("monitor_rearm_interval_s must be positive")
        if not 0.0 <= self.utilization <= 1.0:
            raise ValueError("utilization must lie in [0, 1]")


#: Column order of the recorders' sample rows.
_RECORD_COLUMNS = (
    "times",
    "voltage",
    "harvested",
    "available",
    "consumed",
    "frequency",
    "n_little",
    "n_big",
    "running",
    "instructions",
    "v_low",
    "v_high",
)


class _Recorder:
    """Accumulates the decimated output series in a preallocated buffer.

    Rows are written positionally into one ``(capacity, 12)`` float array —
    no per-step kwargs dicts, no Python lists, no growth in the common case
    (capacity is sized from the run duration; forced extra records trigger a
    doubling growth).
    """

    __slots__ = ("record_interval_s", "next_record_time", "_buf", "_n")

    def __init__(self, record_interval_s: float, duration_s: float):
        self.record_interval_s = record_interval_s
        self.next_record_time = 0.0
        capacity = int(duration_s / record_interval_s) + 8
        self._buf = np.empty((capacity, len(_RECORD_COLUMNS)), dtype=float)
        self._n = 0

    def record(
        self,
        t: float,
        voltage: float,
        harvested: float,
        available: float,
        consumed: float,
        frequency: float,
        n_little: int,
        n_big: int,
        running: float,
        instructions: float,
        v_low: float,
        v_high: float,
    ) -> None:
        n = self._n
        buf = self._buf
        if n >= buf.shape[0]:
            self._buf = buf = np.concatenate([buf, np.empty_like(buf)])
        row = buf[n]
        row[0] = t
        row[1] = voltage
        row[2] = harvested
        row[3] = available
        row[4] = consumed
        row[5] = frequency
        row[6] = n_little
        row[7] = n_big
        row[8] = running
        row[9] = instructions
        row[10] = v_low
        row[11] = v_high
        self._n = n + 1

    def record_tick(self, t: float, *signals) -> None:
        """Record a decimation-tick sample and advance the tick clock."""
        self.record(t, *signals)
        while self.next_record_time <= t + 1e-12:
            self.next_record_time += self.record_interval_s

    def to_arrays(self) -> dict:
        data = self._buf[: self._n]
        return {
            name: data[:, j].astype(np.int64) if name in ("n_little", "n_big") else data[:, j].copy()
            for j, name in enumerate(_RECORD_COLUMNS)
        }


class _ListRecorder:
    """The reference engine's recorder (per-step kwargs, Python lists).

    Kept verbatim as the measurement baseline for the allocation-free
    recorder above.
    """

    def __init__(self, record_interval_s: float):
        self.record_interval_s = record_interval_s
        self.next_record_time = 0.0
        self.times: list[float] = []
        self.voltage: list[float] = []
        self.harvested: list[float] = []
        self.available: list[float] = []
        self.consumed: list[float] = []
        self.frequency: list[float] = []
        self.n_little: list[int] = []
        self.n_big: list[int] = []
        self.running: list[float] = []
        self.instructions: list[float] = []
        self.v_low: list[float] = []
        self.v_high: list[float] = []

    def maybe_record(self, t: float, **signals) -> None:
        if t + 1e-12 < self.next_record_time:
            return
        self.record(t, **signals)
        while self.next_record_time <= t + 1e-12:
            self.next_record_time += self.record_interval_s

    def record(self, t: float, **signals) -> None:
        self.times.append(t)
        self.voltage.append(signals["voltage"])
        self.harvested.append(signals["harvested"])
        self.available.append(signals["available"])
        self.consumed.append(signals["consumed"])
        self.frequency.append(signals["frequency"])
        self.n_little.append(signals["n_little"])
        self.n_big.append(signals["n_big"])
        self.running.append(signals["running"])
        self.instructions.append(signals["instructions"])
        self.v_low.append(signals["v_low"])
        self.v_high.append(signals["v_high"])

    def to_arrays(self) -> dict:
        return {
            "times": np.array(self.times),
            "voltage": np.array(self.voltage),
            "harvested": np.array(self.harvested),
            "available": np.array(self.available),
            "consumed": np.array(self.consumed),
            "frequency": np.array(self.frequency),
            "n_little": np.array(self.n_little),
            "n_big": np.array(self.n_big),
            "running": np.array(self.running),
            "instructions": np.array(self.instructions),
            "v_low": np.array(self.v_low),
            "v_high": np.array(self.v_high),
        }


class EnergyHarvestingSimulation:
    """Couples a supply, a buffer capacitor, the monitor, a governor and the SoC.

    Parameters
    ----------
    platform:
        The MP-SoC platform model (actuation state machine + power/perf).
    governor:
        The power-management governor under test.
    supply:
        The harvesting source (PV array supply or controlled voltage supply).
    capacitor:
        The buffer capacitor; defaults to the paper's 47 mF part.  Ignored
        when the supply is a stiff voltage source.
    config:
        Numerical/behavioural configuration.
    """

    def __init__(
        self,
        platform: SoCPlatform,
        governor: Governor,
        supply: Supply,
        capacitor: Supercapacitor | None = None,
        config: SimulationConfig | None = None,
    ):
        self.platform = platform
        self.governor = governor
        self.supply = supply
        self.capacitor = capacitor if capacitor is not None else Supercapacitor(PAPER_BUFFER_CAPACITANCE_F)
        self.config = config if config is not None else SimulationConfig()
        self.monitor = VoltageMonitor(quantised=self.config.monitor_quantised)

    # ------------------------------------------------------------------
    # Initial conditions
    # ------------------------------------------------------------------
    def _initial_voltage(self) -> float:
        if self.config.initial_voltage is not None:
            return self.config.initial_voltage
        if self.supply.is_voltage_source:
            return self.supply.voltage(0.0)
        voc = self.supply.open_circuit_voltage(0.0)
        v = min(voc, self.platform.spec.maximum_voltage)
        return max(v, 0.0)

    def _program_monitor(self, supply_voltage: float) -> None:
        thresholds = self.governor.thresholds()
        if thresholds is None:
            return
        v_low, v_high = thresholds
        self.monitor.set_thresholds(v_low, v_high)
        self.monitor.prime(supply_voltage)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        if self.config.fast:
            return self._run_fast()
        return self._run_reference()

    def _run_fast(self) -> SimulationResult:
        """The fast engine.

        Numerically it performs the same adaptive Heun integration and the
        same event handling as the reference engine; it differs in *when*
        derived quantities are evaluated — load power per actuation epoch
        instead of per step, available power per record tick instead of per
        step — and in recording into preallocated buffers.
        """
        cfg = self.config
        platform = self.platform
        governor = self.governor
        supply = self.supply
        capacitor = self.capacitor
        monitor = self.monitor

        platform.reset()
        governor.reset_accounting()

        t = 0.0
        vc = self._initial_voltage()
        capacitor.reset(min(vc, capacitor.max_voltage))

        governor.initialise(platform, t, vc)
        uses_monitor = governor.uses_voltage_monitor
        if uses_monitor:
            self._program_monitor(vc)

        recorder = _Recorder(cfg.record_interval_s, cfg.duration_s)
        events: list[SimulationEvent] = []

        instructions = 0.0
        harvested_energy = 0.0
        consumed_energy = 0.0
        first_brownout: Optional[float] = None
        was_running = platform.running

        sampling_interval = governor.sampling_interval_s
        next_tick = 0.0 if sampling_interval else float("inf")
        next_monitor_rearm = cfg.monitor_rearm_interval_s
        monitor_power = monitor.power_w if cfg.include_monitor_power else 0.0

        # Hot-loop locals (attribute lookups hoisted out of the loop).
        duration = cfg.duration_s
        max_step = cfg.max_step_s
        min_step = cfg.min_step_s
        target_dv = cfg.target_dv_per_step
        stop_on_brownout = cfg.stop_on_brownout
        rearm_interval = cfg.monitor_rearm_interval_s
        is_voltage_source = supply.is_voltage_source
        supply_current = supply.step_current_fn()
        supply_voltage_at = supply.voltage if is_voltage_source else None
        cap_c = capacitor.capacitance_f
        g_leak = capacitor.leakage_conductance_s
        cap_vmax = capacitor.max_voltage
        plat_min_v = platform.spec.minimum_voltage
        utilization = cfg.utilization
        monitor_sample = monitor.sample
        platform_advance = platform.advance
        next_record = recorder.next_record_time

        # Event-driven load power: platform power and instruction rate are
        # piecewise constant between actuation events; re-read them only when
        # the platform's actuation epoch moves.
        epoch = -1
        load_power = 0.0
        inst_rate = 0.0

        while t < duration:
            p_epoch = platform.actuation_epoch
            if p_epoch != epoch:
                epoch = p_epoch
                load_power = platform.power(t) + monitor_power
                inst_rate = platform.instruction_rate()

            # --------------------------------------------------------------
            # 1. Currents at the present node voltage; one Heun (RK2) step
            # --------------------------------------------------------------
            if is_voltage_source:
                remaining = duration - t
                dt = max_step if remaining > max_step else remaining
                t_new = t + dt
                vc_new = supply_voltage_at(t_new)
                harvested_power = load_power
            else:
                i_load = load_power / (vc if vc > 0.5 else 0.5)
                i_supply = supply_current(vc, t)
                dvdt = (i_supply - i_load - g_leak * vc) / cap_c
                # Adaptive step: keep the per-step voltage change small, never
                # step past the end of the run or the next governor tick.
                # (Branches instead of min()/max() calls: this arithmetic runs
                # every step and builtin-call overhead is measurable here.)
                dvdt_abs = dvdt if dvdt >= 0.0 else -dvdt
                dt = target_dv / (dvdt_abs if dvdt_abs > 1e-9 else 1e-9)
                if dt < min_step:
                    dt = min_step
                if dt > max_step:
                    dt = max_step
                remaining = duration - t
                if dt > remaining:
                    dt = remaining
                if next_tick > t:
                    gap = next_tick - t
                    if gap < min_step:
                        gap = min_step
                    if dt > gap:
                        dt = gap
                vc_pred = vc + dvdt * dt
                if vc_pred < 0.0:
                    vc_pred = 0.0
                elif vc_pred > cap_vmax:
                    vc_pred = cap_vmax
                i_supply_pred = supply_current(vc_pred, t + dt)
                i_load_pred = load_power / (vc_pred if vc_pred > 0.5 else 0.5)
                dvdt_pred = (i_supply_pred - i_load_pred - g_leak * vc_pred) / cap_c
                vc_new = vc + 0.5 * (dvdt + dvdt_pred) * dt
                if vc_new < 0.0:
                    vc_new = 0.0
                elif vc_new > cap_vmax:
                    vc_new = cap_vmax
                t_new = t + dt
                harvested_power = i_supply * vc
                capacitor.voltage = vc_new

            # --------------------------------------------------------------
            # 2. Accounting over the step
            # --------------------------------------------------------------
            instructions += inst_rate * dt
            harvested_energy += harvested_power * dt
            consumed_energy += load_power * dt

            t = t_new
            vc = vc_new

            # --------------------------------------------------------------
            # 3. Platform state machine: transitions, brown-out, reboot
            #
            # advance() is a no-op while the platform is running above the
            # brown-out threshold with no transition in flight; skip the call
            # in that (overwhelmingly common) case.
            # --------------------------------------------------------------
            if vc < plat_min_v or platform.pending is not None or not was_running:
                platform_advance(t, vc)
            running = platform.running
            if was_running and not running:
                events.append(SimulationEvent(t, "brownout", f"V_C={vc:.3f}V"))
                if first_brownout is None:
                    first_brownout = t
                if stop_on_brownout:
                    was_running = running
                    recorder.record(
                        t,
                        vc,
                        harvested_power,
                        supply.available_power(t),
                        load_power,
                        0.0,
                        0,
                        0,
                        0.0,
                        instructions,
                        monitor.v_low,
                        monitor.v_high,
                    )
                    break
            elif not was_running and running:
                events.append(SimulationEvent(t, "reboot", f"V_C={vc:.3f}V"))
                governor.initialise(platform, t, vc)
                if uses_monitor:
                    self._program_monitor(vc)
            was_running = running

            # --------------------------------------------------------------
            # 4. Voltage monitor -> governor interrupts
            #
            # Interrupts are held off while an OPP transition is in flight:
            # the ISR performs the sysfs writes synchronously, so the next
            # threshold crossing is serviced only once the previous response
            # has taken effect (this is the dead time Table I budgets for).
            # --------------------------------------------------------------
            if uses_monitor and running and platform.pending is None:
                if t >= next_monitor_rearm:
                    # Periodic re-poll of a persistently asserted comparator.
                    monitor.prime(vc)
                    next_monitor_rearm = t + rearm_interval
                crossings = monitor_sample(vc)
                if crossings:
                    for crossing in crossings:
                        events.append(SimulationEvent(t, crossing.value, f"V_C={vc:.3f}V"))
                        thresholds_before = monitor.v_low, monitor.v_high
                        decision = governor.on_interrupt(crossing, t, vc, platform)
                        self._apply_decision(decision, t, events)
                        self._program_monitor(vc)
                        thresholds_after = monitor.v_low, monitor.v_high
                        if decision is None and thresholds_after == thresholds_before:
                            # The governor is saturated (nothing changed):
                            # fall back to edge semantics so a supply that
                            # stays beyond the threshold does not generate an
                            # interrupt storm.
                            monitor.acknowledge(vc)

            # --------------------------------------------------------------
            # 5. Periodic governor tick (Linux-style governors)
            # --------------------------------------------------------------
            if sampling_interval and t >= next_tick:
                if running:
                    decision = governor.on_tick(t, vc, utilization, platform)
                    self._apply_decision(decision, t, events)
                next_tick += sampling_interval

            # --------------------------------------------------------------
            # 6. Record (decimated; available power evaluated lazily, only
            #    when this step actually lands on a record tick)
            # --------------------------------------------------------------
            if t + 1e-12 >= next_record:
                if running:
                    opp = platform.current_opp
                    recorder.record_tick(
                        t,
                        vc,
                        harvested_power,
                        supply.available_power(t),
                        load_power,
                        opp.frequency_hz,
                        opp.config.n_little,
                        opp.config.n_big,
                        1.0,
                        instructions,
                        monitor.v_low,
                        monitor.v_high,
                    )
                else:
                    recorder.record_tick(
                        t,
                        vc,
                        harvested_power,
                        supply.available_power(t),
                        monitor_power,
                        0.0,
                        0,
                        0,
                        0.0,
                        instructions,
                        monitor.v_low,
                        monitor.v_high,
                    )
                next_record = recorder.next_record_time

        return self._finalise(
            recorder.to_arrays(),
            events,
            t,
            instructions,
            harvested_energy,
            consumed_energy,
            first_brownout,
        )

    def _run_reference(self) -> SimulationResult:
        """The reference engine: the original straight-line implementation.

        Per-step supply solves, eager available-power lookups and the
        kwargs-based recorder, kept as the baseline the fast engine is
        measured and parity-checked against (``bench_perf_sim.py``).
        """
        cfg = self.config
        platform = self.platform
        governor = self.governor
        supply = self.supply

        platform.reset()
        governor.reset_accounting()

        t = 0.0
        vc = self._initial_voltage()
        self.capacitor.reset(min(vc, self.capacitor.max_voltage))

        governor.initialise(platform, t, vc)
        if governor.uses_voltage_monitor:
            self._program_monitor(vc)

        recorder = _ListRecorder(cfg.record_interval_s)
        events: list[SimulationEvent] = []

        instructions = 0.0
        harvested_energy = 0.0
        consumed_energy = 0.0
        first_brownout: Optional[float] = None
        was_running = platform.running

        next_tick = 0.0 if governor.sampling_interval_s else float("inf")
        next_monitor_rearm = cfg.monitor_rearm_interval_s
        monitor_power = self.monitor.power_w if cfg.include_monitor_power else 0.0

        while t < cfg.duration_s:
            # --------------------------------------------------------------
            # 1. Evaluate currents at the present node voltage
            # --------------------------------------------------------------
            board_power = platform.power(t)
            load_power = board_power + monitor_power
            v_safe = max(vc, 0.5)
            i_load = load_power / v_safe

            if supply.is_voltage_source:
                dt = min(cfg.max_step_s, cfg.duration_s - t)
                t_new = t + dt
                vc_new = supply.voltage(t_new)
                harvested_power = load_power
            else:
                i_supply = supply.current(vc, t)
                dvdt = self.capacitor.derivative(i_supply - i_load, vc)
                # Adaptive step: keep the per-step voltage change small, never
                # step past the end of the run or the next governor tick.
                dt = cfg.target_dv_per_step / max(abs(dvdt), 1e-9)
                dt = min(max(dt, cfg.min_step_s), cfg.max_step_s, cfg.duration_s - t)
                if next_tick > t:
                    dt = min(dt, max(next_tick - t, cfg.min_step_s))
                # Heun (explicit trapezoidal) step.
                vc_pred = vc + dvdt * dt
                vc_pred = min(max(vc_pred, 0.0), self.capacitor.max_voltage)
                i_supply_pred = supply.current(vc_pred, t + dt)
                i_load_pred = load_power / max(vc_pred, 0.5)
                dvdt_pred = self.capacitor.derivative(i_supply_pred - i_load_pred, vc_pred)
                vc_new = vc + 0.5 * (dvdt + dvdt_pred) * dt
                vc_new = min(max(vc_new, 0.0), self.capacitor.max_voltage)
                t_new = t + dt
                harvested_power = i_supply * vc
                self.capacitor.voltage = vc_new

            # --------------------------------------------------------------
            # 2. Accounting over the step
            # --------------------------------------------------------------
            instructions += platform.instruction_rate() * dt
            harvested_energy += harvested_power * dt
            consumed_energy += load_power * dt

            t = t_new
            vc = vc_new

            # --------------------------------------------------------------
            # 3. Platform state machine: transitions, brown-out, reboot
            # --------------------------------------------------------------
            platform.advance(t, vc)
            if was_running and not platform.running:
                events.append(SimulationEvent(t, "brownout", f"V_C={vc:.3f}V"))
                if first_brownout is None:
                    first_brownout = t
                if cfg.stop_on_brownout:
                    was_running = platform.running
                    recorder.record(
                        t,
                        voltage=vc,
                        harvested=harvested_power,
                        available=supply.available_power(t),
                        consumed=load_power,
                        frequency=platform.current_opp.frequency_hz if platform.running else 0.0,
                        n_little=platform.current_opp.config.n_little if platform.running else 0,
                        n_big=platform.current_opp.config.n_big if platform.running else 0,
                        running=1.0 if platform.running else 0.0,
                        instructions=instructions,
                        v_low=self.monitor.v_low,
                        v_high=self.monitor.v_high,
                    )
                    break
            elif not was_running and platform.running:
                events.append(SimulationEvent(t, "reboot", f"V_C={vc:.3f}V"))
                governor.initialise(platform, t, vc)
                if governor.uses_voltage_monitor:
                    self._program_monitor(vc)
            was_running = platform.running

            # --------------------------------------------------------------
            # 4. Voltage monitor -> governor interrupts (see _run_fast)
            # --------------------------------------------------------------
            if governor.uses_voltage_monitor and platform.running and not platform.is_transitioning:
                if t >= next_monitor_rearm:
                    # Periodic re-poll of a persistently asserted comparator.
                    self.monitor.prime(vc)
                    next_monitor_rearm = t + cfg.monitor_rearm_interval_s
                for crossing in self.monitor.sample(vc):
                    events.append(SimulationEvent(t, crossing.value, f"V_C={vc:.3f}V"))
                    thresholds_before = self.monitor.v_low, self.monitor.v_high
                    decision = governor.on_interrupt(crossing, t, vc, platform)
                    self._apply_decision(decision, t, events)
                    self._program_monitor(vc)
                    thresholds_after = self.monitor.v_low, self.monitor.v_high
                    if decision is None and thresholds_after == thresholds_before:
                        self.monitor.acknowledge(vc)

            # --------------------------------------------------------------
            # 5. Periodic governor tick (Linux-style governors)
            # --------------------------------------------------------------
            if governor.sampling_interval_s and t >= next_tick:
                if platform.running:
                    decision = governor.on_tick(t, vc, cfg.utilization, platform)
                    self._apply_decision(decision, t, events)
                next_tick += governor.sampling_interval_s

            # --------------------------------------------------------------
            # 6. Record
            # --------------------------------------------------------------
            recorder.maybe_record(
                t,
                voltage=vc,
                harvested=harvested_power,
                available=supply.available_power(t),
                consumed=load_power if platform.running else monitor_power,
                frequency=platform.current_opp.frequency_hz if platform.running else 0.0,
                n_little=platform.current_opp.config.n_little if platform.running else 0,
                n_big=platform.current_opp.config.n_big if platform.running else 0,
                running=1.0 if platform.running else 0.0,
                instructions=instructions,
                v_low=self.monitor.v_low,
                v_high=self.monitor.v_high,
            )

        return self._finalise(
            recorder.to_arrays(),
            events,
            t,
            instructions,
            harvested_energy,
            consumed_energy,
            first_brownout,
        )

    def _finalise(
        self,
        arrays: dict,
        events: list[SimulationEvent],
        t: float,
        instructions: float,
        harvested_energy: float,
        consumed_energy: float,
        first_brownout: Optional[float],
    ) -> SimulationResult:
        return SimulationResult(
            times=arrays["times"],
            supply_voltage=arrays["voltage"],
            harvested_power=arrays["harvested"],
            available_power=arrays["available"],
            consumed_power=arrays["consumed"],
            frequency_hz=arrays["frequency"],
            n_little=arrays["n_little"],
            n_big=arrays["n_big"],
            running=arrays["running"],
            instructions=arrays["instructions"],
            v_low=arrays["v_low"],
            v_high=arrays["v_high"],
            events=events,
            duration_s=min(t, self.config.duration_s),
            total_instructions=instructions,
            harvested_energy_j=harvested_energy,
            consumed_energy_j=consumed_energy,
            brownout_count=self.platform.brownout_count,
            first_brownout_time=first_brownout,
            transition_count=self.platform.transition_count,
            dvfs_transition_count=self.platform.dvfs_transition_count,
            hotplug_transition_count=self.platform.hotplug_transition_count,
            interrupt_count=self.monitor.interrupt_count,
            governor_invocations=self.governor.invocation_count,
            governor_cpu_time_s=self.governor.cpu_time_s,
            governor_name=self.governor.name,
        )

    def _apply_decision(
        self,
        decision: Optional[GovernorDecision],
        t: float,
        events: list[SimulationEvent],
    ) -> None:
        if decision is None:
            return
        latency = self.platform.request_opp(decision.target, t, cores_first=decision.cores_first)
        events.append(
            SimulationEvent(
                t,
                "opp-request",
                f"{decision.target} (latency {latency * 1e3:.1f} ms)",
            )
        )


def simulate(
    platform: SoCPlatform,
    governor: Governor,
    supply: Supply,
    duration_s: float,
    capacitor: Supercapacitor | None = None,
    **config_overrides,
) -> SimulationResult:
    """Convenience wrapper: build a simulation with the given duration and run it."""
    config = SimulationConfig(duration_s=duration_s, **config_overrides)
    sim = EnergyHarvestingSimulation(
        platform=platform,
        governor=governor,
        supply=supply,
        capacitor=capacitor,
        config=config,
    )
    return sim.run()
