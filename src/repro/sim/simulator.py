"""The event-driven system simulator.

This is the reproduction's stand-in for the paper's testbed (Fig. 8): a PV
array (or controlled supply) feeding a small buffer capacitor, the
voltage-monitoring hardware watching the capacitor voltage, and the
ODROID-XU4 platform model running a governor.

Each step the simulator:

1. evaluates the supply current and the load current (board power at the
   present operating point, plus the monitoring hardware) at the present node
   voltage,
2. integrates the capacitor node equation with an adaptive explicit
   Heun (RK2) step sized so the voltage moves by at most a few millivolts,
3. advances the platform's actuation state machine (transition completion,
   brown-out detection, reboot),
4. samples the voltage monitor and delivers any threshold-crossing interrupts
   to the governor, applying its decisions through the platform (which
   charges the transition latency), and
5. invokes periodically-sampled governors (the Linux baselines) on their
   sampling interval.

The recorded time series and summary metrics are returned as a
:class:`~repro.sim.result.SimulationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..energy.supercapacitor import PAPER_BUFFER_CAPACITANCE_F, Supercapacitor
from ..governors.base import Governor, GovernorDecision
from ..hw.monitor import ThresholdCrossing, VoltageMonitor
from ..soc.platform import SoCPlatform
from .result import SimulationEvent, SimulationResult
from .supplies import Supply

__all__ = ["SimulationConfig", "EnergyHarvestingSimulation", "simulate"]


@dataclass
class SimulationConfig:
    """Numerical and behavioural knobs of the system simulator."""

    #: Total simulated duration in seconds.
    duration_s: float = 60.0
    #: Largest integration step.
    max_step_s: float = 0.02
    #: Smallest integration step (steps shrink when the voltage moves fast).
    min_step_s: float = 1e-5
    #: Target voltage change per step; the step size adapts to respect it.
    target_dv_per_step: float = 0.004
    #: Interval between recorded samples (decimation of the output series).
    record_interval_s: float = 0.05
    #: Initial capacitor voltage; ``None`` uses the supply's open-circuit
    #: voltage clamped to the platform's operating window.
    initial_voltage: Optional[float] = None
    #: Stop the simulation at the first brown-out instead of modelling reboot.
    stop_on_brownout: bool = False
    #: Model the digital potentiometer's finite threshold resolution.
    monitor_quantised: bool = True
    #: How often a persistently-asserted comparator re-raises its interrupt
    #: after the governor had nothing to do (the ISR masks the line and polls
    #: it back at this rate).  Keeps a saturated governor responsive without
    #: allowing an interrupt storm.
    monitor_rearm_interval_s: float = 0.25
    #: Include the 1.61 mW monitoring-hardware power in the load.
    include_monitor_power: bool = True
    #: Constant CPU utilisation presented to utilisation-driven governors
    #: (the ray-tracing workload is CPU bound, so 1.0).
    utilization: float = 1.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.max_step_s <= 0 or self.min_step_s <= 0:
            raise ValueError("step sizes must be positive")
        if self.min_step_s > self.max_step_s:
            raise ValueError("min_step_s must not exceed max_step_s")
        if self.target_dv_per_step <= 0:
            raise ValueError("target_dv_per_step must be positive")
        if self.record_interval_s <= 0:
            raise ValueError("record_interval_s must be positive")
        if self.monitor_rearm_interval_s <= 0:
            raise ValueError("monitor_rearm_interval_s must be positive")
        if not 0.0 <= self.utilization <= 1.0:
            raise ValueError("utilization must lie in [0, 1]")


class _Recorder:
    """Accumulates the decimated output time series."""

    def __init__(self, record_interval_s: float):
        self.record_interval_s = record_interval_s
        self.next_record_time = 0.0
        self.times: list[float] = []
        self.voltage: list[float] = []
        self.harvested: list[float] = []
        self.available: list[float] = []
        self.consumed: list[float] = []
        self.frequency: list[float] = []
        self.n_little: list[int] = []
        self.n_big: list[int] = []
        self.running: list[float] = []
        self.instructions: list[float] = []
        self.v_low: list[float] = []
        self.v_high: list[float] = []

    def maybe_record(self, t: float, **signals) -> None:
        if t + 1e-12 < self.next_record_time:
            return
        self.record(t, **signals)
        while self.next_record_time <= t + 1e-12:
            self.next_record_time += self.record_interval_s

    def record(self, t: float, **signals) -> None:
        self.times.append(t)
        self.voltage.append(signals["voltage"])
        self.harvested.append(signals["harvested"])
        self.available.append(signals["available"])
        self.consumed.append(signals["consumed"])
        self.frequency.append(signals["frequency"])
        self.n_little.append(signals["n_little"])
        self.n_big.append(signals["n_big"])
        self.running.append(signals["running"])
        self.instructions.append(signals["instructions"])
        self.v_low.append(signals["v_low"])
        self.v_high.append(signals["v_high"])


class EnergyHarvestingSimulation:
    """Couples a supply, a buffer capacitor, the monitor, a governor and the SoC.

    Parameters
    ----------
    platform:
        The MP-SoC platform model (actuation state machine + power/perf).
    governor:
        The power-management governor under test.
    supply:
        The harvesting source (PV array supply or controlled voltage supply).
    capacitor:
        The buffer capacitor; defaults to the paper's 47 mF part.  Ignored
        when the supply is a stiff voltage source.
    config:
        Numerical/behavioural configuration.
    """

    def __init__(
        self,
        platform: SoCPlatform,
        governor: Governor,
        supply: Supply,
        capacitor: Supercapacitor | None = None,
        config: SimulationConfig | None = None,
    ):
        self.platform = platform
        self.governor = governor
        self.supply = supply
        self.capacitor = capacitor if capacitor is not None else Supercapacitor(PAPER_BUFFER_CAPACITANCE_F)
        self.config = config if config is not None else SimulationConfig()
        self.monitor = VoltageMonitor(quantised=self.config.monitor_quantised)

    # ------------------------------------------------------------------
    # Initial conditions
    # ------------------------------------------------------------------
    def _initial_voltage(self) -> float:
        if self.config.initial_voltage is not None:
            return self.config.initial_voltage
        if self.supply.is_voltage_source:
            return self.supply.voltage(0.0)
        voc = self.supply.open_circuit_voltage(0.0)
        v = min(voc, self.platform.spec.maximum_voltage)
        return max(v, 0.0)

    def _program_monitor(self, supply_voltage: float) -> None:
        thresholds = self.governor.thresholds()
        if thresholds is None:
            return
        v_low, v_high = thresholds
        self.monitor.set_thresholds(v_low, v_high)
        self.monitor.prime(supply_voltage)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        cfg = self.config
        platform = self.platform
        governor = self.governor
        supply = self.supply

        platform.reset()
        governor.reset_accounting()

        t = 0.0
        vc = self._initial_voltage()
        self.capacitor.reset(min(vc, self.capacitor.max_voltage))

        governor.initialise(platform, t, vc)
        if governor.uses_voltage_monitor:
            self._program_monitor(vc)

        recorder = _Recorder(cfg.record_interval_s)
        events: list[SimulationEvent] = []

        instructions = 0.0
        harvested_energy = 0.0
        consumed_energy = 0.0
        first_brownout: Optional[float] = None
        was_running = platform.running

        next_tick = 0.0 if governor.sampling_interval_s else float("inf")
        next_monitor_rearm = cfg.monitor_rearm_interval_s
        monitor_power = self.monitor.power_w if cfg.include_monitor_power else 0.0

        while t < cfg.duration_s:
            # --------------------------------------------------------------
            # 1. Evaluate currents at the present node voltage
            # --------------------------------------------------------------
            board_power = platform.power(t)
            load_power = board_power + monitor_power
            v_safe = max(vc, 0.5)
            i_load = load_power / v_safe

            if supply.is_voltage_source:
                dt = min(cfg.max_step_s, cfg.duration_s - t)
                t_new = t + dt
                vc_new = supply.voltage(t_new)
                i_supply = i_load
                harvested_power = load_power
            else:
                i_supply = supply.current(vc, t)
                dvdt = self.capacitor.derivative(i_supply - i_load, vc)
                # Adaptive step: keep the per-step voltage change small, never
                # step past the end of the run or the next governor tick.
                dt = cfg.target_dv_per_step / max(abs(dvdt), 1e-9)
                dt = min(max(dt, cfg.min_step_s), cfg.max_step_s, cfg.duration_s - t)
                if next_tick > t:
                    dt = min(dt, max(next_tick - t, cfg.min_step_s))
                # Heun (explicit trapezoidal) step.
                vc_pred = vc + dvdt * dt
                vc_pred = min(max(vc_pred, 0.0), self.capacitor.max_voltage)
                i_supply_pred = supply.current(vc_pred, t + dt)
                i_load_pred = load_power / max(vc_pred, 0.5)
                dvdt_pred = self.capacitor.derivative(i_supply_pred - i_load_pred, vc_pred)
                vc_new = vc + 0.5 * (dvdt + dvdt_pred) * dt
                vc_new = min(max(vc_new, 0.0), self.capacitor.max_voltage)
                t_new = t + dt
                harvested_power = i_supply * vc
                self.capacitor.voltage = vc_new

            # --------------------------------------------------------------
            # 2. Accounting over the step
            # --------------------------------------------------------------
            instructions += platform.instruction_rate() * dt
            harvested_energy += harvested_power * dt
            consumed_energy += load_power * dt

            t = t_new
            vc = vc_new

            # --------------------------------------------------------------
            # 3. Platform state machine: transitions, brown-out, reboot
            # --------------------------------------------------------------
            platform.advance(t, vc)
            if was_running and not platform.running:
                events.append(SimulationEvent(t, "brownout", f"V_C={vc:.3f}V"))
                if first_brownout is None:
                    first_brownout = t
                if cfg.stop_on_brownout:
                    was_running = platform.running
                    recorder.record(
                        t,
                        voltage=vc,
                        harvested=harvested_power,
                        available=supply.available_power(t),
                        consumed=load_power,
                        frequency=platform.current_opp.frequency_hz if platform.running else 0.0,
                        n_little=platform.current_opp.config.n_little if platform.running else 0,
                        n_big=platform.current_opp.config.n_big if platform.running else 0,
                        running=1.0 if platform.running else 0.0,
                        instructions=instructions,
                        v_low=self.monitor.v_low,
                        v_high=self.monitor.v_high,
                    )
                    break
            elif not was_running and platform.running:
                events.append(SimulationEvent(t, "reboot", f"V_C={vc:.3f}V"))
                governor.initialise(platform, t, vc)
                if governor.uses_voltage_monitor:
                    self._program_monitor(vc)
            was_running = platform.running

            # --------------------------------------------------------------
            # 4. Voltage monitor -> governor interrupts
            #
            # Interrupts are held off while an OPP transition is in flight:
            # the ISR performs the sysfs writes synchronously, so the next
            # threshold crossing is serviced only once the previous response
            # has taken effect (this is the dead time Table I budgets for).
            # --------------------------------------------------------------
            if governor.uses_voltage_monitor and platform.running and not platform.is_transitioning:
                if t >= next_monitor_rearm:
                    # Periodic re-poll of a persistently asserted comparator.
                    self.monitor.prime(vc)
                    next_monitor_rearm = t + cfg.monitor_rearm_interval_s
                for crossing in self.monitor.sample(vc):
                    events.append(SimulationEvent(t, crossing.value, f"V_C={vc:.3f}V"))
                    thresholds_before = self.monitor.v_low, self.monitor.v_high
                    decision = governor.on_interrupt(crossing, t, vc, platform)
                    self._apply_decision(decision, t, events)
                    self._program_monitor(vc)
                    thresholds_after = self.monitor.v_low, self.monitor.v_high
                    if decision is None and thresholds_after == thresholds_before:
                        # The governor is saturated (nothing changed): fall
                        # back to edge semantics so a supply that stays beyond
                        # the threshold does not generate an interrupt storm.
                        self.monitor.acknowledge(vc)

            # --------------------------------------------------------------
            # 5. Periodic governor tick (Linux-style governors)
            # --------------------------------------------------------------
            if governor.sampling_interval_s and t >= next_tick:
                if platform.running:
                    decision = governor.on_tick(t, vc, cfg.utilization, platform)
                    self._apply_decision(decision, t, events)
                next_tick += governor.sampling_interval_s

            # --------------------------------------------------------------
            # 6. Record
            # --------------------------------------------------------------
            recorder.maybe_record(
                t,
                voltage=vc,
                harvested=harvested_power,
                available=supply.available_power(t),
                consumed=load_power if platform.running else monitor_power,
                frequency=platform.current_opp.frequency_hz if platform.running else 0.0,
                n_little=platform.current_opp.config.n_little if platform.running else 0,
                n_big=platform.current_opp.config.n_big if platform.running else 0,
                running=1.0 if platform.running else 0.0,
                instructions=instructions,
                v_low=self.monitor.v_low,
                v_high=self.monitor.v_high,
            )

        return SimulationResult(
            times=np.array(recorder.times),
            supply_voltage=np.array(recorder.voltage),
            harvested_power=np.array(recorder.harvested),
            available_power=np.array(recorder.available),
            consumed_power=np.array(recorder.consumed),
            frequency_hz=np.array(recorder.frequency),
            n_little=np.array(recorder.n_little),
            n_big=np.array(recorder.n_big),
            running=np.array(recorder.running),
            instructions=np.array(recorder.instructions),
            v_low=np.array(recorder.v_low),
            v_high=np.array(recorder.v_high),
            events=events,
            duration_s=min(t, cfg.duration_s),
            total_instructions=instructions,
            harvested_energy_j=harvested_energy,
            consumed_energy_j=consumed_energy,
            brownout_count=platform.brownout_count,
            first_brownout_time=first_brownout,
            transition_count=platform.transition_count,
            dvfs_transition_count=platform.dvfs_transition_count,
            hotplug_transition_count=platform.hotplug_transition_count,
            interrupt_count=self.monitor.interrupt_count,
            governor_invocations=governor.invocation_count,
            governor_cpu_time_s=governor.cpu_time_s,
            governor_name=governor.name,
        )

    def _apply_decision(
        self,
        decision: Optional[GovernorDecision],
        t: float,
        events: list[SimulationEvent],
    ) -> None:
        if decision is None:
            return
        latency = self.platform.request_opp(decision.target, t, cores_first=decision.cores_first)
        events.append(
            SimulationEvent(
                t,
                "opp-request",
                f"{decision.target} (latency {latency * 1e3:.1f} ms)",
            )
        )


def simulate(
    platform: SoCPlatform,
    governor: Governor,
    supply: Supply,
    duration_s: float,
    capacitor: Supercapacitor | None = None,
    **config_overrides,
) -> SimulationResult:
    """Convenience wrapper: build a simulation with the given duration and run it."""
    config = SimulationConfig(duration_s=duration_s, **config_overrides)
    sim = EnergyHarvestingSimulation(
        platform=platform,
        governor=governor,
        supply=supply,
        capacitor=capacitor,
        config=config,
    )
    return sim.run()
