"""Simulation results: recorded time series, events and summary metrics.

A :class:`SimulationResult` is what every experiment in the benchmark harness
consumes.  It carries decimated time series of the electrical and
architectural state (supply voltage, harvested/consumed power, frequency,
online cores, cumulative instructions), the governor event log, and the
summary metrics the paper's tables report (instructions completed, renders
per minute, lifetime, voltage stability, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from ..energy.traces import PowerTrace, Trace
from ..hw.monitor import ThresholdCrossing

__all__ = ["SimulationEvent", "SimulationResult"]

#: The per-sample arrays carried by a :class:`SimulationResult`, in field order.
ARRAY_FIELDS = (
    "times",
    "supply_voltage",
    "harvested_power",
    "available_power",
    "consumed_power",
    "frequency_hz",
    "n_little",
    "n_big",
    "running",
    "instructions",
    "v_low",
    "v_high",
)

#: The scalar outcome fields of a :class:`SimulationResult`.
SCALAR_FIELDS = (
    "duration_s",
    "total_instructions",
    "harvested_energy_j",
    "consumed_energy_j",
    "brownout_count",
    "first_brownout_time",
    "transition_count",
    "dvfs_transition_count",
    "hotplug_transition_count",
    "interrupt_count",
    "governor_invocations",
    "governor_cpu_time_s",
    "governor_name",
)


@dataclass(frozen=True)
class SimulationEvent:
    """A discrete event that occurred during the simulation."""

    time: float
    kind: str
    detail: str = ""


@dataclass
class SimulationResult:
    """Recorded output of one system simulation run.

    All arrays share the same length (one entry per recorded sample).
    """

    times: np.ndarray
    supply_voltage: np.ndarray
    harvested_power: np.ndarray
    available_power: np.ndarray
    consumed_power: np.ndarray
    frequency_hz: np.ndarray
    n_little: np.ndarray
    n_big: np.ndarray
    running: np.ndarray
    instructions: np.ndarray
    v_low: np.ndarray
    v_high: np.ndarray
    events: list[SimulationEvent] = field(default_factory=list)

    # Scalar outcomes filled in by the simulator.
    duration_s: float = 0.0
    total_instructions: float = 0.0
    harvested_energy_j: float = 0.0
    consumed_energy_j: float = 0.0
    brownout_count: int = 0
    first_brownout_time: Optional[float] = None
    transition_count: int = 0
    dvfs_transition_count: int = 0
    hotplug_transition_count: int = 0
    interrupt_count: int = 0
    governor_invocations: int = 0
    governor_cpu_time_s: float = 0.0
    governor_name: str = ""

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def lifetime_s(self) -> float:
        """Time until the first brown-out (or the full duration if none)."""
        if self.first_brownout_time is not None:
            return self.first_brownout_time
        return self.duration_s

    @property
    def survived(self) -> bool:
        """Whether the system ran for the whole test without browning out."""
        return self.brownout_count == 0

    @property
    def uptime_fraction(self) -> float:
        """Fraction of recorded samples during which the SoC was running."""
        if len(self.running) == 0:
            return 0.0
        return float(np.mean(self.running > 0.5))

    def instructions_completed(self) -> float:
        """Total useful instructions executed over the run."""
        return self.total_instructions

    def renders_completed(self, instructions_per_render: float) -> float:
        """Number of Table II renders completed over the run."""
        if instructions_per_render <= 0:
            raise ValueError("instructions_per_render must be positive")
        return self.total_instructions / instructions_per_render

    def renders_per_minute(self, instructions_per_render: float) -> float:
        """Average render throughput over the full test duration."""
        if self.duration_s <= 0:
            return 0.0
        return self.renders_completed(instructions_per_render) / (self.duration_s / 60.0)

    def average_consumed_power(self) -> float:
        """Time-averaged board power over the run."""
        if self.duration_s <= 0:
            return 0.0
        return self.consumed_energy_j / self.duration_s

    def harvest_utilisation(self) -> float:
        """Consumed energy as a fraction of the maximum harvestable energy."""
        available = float(np.trapezoid(self.available_power, self.times)) if len(self.times) > 1 else 0.0
        if available <= 0:
            return 0.0
        return self.consumed_energy_j / available

    def fraction_within(self, target_voltage: float, tolerance: float = 0.05) -> float:
        """Fraction of time the supply voltage stayed within ±tolerance of target.

        This is the paper's headline stability metric (93.3 % within ±5 % of
        the 5.3 V target in Fig. 12).  Only samples while the SoC is running
        are counted.
        """
        if target_voltage <= 0:
            raise ValueError("target_voltage must be positive")
        if len(self.times) < 2:
            return 0.0
        lower = target_voltage * (1.0 - tolerance)
        upper = target_voltage * (1.0 + tolerance)
        within = (self.supply_voltage >= lower) & (self.supply_voltage <= upper)
        dt = np.diff(self.times)
        weights = np.concatenate((dt, [dt[-1] if len(dt) else 0.0]))
        total = float(np.sum(weights))
        if total <= 0:
            return 0.0
        return float(np.sum(weights[within]) / total)

    def governor_cpu_overhead(self) -> float:
        """Governor CPU time as a fraction of the run duration (Fig. 15)."""
        if self.duration_s <= 0:
            return 0.0
        return self.governor_cpu_time_s / self.duration_s

    def time_at_voltage_histogram(self, bins: np.ndarray) -> np.ndarray:
        """Fraction of time spent in each voltage bin (Fig. 13's histogram)."""
        bins = np.asarray(bins, dtype=float)
        if len(self.times) < 2:
            return np.zeros(len(bins) - 1)
        dt = np.diff(self.times)
        weights = np.concatenate((dt, [dt[-1]]))
        hist, _ = np.histogram(self.supply_voltage, bins=bins, weights=weights)
        total = float(np.sum(weights))
        return hist / total if total > 0 else hist

    # ------------------------------------------------------------------
    # Trace exports
    # ------------------------------------------------------------------
    def voltage_trace(self) -> Trace:
        return Trace(self.times, self.supply_voltage, name="V_C", units="V")

    def consumed_power_trace(self) -> PowerTrace:
        return PowerTrace(self.times, self.consumed_power, name="consumed_power")

    def available_power_trace(self) -> PowerTrace:
        return PowerTrace(self.times, self.available_power, name="available_power")

    def threshold_crossing_events(self) -> list[SimulationEvent]:
        """Only the threshold-crossing (interrupt) events."""
        return [e for e in self.events if e.kind in (ThresholdCrossing.LOW.value, ThresholdCrossing.HIGH.value)]

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self, max_samples: Optional[int] = None) -> dict:
        """Export the result as a JSON-serialisable dictionary.

        Arrays become plain lists of floats; ``max_samples`` (if given)
        decimates every series to at most that many evenly spaced samples so
        a stored result stays small while keeping the shape of the traces.
        The scalar outcome fields are always kept exact.
        """
        n = len(self.times)
        if max_samples is not None and max_samples < 2:
            raise ValueError("max_samples must be at least 2")
        if max_samples is not None and n > max_samples:
            indices = np.unique(np.linspace(0, n - 1, max_samples).round().astype(int))
        else:
            indices = None
        arrays = {}
        for name in ARRAY_FIELDS:
            values = np.asarray(getattr(self, name), dtype=float)
            if indices is not None:
                values = values[indices]
            arrays[name] = [float(v) for v in values]
        return {
            **arrays,
            "events": [
                {"time": e.time, "kind": e.kind, "detail": e.detail} for e in self.events
            ],
            **{name: getattr(self, name) for name in SCALAR_FIELDS},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output (e.g. parsed JSON)."""
        arrays = {name: np.asarray(data[name], dtype=float) for name in ARRAY_FIELDS}
        lengths = {len(a) for a in arrays.values()}
        if len(lengths) > 1:
            raise ValueError(f"inconsistent array lengths in result dict: {sorted(lengths)}")
        events = [
            SimulationEvent(
                time=float(e["time"]), kind=str(e["kind"]), detail=str(e.get("detail", ""))
            )
            for e in data.get("events", [])
        ]
        scalars = {name: data[name] for name in SCALAR_FIELDS if name in data}
        return cls(**arrays, events=events, **scalars)

    def summary(self) -> dict:
        """A dictionary of the headline metrics (used by the CLI and benches)."""
        return {
            "governor": self.governor_name,
            "duration_s": self.duration_s,
            "lifetime_s": self.lifetime_s,
            "survived": self.survived,
            "instructions": self.total_instructions,
            "harvested_energy_j": self.harvested_energy_j,
            "consumed_energy_j": self.consumed_energy_j,
            "average_power_w": self.average_consumed_power(),
            "brownouts": self.brownout_count,
            "uptime_fraction": self.uptime_fraction,
            "transitions": self.transition_count,
            "interrupts": self.interrupt_count,
            "governor_cpu_overhead": self.governor_cpu_overhead(),
        }
